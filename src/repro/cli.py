"""Command-line interface.

Everything the library does, runnable from a shell::

    python -m repro list                         # workloads
    python -m repro run bzip2 --scheme unsync    # one simulation
    python -m repro compare gzip                 # baseline/unsync/reunion
    python -m repro asm my_kernel.s              # assemble + golden-run
    python -m repro table1|table2|table3         # the paper's tables
    python -m repro fig4|fig5|fig6               # the paper's figures
    python -m repro ser|roec|breakeven           # Sec VI-C / VI-D
    python -m repro campaign run|resume|summarize|merge  # Monte Carlo FI
    python -m repro serve                        # campaign-as-a-service
    python -m repro worker --connect host:port   # distributed trial worker
    python -m repro lint                         # simlint determinism gate
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
from collections import defaultdict
from typing import List, Optional

from repro.harness.report import format_table, pct


def _cmd_list(args) -> int:
    from repro.workloads import ALL_BENCHMARKS, KERNELS
    rows = [(name, p.suite, f"{100 * p.serializing_pct:.1f}%",
             f"{100 * p.store_pct:.0f}%", p.ilp.name,
             f"{p.working_set_kb}KB")
            for name, p in sorted(ALL_BENCHMARKS.items())]
    print(format_table(
        ["benchmark", "suite", "serializing", "stores", "ILP", "ws"],
        rows, title="Synthetic benchmarks"))
    print()
    print(format_table(["kernel"], [(k,) for k in sorted(KERNELS)],
                       title="Hand-written kernels"))
    return 0


def _load_program(name: str):
    from repro.isa.assembler import assemble
    from repro.workloads import load_workload
    try:
        return load_workload(name)
    except KeyError:
        pass
    try:
        with open(name) as fh:
            return assemble(fh.read(), name=name)
    except FileNotFoundError:
        raise SystemExit(
            f"error: {name!r} is not a benchmark, kernel, or readable "
            f"assembly file (try `python -m repro list`)")


def _cmd_run(args) -> int:
    from repro.faults.injector import FaultInjector
    from repro.harness.runner import run_scheme
    from repro.schemes import get as get_scheme
    program = _load_program(args.workload)
    kwargs = {}
    if getattr(args, "config", None):
        from repro.core.configio import load as load_config
        kwargs["config"] = load_config(args.config)
    if args.inject > 0:
        kwargs["injector"] = FaultInjector(args.inject, seed=args.seed)
        if not get_scheme(args.scheme).protected:
            raise SystemExit(f"error: scheme {args.scheme!r} is unprotected "
                             f"and cannot take --inject (no detectors to "
                             f"fire)")
    res = run_scheme(args.scheme, program, **kwargs)
    rows = [("scheme", res.scheme), ("workload", res.name),
            ("cycles", res.cycles), ("instructions", res.instructions),
            ("IPC", f"{res.ipc:.3f}")]
    rows += [(k, f"{v:g}") for k, v in sorted(res.extra.items()) if v]
    if res.fault_events:
        rows.append(("fault events", len(res.fault_events)))
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_compare(args) -> int:
    from repro.harness.runner import compare_schemes
    program = _load_program(args.workload)
    cmp = compare_schemes(program)
    print(format_table(
        ["machine", "cycles", "IPC", "overhead"],
        [("baseline", cmp.baseline.cycles, f"{cmp.baseline.ipc:.2f}", "—"),
         ("unsync", cmp.unsync.cycles, f"{cmp.unsync.ipc:.2f}",
          pct(cmp.unsync_overhead)),
         ("reunion", cmp.reunion.cycles, f"{cmp.reunion.ipc:.2f}",
          pct(cmp.reunion_overhead))],
        title=f"{program.name}: scheme comparison"))
    print(f"UnSync over Reunion: {pct(cmp.unsync_speedup_over_reunion)}")
    return 0


def _cmd_asm(args) -> int:
    from repro.isa import golden
    program = _load_program(args.file)
    res = golden.run(program, max_instructions=args.max_instructions)
    print(f"{program.name}: {len(program)} static / "
          f"{res.instructions} dynamic instructions, "
          f"halted={res.halted}")
    hist = sorted(res.class_counts.items(), key=lambda kv: -kv[1])
    print(format_table(["class", "count", "%"],
                       [(k, v, f"{100 * v / res.instructions:.1f}")
                        for k, v in hist]))
    if "result" in program.labels:
        addr = program.labels["result"]
        print(f"result @ {addr:#x} = {res.state.read_mem(addr, 4)}")
    return 0


def _cmd_table1(args) -> int:
    from repro.core.config import SystemConfig
    desc = SystemConfig.table1().describe()
    print(format_table(["Parameter", "Configuration"], list(desc.items()),
                       title="Table I"))
    return 0


def _cmd_table2(args) -> int:
    from repro.hwcost.synthesis import table2
    rows = [[k] + v for k, v in table2().rows().items()]
    print(format_table(["Parameter", "Basic MIPS", "Reunion", "UnSync"],
                       rows, title="Table II"))
    return 0


def _cmd_table3(args) -> int:
    from repro.hwcost.die import table3
    rows = []
    for proj in table3():
        p = proj.processor
        rows.append([p.name, p.n_cores, f"{proj.reunion_die_mm2:.2f}",
                     f"{proj.unsync_die_mm2:.2f}",
                     f"{proj.difference_mm2:.2f}"])
    print(format_table(["Processor", "cores", "Reunion die (mm2)",
                        "UnSync die (mm2)", "difference"], rows,
                       title="Table III"))
    return 0


def _cmd_fig4(args) -> int:
    from repro.harness.experiments import FIG4_DEFAULT, fig4_serializing
    benches = args.benchmarks or list(FIG4_DEFAULT)
    rows = fig4_serializing(benchmarks=benches)
    print(format_table(
        ["benchmark", "serializing", "Reunion", "UnSync"],
        [(r.benchmark, f"{100 * r.serializing_pct:.2f}%",
          pct(r.reunion_overhead), pct(r.unsync_overhead)) for r in rows],
        title="Figure 4: overhead vs baseline"))
    print(f"average: Reunion "
          f"{pct(statistics.mean(r.reunion_overhead for r in rows))}, "
          f"UnSync {pct(statistics.mean(r.unsync_overhead for r in rows))}")
    return 0


def _cmd_fig5(args) -> int:
    from repro.harness.experiments import FIG5_GRID, fig5_fi_latency
    benches = args.benchmarks or ["ammp", "galgel"]
    points = fig5_fi_latency(benchmarks=benches)
    by_cfg = defaultdict(dict)
    for p in points:
        by_cfg[(p.fingerprint_interval, p.comparison_latency)][p.benchmark] = p
    rows = []
    for (fi, lat), per in sorted(by_cfg.items()):
        rows.append([fi, lat] + [
            f"-{100 * per[b].performance_decrease:.0f}%" for b in benches])
    print(format_table(["FI", "latency"] + benches, rows,
                       title="Figure 5: Reunion performance decrease"))
    return 0


def _cmd_fig6(args) -> int:
    from repro.harness.experiments import FIG6_SIZES_KB, fig6_cb_size
    benches = args.benchmarks or ["bzip2", "susan"]
    points = fig6_cb_size(benchmarks=benches)
    by_bench = defaultdict(list)
    for p in points:
        by_bench[p.benchmark].append(p)
    rows = []
    for bench, ps in by_bench.items():
        ps.sort(key=lambda p: p.cb_kb)
        rows.append([bench] + [f"{p.ipc_normalized:.3f}" for p in ps])
    print(format_table(["benchmark"] + [f"{kb}KB" for kb in FIG6_SIZES_KB],
                       rows, title="Figure 6: UnSync IPC vs baseline"))
    return 0


def _cmd_ser(args) -> int:
    from repro.harness.experiments import ser_sweep
    points = ser_sweep(benchmark=args.benchmark)
    print(format_table(
        ["SER/instruction", "UnSync IPC", "Reunion IPC"],
        [(f"{p.ser_per_instruction:.0e}", f"{p.unsync_ipc:.3f}",
          f"{p.reunion_ipc:.3f}") for p in points],
        title="Sec VI-C: IPC vs SER"))
    return 0


def _cmd_breakeven(args) -> int:
    from repro.harness.experiments import break_even_analysis
    be = break_even_analysis(benchmark=args.benchmark)
    print(format_table(["metric", "value"], [
        ("error-free advantage (cycles/instr)",
         f"{be.measured_advantage_cycles_per_instruction:.4f}"),
        ("recovery penalty, L1 copy", f"{be.recovery_penalty_cycles_copy:.0f}"),
        ("recovery penalty, L1 invalidate",
         f"{be.recovery_penalty_cycles_invalidate:.0f}"),
        ("break-even SER (copy)", f"{be.break_even_ser_copy:.2e}"),
        ("break-even SER (invalidate)",
         f"{be.break_even_ser_invalidate:.2e}"),
        ("paper break-even", f"{be.paper_break_even:.2e}"),
    ], title="Sec VI-C: break-even analysis"))
    return 0


def _cmd_roec(args) -> int:
    from repro.harness.experiments import roec_coverage
    rows = roec_coverage()
    print(format_table(
        ["architecture", "accounting", "coverage"],
        [(r.architecture, r.accounting, f"{100 * r.coverage:.1f}%")
         for r in rows],
        title="Sec VI-D: region of error coverage"))
    return 0


def _cmd_energy(args) -> int:
    from repro.harness.energy import compare_energy
    from repro.harness.runner import compare_schemes
    program = _load_program(args.workload)
    cmp = compare_schemes(program)
    results = {"baseline": cmp.baseline, "unsync": cmp.unsync,
               "reunion": cmp.reunion}
    reports = compare_energy(results)
    rows = []
    for scheme, rep in reports.items():
        res = results[scheme]
        rows.append([scheme, res.cycles,
                     f"{rep.total_energy_j * 1e6:.1f}",
                     f"{rep.energy_per_instruction_nj(res.instructions):.2f}",
                     f"{rep.edp * 1e9:.2f}"])
    print(format_table(
        ["scheme", "cycles", "energy (uJ)", "nJ/instr", "EDP (nJ*s)"],
        rows, title=f"{program.name}: energy at the 300 MHz / 65 nm "
                    f"synthesis corner"))
    uns, reu = reports["unsync"], reports["reunion"]
    print(f"UnSync saves {1 - uns.total_energy_j / reu.total_energy_j:.1%} "
          f"energy and {1 - uns.edp / reu.edp:.1%} EDP vs Reunion")
    return 0


def _cmd_report(args) -> int:
    from repro.harness.markdown import measured_report
    text = measured_report(args.sections)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_sweep(args) -> int:
    from repro.harness.plot import line_chart
    from repro.harness.sensitivity import elasticity, sweep
    program = _load_program(args.workload)
    points = sweep(program, args.parameter, args.values,
                   schemes=tuple(args.schemes))
    rows = [(p.value, p.scheme, p.cycles, f"{p.ipc:.2f}") for p in points]
    print(format_table([args.parameter, "scheme", "cycles", "IPC"], rows))
    series = {}
    for p in points:
        series.setdefault(p.scheme, []).append((float(p.value), p.ipc))
    print()
    print(line_chart(series, title=f"IPC vs {args.parameter} "
                                   f"({program.name})",
                     x_label=args.parameter))
    for scheme in args.schemes:
        print(f"elasticity[{scheme}] = "
              f"{elasticity(points, scheme):+.3f}")
    return 0


def _cmd_config_dump(args) -> int:
    import json
    from repro.core.config import SystemConfig
    from repro.core.configio import to_dict
    print(json.dumps(to_dict(SystemConfig.table1()), indent=2))
    return 0


def _cmd_bench(args) -> int:
    from repro.harness.bench import (
        BenchBaselineError, check_regression, load_report, run_bench,
        write_report,
    )
    try:
        results = run_bench(scenarios=args.scenarios or None,
                            quick=args.quick, repeat=args.repeat)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    rows = [(r.scenario, r.instructions, r.cycles,
             f"{r.seconds:.3f}", f"{r.instr_per_sec:,.0f}",
             f"{r.cycles_per_sec:,.0f}") for r in results]
    print(format_table(
        ["scenario", "instructions", "cycles", "seconds",
         "instr/sec", "cycles/sec"],
        rows, title="Simulator throughput"
        + (" (quick)" if args.quick else "")))
    report = write_report(results, args.out, quick=args.quick)
    print(f"wrote {args.out}")
    if args.baseline:
        try:
            baseline = load_report(args.baseline)
            failures = check_regression(report, baseline,
                                        max_regression=args.max_regression,
                                        absolute=args.absolute)
        except FileNotFoundError:
            raise SystemExit(
                f"error: no baseline report at {args.baseline!r} — generate "
                f"one with `python -m repro bench --out {args.baseline}` on "
                f"a known-good checkout, commit it, then re-run this check")
        except BenchBaselineError as exc:
            raise SystemExit(f"error: {exc}")
        mode = "absolute" if args.absolute else "relative-to-golden"
        if failures:
            for f in failures:
                print(f"REGRESSION {f}", file=sys.stderr)
            raise SystemExit(
                f"error: {len(failures)} scenario(s) regressed beyond "
                f"{100 * args.max_regression:.0f}% ({mode} check)")
        print(f"regression check vs {args.baseline}: ok ({mode}, "
              f"<= {100 * args.max_regression:.0f}% allowed)")
    return 0


def _cmd_trace_diagram(args) -> int:
    from repro.core.trace import PipelineTracer, render_timeline
    from repro.schemes import get as get_scheme
    program = _load_program(args.workload)
    system = get_scheme(args.scheme).build_system(program)
    tracer = PipelineTracer()
    # pair schemes expose `pipelines`; single-leader systems (baseline,
    # MEEK) expose one `pipeline` — the diagram follows core 0 either way
    pipelines = getattr(system, "pipelines", None) or [system.pipeline]
    pipelines[0].tracer = tracer
    system.run()
    print(render_timeline(tracer, first_seq=args.start, count=args.count))
    print(f"\nmean completed-to-retire wait: "
          f"{tracer.mean_commit_wait():.1f} cycles "
          f"(this is where redundancy gates bite)")
    return 0


def _cmd_trace_run(args) -> int:
    from repro.faults.injector import FaultInjector
    from repro.harness.runner import run_scheme
    from repro.schemes import get as get_scheme
    from repro.telemetry import Telemetry
    from repro.telemetry.chrome import validate_chrome, write_chrome
    program = _load_program(args.workload)
    telemetry = Telemetry()
    kwargs = {"telemetry": telemetry}
    if args.inject > 0:
        if not get_scheme(args.scheme).protected:
            raise SystemExit(f"error: scheme {args.scheme!r} is unprotected "
                             f"and cannot take --inject (no detectors to "
                             f"fire)")
        kwargs["injector"] = FaultInjector(args.inject, seed=args.seed)
    res = run_scheme(args.scheme, program, **kwargs)
    doc = write_chrome(telemetry.events, args.out)
    problems = validate_chrome(doc)
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        raise SystemExit(f"error: {args.out} failed Chrome-trace validation "
                         f"({len(problems)} problem(s))")
    events = telemetry.events
    dropped = f", {events.dropped} dropped" if events.dropped else ""
    print(f"wrote {args.out}: {len(events)} events on "
          f"{len(events.tracks())} tracks{dropped} "
          f"(load in https://ui.perfetto.dev or chrome://tracing)")
    if args.events:
        events.write_jsonl(args.events)
        print(f"wrote {args.events}")
    if args.metrics:
        import json
        with open(args.metrics, "w") as fh:
            json.dump(telemetry.metrics.snapshot(), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics}")
    counts = {}
    for e in events:
        counts[e.name] = counts.get(e.name, 0) + 1
    rows = [("scheme", res.scheme), ("cycles", res.cycles),
            ("instructions", res.instructions), ("IPC", f"{res.ipc:.3f}")]
    rows += [(name, n) for name, n in sorted(counts.items())]
    print(format_table(["metric", "value"], rows,
                       title=f"{program.name}: traced run"))
    return 0


def _cmd_metrics_summarize(args) -> int:
    from repro.telemetry.summary import summarize_path
    try:
        summary = summarize_path(args.path)
    except FileNotFoundError:
        raise SystemExit(f"error: no metrics snapshot or campaign store "
                         f"at {args.path!r}")
    if args.json:
        import json
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    if summary["kind"] == "snapshot":
        rows = [(k, f"{v:g}") for k, v in summary["counters"].items()]
        rows += [(k, f"{v:g}") for k, v in summary["gauges"].items()]
        rows += [(f"{k} (mean of {h['count']})", f"{h['mean']:.1f}")
                 for k, h in summary["histograms"].items()]
        print(format_table(["metric", "value"], rows,
                           title="Run metrics snapshot"))
    else:
        print(format_table(
            ["cell", "trials", "metrics"],
            [(cell, st["trials"], len(st["metrics"]))
             for cell, st in summary["cells"].items()],
            title=f"Campaign metrics ({summary['trials']} trials)"))
        rows = [(k, v) for k, v in summary["totals"].items()]
        print(format_table(["counter (summed)", "total"], rows))
    return 0


def _print_campaign_summary(summary) -> None:
    def iv(d):
        return f"{d['estimate']:.3f} [{d['low']:.3f}, {d['high']:.3f}]"
    rows = [[cell, st["trials"], st["strikes"], iv(st["p_sdc"]),
             iv(st.get("p_due", st["p_sdc"])),
             iv(st["p_recovered"]), f"{st['mean_recovery_cycles']:.1f}",
             f"{st['ipc']:.3f}"]
            for cell, st in summary.cells.items()]
    print(format_table(
        ["cell", "trials", "strikes", "P[SDC] 95% CI", "P[DUE] 95% CI",
         "P[recovered] 95% CI", "recovery cyc/trial", "IPC"],
        rows, title="Campaign summary"))
    t = summary.totals
    print(f"totals: {t['trials']} trials, {t['strikes']} strikes, "
          f"{t['sdc_trials']} SDC trials, {t.get('due_trials', 0)} DUE, "
          f"{t.get('hang_trials', 0)} hang, {t.get('crash_trials', 0)} "
          f"crash, {t['recovered_trials']} recovered trials")
    if getattr(summary, "hwcost", None):
        print(format_table(
            ["scheme", "cores", "area (mm^2)", "power (W)",
             "area vs unprot", "power vs unprot"],
            [[s, c["n_cores"], f"{c['area_um2'] / 1e6:.2f}",
              f"{c['power_w']:.2f}", pct(c["area_overhead"]),
              pct(c["power_overhead"])]
             for s, c in summary.hwcost.items()],
            title="Silicon cost per protected thread"))
    if summary.early_stopped:
        print("early-stopped cells: " + ", ".join(summary.early_stopped))
    if summary.progress is not None:
        p = summary.progress
        print(f"ran {p['trials_run']} trials "
              f"(+{p['resumed_trials']} resumed, "
              f"{p['early_stopped_trials']} early-stopped) in "
              f"{p['elapsed_seconds']:.1f}s — "
              f"{p['trials_per_second']:.1f} trials/s, "
              f"{p['worker_failures']} worker failures")


def _emit_campaign_summary(summary, as_json: bool) -> int:
    if as_json:
        import json
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    else:
        _print_campaign_summary(summary)
    return 0


def _sigterm_to_interrupt(signum, frame):
    # a polite kill (systemd stop, CI cancel, `kill <pid>`) should end a
    # campaign the same way Ctrl-C does: stop cleanly, keep the store
    raise KeyboardInterrupt


def _campaign_store(path: str, shards: Optional[int] = None):
    """Resolve --store: a JSONL path, or a sharded store directory."""
    if shards is not None and shards > 1:
        from repro.service.shards import ShardedStore
        return ShardedStore(path, n_shards=shards)
    if os.path.isdir(path):
        from repro.service.shards import ShardedStore
        return ShardedStore(path)
    return path


def _campaign_interrupted(store_arg: str) -> int:
    # every completed trial was flushed line-by-line before this point,
    # so the store is durable — tell the user how to pick it back up
    print(f"\ninterrupted — completed trials are safe in the store.\n"
          f"resume with: python -m repro campaign resume "
          f"--store {store_arg}", file=sys.stderr)
    return 130


def _cmd_campaign_run(args) -> int:
    import signal
    from repro.campaign import CampaignError, CampaignSpec, run_campaign
    sers = [float(s) for s in (args.ser or [])]
    if args.node:
        from repro.faults.ser import SERModel
        # real SERs (~1e-17/instruction) produce no strikes in simulable
        # horizons; accelerated sampling is the standard move
        sers += [SERModel.at_node(n).per_cycle(ipc=args.ipc) * args.accel
                 for n in args.node]
    from repro.workloads import workload_names
    try:
        if not sers:
            raise CampaignError("give at least one --ser rate or --node")
        known = workload_names()
        for name in args.workloads:
            if name not in known:
                raise CampaignError(
                    f"unknown workload {name!r} (try one of "
                    f"{', '.join(known)})")
        spec = CampaignSpec(schemes=tuple(args.schemes),
                            workloads=tuple(args.workloads),
                            sers=tuple(sers), trials=args.trials,
                            seed_base=args.seed_base,
                            ci_halfwidth=args.ci_halfwidth,
                            batch=args.batch,
                            fault_model=args.fault_model,
                            watchdog_cycles=args.watchdog_cycles)
        store = _campaign_store(args.store, args.shards)
        old_term = signal.signal(signal.SIGTERM, _sigterm_to_interrupt)
        try:
            summary = run_campaign(
                spec, store, workers=args.workers, timeout=args.timeout,
                ticker_enabled=True if args.progress else None,
                exec_mode=args.exec_mode,
                snapshot_interval=args.snapshot_interval)
        except KeyboardInterrupt:
            return _campaign_interrupted(args.store)
        finally:
            signal.signal(signal.SIGTERM, old_term)
    except CampaignError as exc:
        raise SystemExit(f"error: {exc}")
    return _emit_campaign_summary(summary, args.json)


def _cmd_campaign_resume(args) -> int:
    import signal
    from repro.campaign import CampaignError, as_store, run_campaign
    try:
        store = as_store(_campaign_store(args.store))
        if not store.exists():
            raise CampaignError(f"no campaign store at {args.store!r}")
        spec = store.load_spec()
        old_term = signal.signal(signal.SIGTERM, _sigterm_to_interrupt)
        try:
            summary = run_campaign(
                spec, store, workers=args.workers, timeout=args.timeout,
                ticker_enabled=True if args.progress else None,
                exec_mode=args.exec_mode,
                snapshot_interval=args.snapshot_interval)
        except KeyboardInterrupt:
            return _campaign_interrupted(args.store)
        finally:
            signal.signal(signal.SIGTERM, old_term)
    except CampaignError as exc:
        raise SystemExit(f"error: {exc}")
    return _emit_campaign_summary(summary, args.json)


def _cmd_campaign_summarize(args) -> int:
    import glob
    from repro.campaign import (
        CampaignError, summarize_store, summarize_stores,
    )
    from repro.service.shards import shard_paths
    paths: List[str] = []
    for pattern in args.store:
        if os.path.isdir(pattern):
            paths.extend(shard_paths(pattern))
        elif glob.has_magic(pattern):
            paths.extend(sorted(glob.glob(pattern)))
        else:
            paths.append(pattern)
    if not paths:
        raise SystemExit(
            f"error: no store files match {' '.join(args.store)!r} — "
            f"check the path or glob, or start a campaign with "
            f"`python -m repro campaign run --store ...`")
    try:
        if len(paths) == 1:
            summary = summarize_store(paths[0])
        else:
            summary = summarize_stores(paths)
    except CampaignError as exc:
        raise SystemExit(f"error: {exc}")
    if not summary.totals.get("trials"):
        raise SystemExit(
            f"error: {', '.join(paths)}: the store holds a spec but no "
            f"trials — the campaign stopped before its first batch; "
            f"continue it with `python -m repro campaign resume "
            f"--store {args.store[0]}`")
    return _emit_campaign_summary(summary, args.json)


def _cmd_campaign_merge(args) -> int:
    from repro.campaign import CampaignError
    from repro.service.shards import merge_shards
    source = args.shards if len(args.shards) > 1 else args.shards[0]
    try:
        count = merge_shards(source, args.out)
    except CampaignError as exc:
        raise SystemExit(f"error: {exc}")
    print(f"merged {count} trials into {args.out}")
    return 0


def _cmd_serve(args) -> int:
    from repro.service.chaos import ChaosError
    from repro.service.server import serve
    try:
        return serve(host=args.host, port=args.port,
                     data_dir=args.data_dir,
                     max_concurrent=args.max_concurrent,
                     tenant_quota=args.tenant_quota, shards=args.shards,
                     workers=args.workers, exec_mode=args.exec_mode,
                     journal_path=args.journal,
                     stream_interval=args.stream_interval,
                     lease_ttl=args.lease_ttl,
                     expect_workers=args.expect_workers,
                     worker_wait=args.worker_wait, chaos=args.chaos)
    except ChaosError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_worker(args) -> int:
    import signal
    import threading
    import urllib.parse

    from repro.service.chaos import ChaosController, ChaosError
    from repro.service.client import ServiceError
    from repro.service.retry import RetryError
    from repro.service.workers import run_worker
    url = args.connect if "//" in args.connect else f"//{args.connect}"
    parsed = urllib.parse.urlsplit(url)
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 8765
    stop = threading.Event()

    def _graceful(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGINT, _graceful)
    signal.signal(signal.SIGTERM, _graceful)
    try:
        chaos = ChaosController.from_spec(args.chaos)
    except ChaosError as exc:
        raise SystemExit(f"error: {exc}")
    try:
        stats = run_worker(host, port, name=args.name,
                           poll_interval=args.poll_interval,
                           max_idle=args.max_idle, chaos=chaos,
                           stop=stop)
    except (ServiceError, RetryError, OSError) as exc:
        raise SystemExit(f"error: coordinator at {host}:{port} "
                         f"unreachable: {exc}")
    print(f"worker done: {stats['leases']} leases, "
          f"{stats['trials']} trials"
          + (f", {stats['lost']} lost" if stats["lost"] else ""))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import rule_catalogue
    from repro.analysis.runner import run_lint_cli
    if args.rules:
        rows = [(r["code"], r["summary"]) for r in rule_catalogue()]
        print(format_table(["code", "summary"], rows,
                           title="simlint rule catalogue"))
        return 0
    return run_lint_cli(paths=args.paths, fmt=args.format, root=args.root,
                        baseline_path=args.baseline,
                        no_baseline=args.no_baseline,
                        write_baseline=args.write_baseline,
                        changed=args.changed)


def build_parser() -> argparse.ArgumentParser:
    # every --scheme/--schemes choice list is derived from the registry,
    # so a newly registered scheme is runnable from the CLI with no
    # parser edits (and an unknown name fails argparse's own validation
    # with the available names spelled out)
    from repro.schemes import available, protected_schemes
    all_schemes = list(available())
    injectable = list(protected_schemes())

    parser = argparse.ArgumentParser(
        prog="repro",
        description="UnSync (ICPP 2011) reproduction — simulators, cost "
                    "models, and the paper's experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(fn=_cmd_list)

    p = sub.add_parser("run", help="run one workload on one scheme")
    p.add_argument("workload", help="benchmark, kernel, or .s file")
    p.add_argument("--scheme", default="unsync", choices=all_schemes)
    p.add_argument("--inject", type=float, default=0.0, metavar="RATE",
                   help="per-cycle strike rate (e.g. 1e-3)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--config", metavar="FILE.json",
                   help="machine configuration (see `config-dump`)")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("config-dump",
                       help="print the Table I machine as JSON")
    p.set_defaults(fn=_cmd_config_dump)

    p = sub.add_parser("compare", help="baseline vs UnSync vs Reunion")
    p.add_argument("workload")
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("asm", help="assemble and golden-run a program")
    p.add_argument("file")
    p.add_argument("--max-instructions", type=int, default=1_000_000)
    p.set_defaults(fn=_cmd_asm)

    for name, fn in (("table1", _cmd_table1), ("table2", _cmd_table2),
                     ("table3", _cmd_table3)):
        sub.add_parser(name, help=f"print the paper's {name}").set_defaults(fn=fn)

    for name, fn in (("fig4", _cmd_fig4), ("fig5", _cmd_fig5),
                     ("fig6", _cmd_fig6)):
        p = sub.add_parser(name, help=f"regenerate the paper's {name}")
        p.add_argument("--benchmarks", nargs="*", default=None)
        p.set_defaults(fn=fn)

    p = sub.add_parser("ser", help="Sec VI-C SER sweep")
    p.add_argument("--benchmark", default="gzip")
    p.set_defaults(fn=_cmd_ser)

    p = sub.add_parser("breakeven", help="Sec VI-C break-even analysis")
    p.add_argument("--benchmark", default="bzip2")
    p.set_defaults(fn=_cmd_breakeven)

    sub.add_parser("roec", help="Sec VI-D coverage").set_defaults(fn=_cmd_roec)

    p = sub.add_parser("energy", help="energy / EDP comparison across "
                                      "schemes")
    p.add_argument("workload")
    p.set_defaults(fn=_cmd_energy)

    p = sub.add_parser("report", help="regenerate the measured-results "
                                      "markdown document")
    p.add_argument("--sections", nargs="*", default=None,
                   help="subset: table2 table3 fig4 roec")
    p.add_argument("--out", metavar="FILE.md", default=None)
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("sweep", help="one-parameter sensitivity sweep")
    p.add_argument("workload")
    p.add_argument("parameter")
    p.add_argument("values", nargs="+", type=int)
    p.add_argument("--schemes", nargs="*",
                   default=["baseline", "unsync", "reunion"])
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "campaign",
        help="Monte Carlo fault-injection campaigns (run/resume/summarize)")
    csub = p.add_subparsers(dest="action", required=True)

    def _campaign_common(cp):
        cp.add_argument("--store", required=True, metavar="FILE.jsonl",
                        help="append-only JSONL result store (a "
                             "directory of shard files with --shards)")
        cp.add_argument("--json", action="store_true",
                        help="machine-readable summary instead of tables")

    def _campaign_exec(cp):
        cp.add_argument("--workers", type=int, default=None,
                        help="process-pool size (1 = serial; default: CPUs)")
        cp.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-trial timeout; timed-out trials retry once")
        cp.add_argument("--progress", action="store_true",
                        help="force the live stderr ticker (default: only "
                             "on a TTY)")
        from repro.campaign.engine import EXEC_MODES
        cp.add_argument("--exec-mode", default="differential",
                        choices=list(EXEC_MODES),
                        help="'differential' fast-forwards each trial from "
                             "a cached fault-free prefix snapshot; 'full' "
                             "re-simulates from cycle 0. Byte-identical "
                             "stores either way — this only trades "
                             "wall-clock")
        cp.add_argument("--snapshot-interval", type=int, default=None,
                        metavar="CYCLES",
                        help="cycles between prefix snapshots "
                             "(differential mode; default 1024, doubling "
                             "under ring pressure)")

    cp = csub.add_parser("run", help="start a campaign (resumes if the "
                                     "store already holds the same spec)")
    _campaign_common(cp)
    _campaign_exec(cp)
    cp.add_argument("--schemes", nargs="+", default=["unsync", "reunion"],
                    choices=injectable,
                    help="fault-injection targets (any registered "
                         "protected scheme)")
    cp.add_argument("--workloads", nargs="+", required=True,
                    help="benchmarks and/or kernels (see `repro list`)")
    cp.add_argument("--ser", nargs="*", type=float, default=None,
                    metavar="RATE", help="per-cycle strike rates")
    cp.add_argument("--node", nargs="*", type=int, default=None,
                    metavar="NM", help="derive a rate from a technology "
                                       "node via SERModel (accelerated)")
    cp.add_argument("--ipc", type=float, default=1.0,
                    help="IPC assumed by the --node conversion")
    cp.add_argument("--accel", type=float, default=1e12,
                    help="acceleration factor applied to --node rates")
    cp.add_argument("--trials", type=int, default=50,
                    help="seeded trials per (scheme, workload, SER) cell")
    cp.add_argument("--seed-base", type=int, default=0)
    cp.add_argument("--ci-halfwidth", type=float, default=None, metavar="W",
                    help="stop a cell early once its SDC CI half-width "
                         "<= W (sequential early stopping)")
    cp.add_argument("--batch", type=int, default=25,
                    help="trials per scheduling batch / early-stop "
                         "decision boundary")
    cp.add_argument("--fault-model", default="standard",
                    choices=["standard", "adversarial"],
                    help="'adversarial' adds multi-bit clusters, "
                         "paired-core strikes, strikes during recovery, "
                         "and uncore targets (CB / EIH queue / recovery "
                         "copy)")
    cp.add_argument("--watchdog-cycles", type=int, default=None, metavar="N",
                    help="per-trial cycle budget; a tripped watchdog "
                         "records the trial as a HANG outcome")
    cp.add_argument("--shards", type=int, default=None, metavar="N",
                    help="split the store into N shard files under the "
                         "--store directory, routed by cell hash; "
                         "recombine with `campaign merge` "
                         "(byte-identical to a single-store run)")
    cp.set_defaults(fn=_cmd_campaign_run)

    cp = csub.add_parser("resume", help="continue an interrupted campaign "
                                        "from its store")
    _campaign_common(cp)
    _campaign_exec(cp)
    cp.set_defaults(fn=_cmd_campaign_resume)

    cp = csub.add_parser("summarize", help="aggregate store(s) without "
                                           "running anything")
    cp.add_argument("--store", required=True, nargs="+", metavar="PATH",
                    help="store JSONL file(s), a sharded store "
                         "directory, or a shard glob")
    cp.add_argument("--json", action="store_true",
                    help="machine-readable summary instead of tables")
    cp.set_defaults(fn=_cmd_campaign_summarize)

    cp = csub.add_parser("merge", help="merge shard files into one "
                                       "single-store JSONL (byte-identical "
                                       "to an unsharded run)")
    cp.add_argument("shards", nargs="+", metavar="SOURCE",
                    help="sharded store directory, glob, or shard files")
    cp.add_argument("--out", required=True, metavar="FILE.jsonl",
                    help="merged store to write (must not exist)")
    cp.set_defaults(fn=_cmd_campaign_merge)

    p = sub.add_parser(
        "serve",
        help="campaign-as-a-service: HTTP submit/status/results API "
             "with a live SSE dashboard")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--data-dir", default="campaign-service", metavar="DIR",
                   help="job stores and the job journal live here "
                        "(default: ./campaign-service)")
    p.add_argument("--max-concurrent", type=int, default=2, metavar="N",
                   help="campaign jobs running at once (default 2)")
    p.add_argument("--tenant-quota", type=int, default=1, metavar="N",
                   help="running jobs allowed per tenant (default 1)")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="default shard count for job stores "
                        "(0 or 1 = single JSONL file)")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size per job (default: CPUs)")
    from repro.campaign.engine import EXEC_MODES
    p.add_argument("--exec-mode", default="differential",
                   choices=list(EXEC_MODES),
                   help="trial execution mode for submitted jobs")
    p.add_argument("--journal", default=None, metavar="FILE.jsonl",
                   help="job journal path (default: DATA_DIR/"
                        "journal.jsonl); a restarted server re-adopts "
                        "its non-terminal jobs")
    p.add_argument("--stream-interval", type=float, default=1.0,
                   metavar="SEC",
                   help="seconds between dashboard SSE pushes")
    p.add_argument("--lease-ttl", type=float, default=10.0, metavar="SEC",
                   help="distributed worker lease TTL; heartbeats renew "
                        "at TTL/3, an expired lease is requeued "
                        "(default 10)")
    p.add_argument("--expect-workers", type=int, default=0, metavar="N",
                   help="wait for at least one distributed worker before "
                        "the first wave; 0 = run waves locally whenever "
                        "no worker is live (default 0)")
    p.add_argument("--worker-wait", type=float, default=10.0,
                   metavar="SEC",
                   help="how long to wait for the first worker before "
                        "falling back to local execution (default 10)")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="seeded service-side fault injection, e.g. "
                        "'seed=7,http-500-rate=0.2,tear-journal-every=3' "
                        "(see repro.service.chaos)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "worker",
        help="distributed campaign worker: claim wave leases from a "
             "`repro serve` coordinator and stream results back")
    p.add_argument("--connect", required=True, metavar="URL",
                   help="coordinator address (http://host:port or "
                        "host:port)")
    p.add_argument("--name", default=None,
                   help="display name in /api/workers (default: "
                        "broker-assigned id)")
    p.add_argument("--poll-interval", type=float, default=0.5,
                   metavar="SEC",
                   help="idle delay between claim attempts (default 0.5)")
    p.add_argument("--max-idle", type=float, default=None, metavar="SEC",
                   help="exit cleanly after this long without a lease "
                        "(default: run until SIGINT/SIGTERM)")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="seeded worker-side fault injection, e.g. "
                        "'seed=3,kill-after=5,kill-point=mid-wave' or "
                        "'hb-drop=4' (see repro.service.chaos)")
    p.set_defaults(fn=_cmd_worker)

    p = sub.add_parser(
        "lint",
        help="simlint: AST determinism & hot-path invariant checks "
             "(exit 0 clean / 1 findings / 2 internal error)")
    p.add_argument("paths", nargs="*", default=[],
                   help="files or directories (default: [tool.simlint] "
                        "paths from pyproject.toml)")
    p.add_argument("--format", default="text",
                   choices=["text", "json", "sarif"],
                   help="report format (json/sarif are byte-stable "
                        "for CI artifacts)")
    p.add_argument("--changed", nargs="?", const="HEAD", default=None,
                   metavar="GITREF",
                   help="diff-aware mode: run the full whole-program "
                        "analysis but report only findings in files "
                        "changed versus GITREF (default HEAD), "
                        "including untracked files")
    p.add_argument("--root", default=None, metavar="DIR",
                   help="project root holding pyproject.toml "
                        "(default: cwd)")
    p.add_argument("--baseline", default=None, metavar="FILE.json",
                   help="override the configured baseline file")
    p.add_argument("--no-baseline", action="store_true",
                   help="report every finding, baseline ignored")
    p.add_argument("--write-baseline", action="store_true",
                   help="accept all current findings as the new baseline")
    p.add_argument("--rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser("bench", help="measure simulator throughput and "
                                     "write BENCH_pipeline.json")
    p.add_argument("--scenarios", nargs="*", default=None,
                   help="subset of scenarios (default: all)")
    p.add_argument("--quick", action="store_true",
                   help="small workloads, single repeat (CI smoke)")
    p.add_argument("--repeat", type=int, default=None,
                   help="timed repeats per scenario, best-of (default: "
                        "3, or 1 with --quick)")
    p.add_argument("--out", default="BENCH_pipeline.json", metavar="FILE",
                   help="report path (default: BENCH_pipeline.json)")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="committed bench report to regression-check "
                        "against; non-zero exit on failure")
    p.add_argument("--max-regression", type=float, default=0.25,
                   metavar="FRAC", help="allowed throughput drop vs the "
                                        "baseline (default 0.25)")
    p.add_argument("--absolute", action="store_true",
                   help="compare raw instr/sec instead of the "
                        "golden-normalised index (same-machine runs only)")
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("trace", help="pipeline diagrams and Chrome-trace "
                                     "exports (diagram/run)")
    tsub = p.add_subparsers(dest="action", required=True)

    tp = tsub.add_parser("diagram", help="ASCII pipeline diagram for a "
                                         "workload's first N instructions")
    tp.add_argument("workload")
    tp.add_argument("--scheme", default="baseline", choices=all_schemes)
    tp.add_argument("--start", type=int, default=0, metavar="SEQ")
    tp.add_argument("--count", type=int, default=24)
    tp.set_defaults(fn=_cmd_trace_diagram)

    tp = tsub.add_parser("run", help="run a workload with telemetry on and "
                                     "export a Chrome trace (Perfetto)")
    tp.add_argument("workload")
    tp.add_argument("--scheme", default="unsync", choices=all_schemes)
    tp.add_argument("--inject", type=float, default=0.0, metavar="RATE",
                    help="per-cycle strike rate (e.g. 1e-3)")
    tp.add_argument("--seed", type=int, default=0)
    tp.add_argument("--out", default="trace.json", metavar="FILE",
                    help="Chrome trace-event JSON (default: trace.json)")
    tp.add_argument("--events", metavar="FILE.jsonl", default=None,
                    help="also dump the raw event log as JSONL")
    tp.add_argument("--metrics", metavar="FILE.json", default=None,
                    help="also dump the metrics registry snapshot")
    tp.set_defaults(fn=_cmd_trace_run)

    p = sub.add_parser("metrics", help="inspect telemetry metric dumps "
                                       "(summarize)")
    msub = p.add_subparsers(dest="action", required=True)
    mp = msub.add_parser("summarize", help="summarise a metrics snapshot "
                                           "or a campaign store's rollups")
    mp.add_argument("path", help="snapshot JSON (from `trace run "
                                 "--metrics`) or campaign store JSONL")
    mp.add_argument("--json", action="store_true",
                    help="machine-readable output")
    mp.set_defaults(fn=_cmd_metrics_summarize)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away (e.g. `repro list | head`); exit quietly
        # instead of dumping a traceback over the consumer's output.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
