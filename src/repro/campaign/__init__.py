"""Resumable Monte Carlo fault-injection campaign engine.

The paper's reliability story (Sec VI-C: SER sweeps, recovery cost,
break-even) is statistical — it needs thousands of seeded injection
trials per (scheme, workload, SER) cell, not one deterministic run. This
package turns the repo's single-run primitives (``faults.injector``,
``faults.ser.SERModel``, ``harness.runner.run_scheme``) into campaigns:

* :class:`CampaignSpec` — the trial grid and its deterministic expansion;
* :class:`ResultStore` — append-only JSONL, keyed by (cell, seed), so an
  interrupted campaign resumes by skipping completed trials;
* :func:`execute_trials` — process-pool fan-out with per-job timeouts,
  one retry, and graceful degradation to serial execution;
* :class:`Aggregator` — streaming SDC/DUE/recovery proportions with
  Wilson confidence intervals and sequential early stopping;
* :class:`ProgressTracker` / :class:`Ticker` — trials/sec, per-cell ETA
  and failure counts, as a live stderr line and a machine-readable dict;
* :func:`run_campaign` / :func:`summarize_store` — the orchestration the
  ``repro campaign`` CLI drives.

Every statistic a campaign reports is a pure function of its spec:
worker counts, interruptions, retries and timing can never change a
number, only the wall-clock. The tests pin this.
"""

from repro.campaign.aggregate import Aggregator, CellAggregate
from repro.campaign.engine import (
    CampaignSummary,
    as_store,
    run_campaign,
    store_append_order,
    summarize_store,
    summarize_stores,
)
from repro.campaign.executor import (
    ExecutionReport,
    TrialFailure,
    execute_trials,
)
from repro.campaign.progress import ProgressTracker, Ticker
from repro.campaign.spec import (
    CampaignError,
    CampaignSpec,
    TrialSpec,
    cell_id,
)
from repro.campaign.store import ResultStore, StoreCorruption


def __getattr__(name: str) -> "tuple[str, ...]":
    # PEP 562: keep ``from repro.campaign import PROTECTED_SCHEMES``
    # working while delegating to the live registry-derived view in
    # ``repro.campaign.spec`` (an eager import here would snapshot the
    # scheme registry at import time and hide later plugin registrations).
    if name == "PROTECTED_SCHEMES":
        from repro.campaign import spec
        return spec.PROTECTED_SCHEMES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
from repro.campaign.trial import (
    TrialResult,
    classify_trial,
    crash_result,
    hang_result,
    run_trial,
)

__all__ = [
    "Aggregator", "CellAggregate",
    "CampaignSummary", "as_store", "run_campaign", "store_append_order",
    "summarize_store", "summarize_stores",
    "ExecutionReport", "TrialFailure", "execute_trials",
    "ProgressTracker", "Ticker",
    "CampaignError", "CampaignSpec", "PROTECTED_SCHEMES", "TrialSpec",
    "cell_id",
    "ResultStore", "StoreCorruption",
    "TrialResult", "classify_trial", "crash_result", "hang_result",
    "run_trial",
]
