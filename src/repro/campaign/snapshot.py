"""Differential-replay trial execution: the per-worker prefix cache.

Every trial of a campaign cell simulates the *same* fault-free prefix
from cycle 0 up to its first strike — for paper-scale SER (1e-7..1e-17)
that prefix is most (often all) of the trial. Because every simulator in
this repository is deterministic by construction, that work can be done
once per worker: run the fault-free prefix a single time, snapshot it at
coarse cycle epochs (:mod:`repro.checkpoint.snapshot`), and start each
trial from the newest epoch at or before its first injection cycle.

Correctness argument, scheme-agnostic:

* the prefix system is built with a **rate-zero injector** — its mere
  presence makes construction identical to an injected run (pipelines
  forced to ``commit_replay="always"``), while drawing *nothing* from
  the RNG (a zero rate short-circuits before the stream is touched);
* a trial's first strike cycle is peeked with a **throwaway** injector
  clone, and the restored replica is re-armed with a *fresh* injector
  through :meth:`~repro.schemes.base.ResilienceScheme.attach_injector`
  — the same ``next_strike(0)`` call an injected construction makes, so
  the replica's RNG stream state equals the full run's exactly;
* strikes are processed only at cycles the system actually steps, so a
  first strike at or past the fault-free completion cycle (or the
  watchdog budget) can never be observed: the trial's result *is* the
  cached fault-free result (or the cached watchdog hang) — the dominant
  fast path of low-SER grids.

Everything here is per-worker module state (the same lifetime contract
as :data:`repro.campaign.trial.CONTEXT`); nothing crosses process
boundaries except the :class:`~repro.campaign.spec.TrialSpec` itself.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, Optional, Tuple

from repro.campaign.spec import TrialSpec
from repro.campaign.trial import (
    CONTEXT,
    TrialResult,
    build_injector,
    finish_trial,
    hang_result,
)

#: default cycles between prefix snapshots (doubles under ring pressure)
DEFAULT_INTERVAL = 1024
#: snapshot-ring slots per prefix (a full ring thins to every other)
RING_CAPACITY = 32
#: prefixes kept per worker before LRU eviction
MAX_PREFIXES = 8

#: cache key: one fault-free prefix per (scheme, workload, budget) — the
#: SER axis and the fault model share it (neither can influence a run
#: before its first strike)
PrefixKey = Tuple[str, str, Optional[int]]


def peek_first_strike(trial: TrialSpec) -> Optional[int]:
    """The cycle of the trial's first strike, or ``None`` for never.

    Uses a throwaway injector built exactly like the trial's own and
    asks it the same question an injected construction asks
    (``next_strike(0)``); the clone is then discarded so the trial's
    real injector replays the identical RNG stream from scratch.
    """
    strike = build_injector(trial).next_strike(0)
    return None if strike is None else int(strike.cycle)


@dataclass
class _Prefix:
    """One cached fault-free prefix: snapshot ring + final verdict."""

    program: Any
    #: snapshot ring (the checkpoint package's bounded store, reused for
    #: its capacity/byte accounting); payloads are ``SystemSnapshot``
    ring: Any
    #: fault-free ``RunResult`` (``None`` when the prefix hung)
    result: Any
    #: ``(message, cycles, committed)`` of the watchdog trip, if any
    hang: Optional[Tuple[str, int, int]]
    #: ``system.now`` when the prefix run ended — strikes at or past
    #: this cycle are unobservable (no further cycle is ever stepped)
    final_cycle: int
    #: capture interval after ring-pressure doubling
    interval: int


class PrefixSnapshotCache:
    """Per-worker cache of fault-free prefixes with epoch snapshots."""

    def __init__(self, interval: int = DEFAULT_INTERVAL,
                 ring_capacity: int = RING_CAPACITY,
                 max_prefixes: int = MAX_PREFIXES) -> None:
        if interval < 1:
            raise ValueError("snapshot interval must be positive")
        self.interval = interval
        self.ring_capacity = ring_capacity
        self.max_prefixes = max_prefixes
        self._prefixes: "OrderedDict[PrefixKey, _Prefix]" = OrderedDict()
        #: page-interning pools, one per workload (schemes of one
        #: workload share most of their memory image content)
        self._pools: "OrderedDict[str, Dict[bytes, bytes]]" = OrderedDict()
        self._ins_index: "OrderedDict[str, Dict[int, int]]" = OrderedDict()

    # -- bookkeeping --------------------------------------------------------
    def clear(self) -> None:
        self._prefixes.clear()
        self._pools.clear()
        self._ins_index.clear()

    def _per_workload(self, memo: "OrderedDict[str, Any]", workload: str,
                      build: Callable[[], Any]) -> Any:
        value = memo.get(workload)
        if value is None:
            value = build()
        memo[workload] = value
        memo.move_to_end(workload)
        while len(memo) > self.max_prefixes:
            memo.popitem(last=False)
        return value

    # -- prefix construction ------------------------------------------------
    def prefix(self, trial: TrialSpec) -> _Prefix:
        """The (lazily built) fault-free prefix for ``trial``'s cell."""
        key: PrefixKey = (trial.scheme, trial.workload,
                          trial.watchdog_cycles)
        entry = self._prefixes.get(key)
        if entry is None:
            entry = self._build(trial)
            self._prefixes[key] = entry
        self._prefixes.move_to_end(key)
        while len(self._prefixes) > self.max_prefixes:
            self._prefixes.popitem(last=False)
        return entry

    def _build(self, trial: TrialSpec) -> _Prefix:
        from repro.checkpoint.snapshot import instruction_index
        from repro.checkpoint.store import CheckpointStore
        from repro.faults.injector import FaultInjector
        from repro.harness.runner import MAX_CYCLES
        from repro.redundancy.pair import SimulationHang
        from repro.schemes import get as get_scheme

        program = CONTEXT.program(trial.workload)
        pool = self._per_workload(self._pools, trial.workload, dict)
        ins_index = self._per_workload(
            self._ins_index, trial.workload,
            lambda: instruction_index(program))
        desc = get_scheme(trial.scheme)
        # rate zero: construction behaves injected, RNG stays untouched
        system = desc.build_system(program, injector=FaultInjector(0.0))
        budget = trial.watchdog_cycles if trial.watchdog_cycles is not None \
            else MAX_CYCLES
        ring = CheckpointStore(capacity=self.ring_capacity)
        interval = self.interval

        def capture() -> None:
            nonlocal interval
            if ring.full:
                ring.thin_every_other()
                interval *= 2
            snap = desc.snapshot(system, pool=pool, ins_index=ins_index)
            ring.capture_payload(seq=0, cycle=system.now, payload=snap,
                                 delta_bytes=snap.delta_bytes)

        capture()  # epoch 0: the freshly built system
        target = interval
        while not system.finished() and system.now < budget:
            if system.now >= target:
                capture()
                target = system.now + interval
            system.step()
        # delegate the verdict to run(): on a finished system it returns
        # the result immediately; at the budget it raises the exact
        # watchdog hang a full-mode trial would see
        result = None
        hang = None
        try:
            result = system.run(budget)
        except SimulationHang as exc:
            hang = (str(exc), int(exc.cycles), int(exc.committed))
        return _Prefix(program=program, ring=ring, result=result,
                       hang=hang, final_cycle=int(system.now),
                       interval=interval)

    # -- trial execution ----------------------------------------------------
    def run(self, trial: TrialSpec) -> TrialResult:
        """Run one trial differentially; byte-identical to full replay."""
        from repro.redundancy.pair import SimulationHang
        from repro.schemes import get as get_scheme

        prefix = self.prefix(trial)
        first = peek_first_strike(trial)
        if first is None or first >= prefix.final_cycle:
            # the strike stream starts after the last cycle any full-mode
            # run would step: the trial IS the cached fault-free run
            if prefix.hang is not None:
                message, cycles, committed = prefix.hang
                return hang_result(trial, SimulationHang(
                    message, cycles=cycles, committed=committed))
            return finish_trial(trial, prefix.result)
        checkpoint = prefix.ring.at_or_before(first)
        desc = get_scheme(trial.scheme)
        system = desc.restore(checkpoint.state, prefix.program,
                              injector=build_injector(trial))
        budget = trial.watchdog_cycles if trial.watchdog_cycles is not None \
            else _max_cycles()
        try:
            res = system.run(budget)
        except SimulationHang as exc:
            return hang_result(trial, exc)
        return finish_trial(trial, res)

    def epoch_of(self, trial: TrialSpec) -> int:
        """The snapshot epoch a trial would restore from (scheduling key;
        does not build the prefix — uses the configured interval)."""
        first = peek_first_strike(trial)
        if first is None:
            return -1  # fast-path trials group together, after the rest
        return first // self.interval


def _max_cycles() -> int:
    from repro.harness.runner import MAX_CYCLES
    return int(MAX_CYCLES)


#: the worker-process-wide cache ``run_trial_differential`` pulls from
CACHE = PrefixSnapshotCache()


def run_trial_differential(trial: TrialSpec,
                           snapshot_interval: Optional[int] = None
                           ) -> TrialResult:
    """Worker entry point for ``--exec-mode differential`` (top-level so
    it pickles; ``snapshot_interval`` is bound with ``functools.partial``
    by the engine and inherited by forked workers).
    """
    if snapshot_interval is not None and snapshot_interval != CACHE.interval:
        CACHE.clear()
        CACHE.interval = snapshot_interval
    return CACHE.run(trial)


def differential_runner(snapshot_interval: Optional[int] = None
                        ) -> Callable[[TrialSpec], TrialResult]:
    """The pool-submittable differential runner (picklable partial)."""
    if snapshot_interval is None:
        return run_trial_differential
    return partial(run_trial_differential,
                   snapshot_interval=snapshot_interval)


def submission_key(snapshot_interval: Optional[int] = None
                   ) -> Callable[[TrialSpec], Tuple[str, int, int]]:
    """Sort key grouping a wave by (cell, snapshot epoch) for submission.

    Trials restoring from the same epoch land adjacently in the pool's
    queue, so a worker's page pool and snapshot ring stay warm across
    consecutive trials. Pure scheduling hint: the executor still collects
    results — and the engine still appends store records — in the wave's
    original order, which is what keeps differential-mode stores
    byte-identical to full-mode ones.
    """
    interval = snapshot_interval if snapshot_interval is not None \
        else DEFAULT_INTERVAL

    def key(trial: TrialSpec) -> Tuple[str, int, int]:
        first = peek_first_strike(trial)
        epoch = 2 ** 62 if first is None else first // interval
        return (trial.cell, epoch, trial.seed)

    return key
