"""Trial fan-out: process pool with timeouts, retry, serial fallback.

The executor never decides *what* to run — the engine hands it a wave of
:class:`TrialSpec` and it returns one :class:`TrialResult` per trial, in
submission order. Failure policy:

* a trial that raises (or times out) in a worker is retried **once**,
  in-process, where the full traceback is visible;
* a second failure records the trial as a ``CRASH`` outcome (traceback
  attached) instead of aborting the grid — one pathological seed costs
  one data point, not the campaign;
* a broken pool (worker SIGKILLed, interpreter mismatch, ...) degrades
  the rest of the campaign to serial execution instead of dying.

Because every trial is a pure function of its spec, retries and
degradation cannot change any number — only wall-clock time.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from typing import Callable, List, Optional, Sequence

from repro.campaign.spec import TrialSpec
from repro.campaign.trial import TrialResult, crash_result, run_trial


class TrialFailure(RuntimeError):
    """A trial failed its worker run *and* its in-process retry.

    No longer raised by :func:`execute_trials` (a doubly-failed trial is
    recorded as a ``CRASH`` result instead); kept because external
    callers may still catch it.
    """

    def __init__(self, trial: TrialSpec, cause: BaseException) -> None:
        super().__init__(f"trial {trial} failed twice: {cause!r}")
        self.trial = trial
        self.cause = cause


@dataclass
class ExecutionReport:
    """What the fan-out had to absorb (feeds the progress layer)."""

    worker_failures: int = 0
    retries: int = 0
    timeouts: int = 0
    #: trials recorded as CRASH after failing their run AND the retry
    crashes: int = 0
    degraded_to_serial: bool = False


def default_workers(n_trials: int) -> int:
    return max(1, min(n_trials, os.cpu_count() or 1))


def _retry(trial: TrialSpec, runner: Callable[[TrialSpec], TrialResult],
           first_error: BaseException,
           report: ExecutionReport) -> TrialResult:
    """Complete a pool-failed trial in-process under the shared policy.

    The policy (``TRIAL_RETRY``: one attempt, no backoff — a
    deterministic simulation gains nothing from sleeping) lives in
    :mod:`repro.service.retry` so campaign pool jobs and service HTTP
    calls share one retry implementation.
    """
    # deferred import: repro.service re-exports the scheduler, which
    # imports this module back through the engine — resolving the retry
    # utility at call time keeps campaign -> service import-cycle free
    from repro.service.retry import TRIAL_RETRY, RetryError, call_with_retry

    report.worker_failures += 1
    report.retries += 1
    try:
        return call_with_retry(partial(runner, trial), policy=TRIAL_RETRY)
    except RetryError as err:
        exc = err.cause
        report.worker_failures += 1
        report.crashes += 1
        cause = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__))
        return crash_result(trial, f"first: {first_error!r}\nretry:\n{cause}")


def _execute_serial(trials: Sequence[TrialSpec],
                    runner: Callable[[TrialSpec], TrialResult],
                    report: ExecutionReport,
                    on_result: Optional[Callable[[TrialResult], None]]
                    ) -> List[TrialResult]:
    results = []
    for trial in trials:
        try:
            result = runner(trial)
        except Exception as exc:
            result = _retry(trial, runner, exc, report)
        results.append(result)
        if on_result is not None:
            on_result(result)
    return results


def execute_trials(trials: Sequence[TrialSpec],
                   workers: Optional[int] = None,
                   timeout: Optional[float] = None,
                   runner: Callable[[TrialSpec], TrialResult] = run_trial,
                   on_result: Optional[Callable[[TrialResult], None]] = None,
                   report: Optional[ExecutionReport] = None,
                   submit_order: Optional[Callable[[TrialSpec], object]]
                   = None,
                   ) -> List[TrialResult]:
    """Run one wave of trials; results in the wave's original order.

    ``on_result`` fires in the wave's original order as results are
    collected (the engine appends to the store and ticks progress from
    it). ``timeout`` bounds each job's wait in seconds; a timed-out job
    is counted and retried in-process like any other failure.

    ``submit_order`` is a pure *scheduling hint*: a sort key applied to
    the order trials enter the pool's queue (differential replay groups
    a wave by (cell, snapshot epoch) so worker-local prefix caches stay
    warm). Results, ``on_result`` firing and retries keep the original
    order regardless — the key can never change a campaign store by a
    byte. The serial path ignores it: one process holds one cache, and
    waves are already cell-grouped, so reordering would only delay the
    store appends that make interrupted runs resumable.
    """
    if report is None:
        report = ExecutionReport()
    if not trials:
        return []
    if workers is None:
        workers = default_workers(len(trials))
    if workers <= 1:
        return _execute_serial(trials, runner, report, on_result)

    pool = ProcessPoolExecutor(max_workers=min(workers, len(trials)))
    results: List[TrialResult] = []
    abandoned = False
    try:
        if submit_order is None:
            futures = [pool.submit(runner, t) for t in trials]
        else:
            order = sorted(range(len(trials)),
                           key=lambda i: submit_order(trials[i]))
            by_index = {i: pool.submit(runner, trials[i]) for i in order}
            futures = [by_index[i] for i in range(len(trials))]
        for index, (trial, future) in enumerate(zip(trials, futures)):
            try:
                result = future.result(timeout=timeout)
            except BrokenProcessPool as exc:
                # pool is unusable: absorb the failure and finish the
                # remainder of the wave serially
                report.worker_failures += 1
                report.degraded_to_serial = True
                abandoned = True
                result = _retry(trial, runner, exc, report)
                results.append(result)
                if on_result is not None:
                    on_result(result)
                rest = _execute_serial(trials[index + 1:], runner, report,
                                       on_result)
                results.extend(rest)
                return results
            except FutureTimeout as exc:
                report.timeouts += 1
                abandoned = True  # the stuck worker may never return
                result = _retry(trial, runner, exc, report)
            except Exception as exc:
                result = _retry(trial, runner, exc, report)
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results
    except KeyboardInterrupt:
        # graceful SIGINT/SIGTERM: every collected result has already
        # been appended to the store via on_result; abandon the rest of
        # the wave instead of blocking shutdown on in-flight workers
        # (the campaign resumes from the store)
        abandoned = True
        raise
    finally:
        # after a timeout a worker may still be wedged on the old job;
        # don't block campaign shutdown on it
        pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
