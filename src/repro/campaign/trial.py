"""One Monte Carlo trial: seed in, adjudicated outcomes out.

``run_trial`` is the process-pool worker entry point (top-level so it
pickles). It deliberately contains *no* simulation logic of its own —
the injector, detectors and recovery paths are exactly the ones
``repro run --inject`` exercises, so campaign statistics and single-run
debugging always agree.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.campaign.spec import TrialSpec
from repro.faults.events import Outcome

#: outcome keys in record order (FaultEvent outcomes plus derived ones)
OUTCOME_KEYS: Tuple[str, ...] = tuple(o.value for o in Outcome)


def classify_trial(outcomes: Dict[str, int]) -> str:
    """Collapse a trial's per-event outcome counts into ONE taxonomy label.

    Worst-first priority over :data:`~repro.faults.events.TRIAL_OUTCOMES`:
    ``crash > hang > sdc > due > recovered`` — a trial that both corrupted
    data *and* flagged a DUE is an SDC trial (the corruption is what
    escaped detection). A trial whose strikes were all masked or recovered
    — or that saw no strikes at all — is ``"recovered"``; the aggregate
    still distinguishes clean trials via strike counts.
    """
    if outcomes.get(Outcome.CRASH.value, 0):
        return "crash"
    if outcomes.get(Outcome.HANG.value, 0):
        return "hang"
    if outcomes.get(Outcome.SDC.value, 0):
        return "sdc"
    if outcomes.get(Outcome.DETECTED_UNRECOVERABLE.value, 0):
        return "due"
    return "recovered"


class _TrialContext:
    """Per-worker memo of assembled programs and golden reference runs.

    A pool worker receives many trials for the same handful of workloads;
    assembling a kernel from source on every ``load_workload`` call (and
    re-interpreting it for any golden-reference consumer) was measurable
    against trials that simulate only a few thousand instructions. The
    context lives at module level, so it persists for the lifetime of the
    worker process, and programs are immutable (``Instruction`` is frozen)
    so sharing one instance across trials is safe.

    Both memos are LRU-bounded (``cap`` workloads each): a long
    multi-workload grid recycles the same worker processes for every
    cell, and unbounded memos grow worker RSS with every workload the
    grid visits. Recency order is maintained on every hit, so the grid's
    active workloads stay resident.
    """

    __slots__ = ("programs", "goldens", "cap")

    #: workloads kept per memo unless a context overrides it
    DEFAULT_CAP = 8

    def __init__(self, cap: Optional[int] = None) -> None:
        if cap is not None and cap < 1:
            raise ValueError("memo cap must be at least 1")
        self.cap = cap if cap is not None else self.DEFAULT_CAP
        self.programs: "OrderedDict[str, object]" = OrderedDict()
        self.goldens: "OrderedDict[str, object]" = OrderedDict()

    def _touch(self, memo: "OrderedDict[str, object]", workload: str,
               value: object) -> object:
        memo[workload] = value
        memo.move_to_end(workload)
        while len(memo) > self.cap:
            memo.popitem(last=False)
        return value

    def program(self, workload: str):
        """The assembled :class:`~repro.isa.program.Program` (memoized)."""
        prog = self.programs.get(workload)
        if prog is None:
            from repro.workloads import load_workload
            prog = load_workload(workload)
        return self._touch(self.programs, workload, prog)

    def golden(self, workload: str):
        """The fault-free golden run of ``workload`` (memoized)."""
        res = self.goldens.get(workload)
        if res is None:
            from repro.isa import golden
            res = golden.run(self.program(workload),
                             max_instructions=2_000_000)
        return self._touch(self.goldens, workload, res)

    def clear(self) -> None:
        self.programs.clear()
        self.goldens.clear()


#: the worker-process-wide context ``run_trial`` pulls programs from
CONTEXT = _TrialContext()


@dataclass(frozen=True)
class TrialResult:
    """Everything one trial contributes to the campaign aggregate.

    All counters are integers so that aggregation is exact and
    order-independent — the root of the serial == parallel and
    resumed == uninterrupted guarantees.
    """

    scheme: str
    workload: str
    ser: float
    seed: int
    cycles: int
    instructions: int
    #: strikes injected during the run
    strikes: int
    #: Outcome.value -> event count
    outcomes: Dict[str, int]
    #: total recovery/rollback cycles charged during the run
    recovery_cycles: int
    #: scheme-level telemetry counters (integral, non-zero only — see
    #: ``trial_metrics``); integer-summed by the aggregator, so merges
    #: stay exact and order-independent
    metrics: Dict[str, int] = field(default_factory=dict)
    #: single taxonomy label for the whole trial — one of
    #: :data:`~repro.faults.events.TRIAL_OUTCOMES` ("" = classify lazily,
    #: the back-compat path for records written before the taxonomy)
    outcome: str = ""
    #: harness-level failure detail (HANG/CRASH trials only)
    error: Optional[str] = None

    @property
    def cell(self) -> str:
        from repro.campaign.spec import cell_id
        return cell_id(self.scheme, self.workload, self.ser)

    def key(self) -> Tuple[str, int]:
        return (self.cell, self.seed)

    def count(self, outcome: Outcome) -> int:
        return self.outcomes.get(outcome.value, 0)

    @property
    def suffered_sdc(self) -> bool:
        return self.count(Outcome.SDC) > 0

    @property
    def suffered_due(self) -> bool:
        return self.count(Outcome.DETECTED_UNRECOVERABLE) > 0

    @property
    def recovered(self) -> bool:
        return self.count(Outcome.DETECTED_RECOVERED) > 0

    @property
    def taxonomy(self) -> str:
        """The trial's single outcome label (classifying lazily when the
        record predates the taxonomy field)."""
        return self.outcome or classify_trial(self.outcomes)

    # -- JSONL round-trip ---------------------------------------------------
    def to_record(self) -> Dict:
        record = {
            "cell": self.cell,
            "scheme": self.scheme,
            "workload": self.workload,
            "ser": self.ser,
            "seed": self.seed,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "strikes": self.strikes,
            "outcomes": {k: v for k, v in sorted(self.outcomes.items()) if v},
            "recovery_cycles": self.recovery_cycles,
            "metrics": {k: v for k, v in sorted(self.metrics.items()) if v},
            "outcome": self.taxonomy,
        }
        if self.error is not None:
            record["error"] = self.error
        return record

    @classmethod
    def from_record(cls, record: Dict) -> "TrialResult":
        # `.get` keeps stores written before the telemetry subsystem
        # readable (their trials simply contribute no metrics)
        return cls(scheme=record["scheme"], workload=record["workload"],
                   ser=float(record["ser"]), seed=int(record["seed"]),
                   cycles=int(record["cycles"]),
                   instructions=int(record["instructions"]),
                   strikes=int(record["strikes"]),
                   outcomes={k: int(v)
                             for k, v in record["outcomes"].items()},
                   recovery_cycles=int(record["recovery_cycles"]),
                   metrics={k: int(v)
                            for k, v in record.get("metrics", {}).items()},
                   outcome=record.get("outcome", ""),
                   error=record.get("error"))


def trial_metrics(run_metrics: Dict[str, float]) -> Dict[str, int]:
    """Scheme-level metric counters worth persisting per trial.

    Per-core counters (``core0.*``) are dropped — they are bulky and
    derivable from debugging single runs — and only non-zero *integral*
    values survive, so the aggregate's integer sums stay exact regardless
    of merge order (the campaign determinism invariant).
    """
    out: Dict[str, int] = {}
    for name, value in run_metrics.items():
        if name.startswith("core"):
            continue
        if not value or float(value) != int(value):
            continue
        out[name] = int(value)
    return out


def build_injector(trial: TrialSpec):
    """The injector a trial's ``fault_model`` calls for, seeded from the
    trial so the run stays a pure function of its :class:`TrialSpec`."""
    if trial.fault_model == "adversarial":
        from repro.faults.adversarial import adversarial_injector
        return adversarial_injector(trial.scheme, trial.ser, seed=trial.seed)
    from repro.faults.injector import FaultInjector
    return FaultInjector(trial.ser, seed=trial.seed)


def hang_result(trial: TrialSpec, exc) -> TrialResult:
    """A :class:`TrialResult` for a watchdog-tripped (wedged) simulation.

    The simulation never finished, so per-event adjudication is moot; the
    whole trial is the single ``HANG`` outcome, keeping the partial cycle
    and commit counts the watchdog salvaged from the wreck.
    """
    return TrialResult(scheme=trial.scheme, workload=trial.workload,
                       ser=trial.ser, seed=trial.seed,
                       cycles=int(getattr(exc, "cycles", 0)),
                       instructions=int(getattr(exc, "committed", 0)),
                       strikes=0, outcomes={Outcome.HANG.value: 1},
                       recovery_cycles=0, outcome="hang", error=str(exc))


def crash_result(trial: TrialSpec, cause: str) -> TrialResult:
    """A :class:`TrialResult` for a trial whose *harness* died.

    Recorded so one pathological seed documents itself in the store as a
    ``CRASH`` instead of aborting the whole grid. ``cause`` keeps the
    traceback tail for debugging.
    """
    return TrialResult(scheme=trial.scheme, workload=trial.workload,
                       ser=trial.ser, seed=trial.seed,
                       cycles=0, instructions=0, strikes=0,
                       outcomes={Outcome.CRASH.value: 1},
                       recovery_cycles=0, outcome="crash",
                       error=cause[-2000:])


def finish_trial(trial: TrialSpec, res) -> TrialResult:
    """Adjudicate a finished run into a :class:`TrialResult`.

    Pure function of the :class:`~repro.redundancy.stats.RunResult` —
    shared verbatim between the full-replay path below and the
    differential-replay path (:mod:`repro.campaign.snapshot`), which is
    what makes "both modes produce byte-identical records" a property of
    the simulation, not of two parallel adjudication implementations.
    """
    from repro.schemes import get as get_scheme

    outcomes = Counter(e.outcome.value for e in res.fault_events
                       if e.outcome is not None)
    # Each scheme declares which `extra` keys charge recovery/rollback
    # cycles (UnSync charges recovery_cycles, Reunion rollback_cycles);
    # the default covers both, byte-identically to the old hard-coded sum.
    recovery = get_scheme(trial.scheme).recovery_cycles(res.extra)
    return TrialResult(scheme=trial.scheme, workload=trial.workload,
                       ser=trial.ser, seed=trial.seed,
                       cycles=res.cycles, instructions=res.instructions,
                       strikes=len(res.fault_events),
                       outcomes=dict(outcomes), recovery_cycles=recovery,
                       metrics=trial_metrics(res.metrics),
                       outcome=classify_trial(dict(outcomes)))


def run_trial(trial: TrialSpec) -> TrialResult:
    """Worker entry point: run one seeded injection trial.

    Imports stay inside the function so a forked/spawned worker only
    pays for what it uses (the same convention as
    ``repro.harness.parallel._run_one``).
    """
    from repro.harness.runner import run_scheme
    from repro.redundancy.pair import SimulationHang

    program = CONTEXT.program(trial.workload)
    injector = build_injector(trial)
    try:
        res = run_scheme(trial.scheme, program, injector=injector,
                         max_cycles=trial.watchdog_cycles)
    except SimulationHang as exc:
        return hang_result(trial, exc)
    return finish_trial(trial, res)
