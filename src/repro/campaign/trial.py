"""One Monte Carlo trial: seed in, adjudicated outcomes out.

``run_trial`` is the process-pool worker entry point (top-level so it
pickles). It deliberately contains *no* simulation logic of its own —
the injector, detectors and recovery paths are exactly the ones
``repro run --inject`` exercises, so campaign statistics and single-run
debugging always agree.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.campaign.spec import TrialSpec
from repro.faults.events import Outcome

#: outcome keys in record order (FaultEvent outcomes plus derived ones)
OUTCOME_KEYS: Tuple[str, ...] = tuple(o.value for o in Outcome)


class _TrialContext:
    """Per-worker memo of assembled programs and golden reference runs.

    A pool worker receives many trials for the same handful of workloads;
    assembling a kernel from source on every ``load_workload`` call (and
    re-interpreting it for any golden-reference consumer) was measurable
    against trials that simulate only a few thousand instructions. The
    context lives at module level, so it persists for the lifetime of the
    worker process, and programs are immutable (``Instruction`` is frozen)
    so sharing one instance across trials is safe.
    """

    __slots__ = ("programs", "goldens")

    def __init__(self) -> None:
        self.programs: Dict[str, object] = {}
        self.goldens: Dict[str, object] = {}

    def program(self, workload: str):
        """The assembled :class:`~repro.isa.program.Program` (memoized)."""
        prog = self.programs.get(workload)
        if prog is None:
            from repro.workloads import load_workload
            prog = self.programs[workload] = load_workload(workload)
        return prog

    def golden(self, workload: str):
        """The fault-free golden run of ``workload`` (memoized)."""
        res = self.goldens.get(workload)
        if res is None:
            from repro.isa import golden
            res = self.goldens[workload] = golden.run(
                self.program(workload), max_instructions=2_000_000)
        return res

    def clear(self) -> None:
        self.programs.clear()
        self.goldens.clear()


#: the worker-process-wide context ``run_trial`` pulls programs from
CONTEXT = _TrialContext()


@dataclass(frozen=True)
class TrialResult:
    """Everything one trial contributes to the campaign aggregate.

    All counters are integers so that aggregation is exact and
    order-independent — the root of the serial == parallel and
    resumed == uninterrupted guarantees.
    """

    scheme: str
    workload: str
    ser: float
    seed: int
    cycles: int
    instructions: int
    #: strikes injected during the run
    strikes: int
    #: Outcome.value -> event count
    outcomes: Dict[str, int]
    #: total recovery/rollback cycles charged during the run
    recovery_cycles: int
    #: scheme-level telemetry counters (integral, non-zero only — see
    #: ``trial_metrics``); integer-summed by the aggregator, so merges
    #: stay exact and order-independent
    metrics: Dict[str, int] = field(default_factory=dict)

    @property
    def cell(self) -> str:
        from repro.campaign.spec import cell_id
        return cell_id(self.scheme, self.workload, self.ser)

    def key(self) -> Tuple[str, int]:
        return (self.cell, self.seed)

    def count(self, outcome: Outcome) -> int:
        return self.outcomes.get(outcome.value, 0)

    @property
    def suffered_sdc(self) -> bool:
        return self.count(Outcome.SDC) > 0

    @property
    def suffered_due(self) -> bool:
        return self.count(Outcome.DETECTED_UNRECOVERABLE) > 0

    @property
    def recovered(self) -> bool:
        return self.count(Outcome.DETECTED_RECOVERED) > 0

    # -- JSONL round-trip ---------------------------------------------------
    def to_record(self) -> Dict:
        return {
            "cell": self.cell,
            "scheme": self.scheme,
            "workload": self.workload,
            "ser": self.ser,
            "seed": self.seed,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "strikes": self.strikes,
            "outcomes": {k: v for k, v in sorted(self.outcomes.items()) if v},
            "recovery_cycles": self.recovery_cycles,
            "metrics": {k: v for k, v in sorted(self.metrics.items()) if v},
        }

    @classmethod
    def from_record(cls, record: Dict) -> "TrialResult":
        # `.get` keeps stores written before the telemetry subsystem
        # readable (their trials simply contribute no metrics)
        return cls(scheme=record["scheme"], workload=record["workload"],
                   ser=float(record["ser"]), seed=int(record["seed"]),
                   cycles=int(record["cycles"]),
                   instructions=int(record["instructions"]),
                   strikes=int(record["strikes"]),
                   outcomes={k: int(v)
                             for k, v in record["outcomes"].items()},
                   recovery_cycles=int(record["recovery_cycles"]),
                   metrics={k: int(v)
                            for k, v in record.get("metrics", {}).items()})


def trial_metrics(run_metrics: Dict[str, float]) -> Dict[str, int]:
    """Scheme-level metric counters worth persisting per trial.

    Per-core counters (``core0.*``) are dropped — they are bulky and
    derivable from debugging single runs — and only non-zero *integral*
    values survive, so the aggregate's integer sums stay exact regardless
    of merge order (the campaign determinism invariant).
    """
    out: Dict[str, int] = {}
    for name, value in run_metrics.items():
        if name.startswith("core"):
            continue
        if not value or float(value) != int(value):
            continue
        out[name] = int(value)
    return out


def run_trial(trial: TrialSpec) -> TrialResult:
    """Worker entry point: run one seeded injection trial.

    Imports stay inside the function so a forked/spawned worker only
    pays for what it uses (the same convention as
    ``repro.harness.parallel._run_one``).
    """
    from repro.faults.injector import FaultInjector
    from repro.harness.runner import run_scheme

    program = CONTEXT.program(trial.workload)
    injector = FaultInjector(trial.ser, seed=trial.seed)
    res = run_scheme(trial.scheme, program, injector=injector)
    outcomes = Counter(e.outcome.value for e in res.fault_events
                       if e.outcome is not None)
    # UnSync charges recovery_cycles, Reunion rollback_cycles; both are
    # integer cycle totals reported through `extra`.
    recovery = int(res.extra.get("recovery_cycles", 0)
                   + res.extra.get("rollback_cycles", 0))
    return TrialResult(scheme=trial.scheme, workload=trial.workload,
                       ser=trial.ser, seed=trial.seed,
                       cycles=res.cycles, instructions=res.instructions,
                       strikes=len(res.fault_events),
                       outcomes=dict(outcomes), recovery_cycles=recovery,
                       metrics=trial_metrics(res.metrics))
