"""Append-only JSONL result store — the campaign's durability layer.

Layout: line 1 is the spec header, every further line one completed
trial::

    {"kind": "spec", "spec": {...}}
    {"kind": "trial", "cell": "unsync/sha/0.0001", "seed": 3, ...}

Records are flushed per trial, so a campaign killed at any instant loses
at most the line being written. On resume the reader tolerates exactly
that: a torn (unparsable or truncated) *final* line is dropped; garbage
anywhere earlier is corruption and raises. Trials are keyed by
``(cell, seed)`` — the engine skips keys already present, and readers
deduplicate on first occurrence so a re-run trial (its record torn, then
rewritten) cannot double-count.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.campaign.spec import CampaignError, CampaignSpec

SPEC_KIND = "spec"
TRIAL_KIND = "trial"


class StoreCorruption(CampaignError):
    """A non-final line of the store failed to parse."""


class ResultStore:
    """One campaign's JSONL file.

    ``on_append`` is an observer hook fired *after* each durably written
    trial record — the campaign service feeds its live rollups from it.
    Observation never influences what is written, so the hook cannot
    perturb the store's byte-identity guarantees.
    """

    def __init__(self, path,
                 on_append: Optional[Callable[[Dict], None]] = None) -> None:
        self.path = os.fspath(path)
        self.on_append = on_append

    def exists(self) -> bool:
        return os.path.exists(self.path) and os.path.getsize(self.path) > 0

    # -- writing ------------------------------------------------------------
    def repair(self) -> bool:
        """Truncate torn trailing data left by a killed writer.

        Must run before any append to a pre-existing store: a torn final
        line is tolerated by readers, but appending *past* it would turn
        it into mid-file corruption. A trailer that parses and only lost
        its newline is completed instead of dropped. Returns True if the
        file was modified.
        """
        if not os.path.exists(self.path):
            return False
        with open(self.path, "rb+") as fh:
            data = fh.read()
            end = len(data)
            changed = False
            if data and not data.endswith(b"\n"):
                nl = data.rfind(b"\n")
                try:
                    json.loads(data[nl + 1:])
                except json.JSONDecodeError:
                    end = nl + 1
                    changed = True
                else:
                    fh.write(b"\n")
                    return True
            while end > 0:
                prev = data.rfind(b"\n", 0, end - 1)
                line = data[prev + 1:end].strip()
                if not line:
                    end = prev + 1
                    changed = True
                    continue
                try:
                    json.loads(line)
                    break
                except json.JSONDecodeError:
                    end = prev + 1
                    changed = True
            if changed:
                fh.truncate(end)
        return changed

    def create(self, spec: CampaignSpec) -> None:
        """Start a fresh store with the spec header."""
        if self.exists():
            raise CampaignError(f"store {self.path!r} already exists")
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(self.path, "w") as fh:
            fh.write(json.dumps({"kind": SPEC_KIND, "spec": spec.to_dict()},
                                sort_keys=True) + "\n")

    def append_trial(self, record: Dict) -> None:
        """Durably append one completed trial."""
        line = json.dumps(dict(record, kind=TRIAL_KIND), sort_keys=True)
        # flush-per-line: a SIGKILL loses at most the line being written
        # (the reader drops a torn final line)
        with open(self.path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
        if self.on_append is not None:
            self.on_append(record)

    # -- reading ------------------------------------------------------------
    def _records(self) -> Iterator[Dict]:
        with open(self.path) as fh:
            lines = fh.read().splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    return  # torn final line from a killed campaign
                raise StoreCorruption(
                    f"{self.path}:{i + 1}: unparsable non-final record")

    def load_spec(self) -> CampaignSpec:
        for record in self._records():
            if record.get("kind") != SPEC_KIND:
                raise StoreCorruption(
                    f"{self.path}: first record is not a spec header")
            return CampaignSpec.from_dict(record["spec"])
        raise CampaignError(f"store {self.path!r} is empty")

    def iter_trials(self) -> Iterator[Dict]:
        """Trial records in write order, deduplicated on (cell, seed)."""
        seen: Set[Tuple[str, int]] = set()
        for record in self._records():
            if record.get("kind") != TRIAL_KIND:
                continue
            key = (record["cell"], record["seed"])
            if key in seen:
                continue
            seen.add(key)
            yield record

    def completed(self) -> Set[Tuple[str, int]]:
        """Keys of every trial already on disk."""
        return {(r["cell"], r["seed"]) for r in self.iter_trials()}

    def trial_records(self) -> List[Dict]:
        return list(self.iter_trials())
