"""Streaming per-cell aggregation of campaign outcomes.

Aggregates are pure integer accumulators (trial counts, strike counts,
cycle sums), so adding results in any order yields bit-identical state —
the property the resume and serial-vs-parallel determinism tests pin.
Proportions are reported with Wilson confidence intervals from
:mod:`repro.harness.statistics`, which also drive the engine's optional
sequential early stopping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.trial import TrialResult
from repro.faults.events import TRIAL_OUTCOMES
from repro.harness.statistics import Interval, wilson_interval


def _interval_dict(iv: Interval) -> Dict[str, float]:
    return {"estimate": iv.estimate, "low": iv.low, "high": iv.high}


@dataclass
class CellAggregate:
    """Running totals for one (scheme, workload, SER) cell."""

    cell: str
    trials: int = 0
    strikes: int = 0
    cycles: int = 0
    instructions: int = 0
    recovery_cycles: int = 0
    #: trials that suffered >=1 silent data corruption
    sdc_trials: int = 0
    #: trials with >=1 detected-but-unrecoverable event
    due_trials: int = 0
    #: trials with >=1 successful detect-and-recover
    recovered_trials: int = 0
    #: trials whose run saw no strike at all
    clean_trials: int = 0
    #: raw event counts per Outcome.value
    events: Dict[str, int] = field(default_factory=dict)
    #: whole-trial taxonomy label -> trial count (every trial lands in
    #: exactly ONE bucket of TRIAL_OUTCOMES; sums to ``trials``)
    outcome_trials: Dict[str, int] = field(default_factory=dict)
    #: summed per-trial telemetry counters (integers -> exact merges)
    metrics: Dict[str, int] = field(default_factory=dict)

    def add(self, result: TrialResult) -> None:
        self.trials += 1
        self.strikes += result.strikes
        self.cycles += result.cycles
        self.instructions += result.instructions
        self.recovery_cycles += result.recovery_cycles
        self.sdc_trials += 1 if result.suffered_sdc else 0
        self.due_trials += 1 if result.suffered_due else 0
        self.recovered_trials += 1 if result.recovered else 0
        self.clean_trials += 1 if result.strikes == 0 else 0
        label = result.taxonomy
        self.outcome_trials[label] = self.outcome_trials.get(label, 0) + 1
        for key, count in result.outcomes.items():
            self.events[key] = self.events.get(key, 0) + count
        for key, value in result.metrics.items():
            self.metrics[key] = self.metrics.get(key, 0) + value

    # -- proportions --------------------------------------------------------
    def proportion(self, successes: int,
                   confidence: float = 0.95) -> Interval:
        return wilson_interval(successes, self.trials, confidence=confidence)

    @property
    def sdc_interval(self) -> Interval:
        return self.proportion(self.sdc_trials)

    @property
    def due_interval(self) -> Interval:
        return self.proportion(self.due_trials)

    @property
    def recovered_interval(self) -> Interval:
        return self.proportion(self.recovered_trials)

    @property
    def hang_trials(self) -> int:
        return self.outcome_trials.get("hang", 0)

    @property
    def crash_trials(self) -> int:
        return self.outcome_trials.get("crash", 0)

    @property
    def hang_interval(self) -> Interval:
        return self.proportion(self.hang_trials)

    @property
    def crash_interval(self) -> Interval:
        return self.proportion(self.crash_trials)

    def ci_met(self, halfwidth: Optional[float]) -> bool:
        """Sequential early-stop test on the SDC proportion's CI."""
        if halfwidth is None or self.trials == 0:
            return False
        return self.sdc_interval.width / 2 <= halfwidth

    def summary(self) -> Dict:
        def mean(total: float) -> float:
            return total / self.trials if self.trials else 0.0
        return {
            "trials": self.trials,
            "strikes": self.strikes,
            "clean_trials": self.clean_trials,
            "events": dict(sorted(self.events.items())),
            "outcomes_by_trial": {label: self.outcome_trials.get(label, 0)
                                  for label in TRIAL_OUTCOMES},
            "p_sdc": _interval_dict(self.sdc_interval),
            "p_due": _interval_dict(self.due_interval),
            "p_recovered": _interval_dict(self.recovered_interval),
            "p_hang": _interval_dict(self.hang_interval),
            "p_crash": _interval_dict(self.crash_interval),
            "mean_cycles": mean(self.cycles),
            "mean_recovery_cycles": mean(self.recovery_cycles),
            "ipc": (self.instructions / self.cycles if self.cycles else 0.0),
            "metrics": dict(sorted(self.metrics.items())),
        }


class Aggregator:
    """All cells of a campaign, streamed."""

    def __init__(self) -> None:
        self.cells: Dict[str, CellAggregate] = {}

    def add(self, result: TrialResult) -> None:
        cell = result.cell
        if cell not in self.cells:
            self.cells[cell] = CellAggregate(cell)
        self.cells[cell].add(result)

    def get(self, cell: str) -> Optional[CellAggregate]:
        return self.cells.get(cell)

    @property
    def total_trials(self) -> int:
        return sum(c.trials for c in self.cells.values())

    def summary(self, cell_order: Optional[List[str]] = None) -> Dict:
        """Machine-readable per-cell + total statistics.

        ``cell_order`` (the spec's canonical cell list) fixes the key
        order so two summaries of the same campaign serialize
        identically; cells never run (e.g. an aborted campaign) are
        omitted.
        """
        order = cell_order if cell_order is not None else sorted(self.cells)
        cells = {c: self.cells[c].summary() for c in order if c in self.cells}
        totals = {
            "trials": sum(c["trials"] for c in cells.values()),
            "strikes": sum(c["strikes"] for c in cells.values()),
            "sdc_trials": sum(self.cells[c].sdc_trials for c in cells),
            "due_trials": sum(self.cells[c].due_trials for c in cells),
            "recovered_trials": sum(self.cells[c].recovered_trials
                                    for c in cells),
            "hang_trials": sum(self.cells[c].hang_trials for c in cells),
            "crash_trials": sum(self.cells[c].crash_trials for c in cells),
        }
        return {"cells": cells, "totals": totals}
