"""Campaign orchestration: expand, resume, fan out, aggregate.

Execution proceeds in **waves**. Each wave takes, from every cell that
is still active, the missing trials of its earliest incomplete batch,
and fans the union across the executor. At wave boundaries — and only
there — the engine re-derives each cell's situation *from the store
contents*:

* all trials present           -> cell finished;
* a full prefix of batches present and the SDC CI narrow enough
  (``spec.ci_halfwidth``)      -> cell early-stopped, rest skipped;
* otherwise                    -> schedule the earliest incomplete batch.

Because the decision inputs are deterministic functions of the completed
trial set, and every trial is a pure function of its seed, a campaign
killed at any point and resumed reaches byte-identical statistics, and
``workers=1`` and ``workers=N`` runs are indistinguishable in every
number they report (the tests pin both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    TextIO,
    Tuple,
)

from repro.campaign.aggregate import Aggregator, CellAggregate
from repro.campaign.executor import ExecutionReport, execute_trials, run_trial
from repro.campaign.progress import ProgressTracker, Ticker
from repro.campaign.spec import (
    CampaignError,
    CampaignSpec,
    TrialSpec,
    cell_id,
)
from repro.campaign.store import ResultStore
from repro.campaign.trial import TrialResult


@dataclass
class CampaignSummary:
    """The campaign's final word: statistics plus observability."""

    spec: Dict
    cells: Dict
    totals: Dict
    progress: Optional[Dict] = None
    early_stopped: List[str] = field(default_factory=list)
    #: per-scheme silicon cost (area/power vs the unprotected baseline),
    #: from each scheme's registry-declared ``system_cost`` — a pure
    #: function of the spec, so it belongs in the deterministic portion
    hwcost: Dict = field(default_factory=dict)

    def stats_dict(self) -> Dict:
        """The deterministic portion (no timing) — what the resume and
        serial-vs-parallel tests compare byte-for-byte."""
        return {"spec": self.spec, "cells": self.cells,
                "totals": self.totals,
                "early_stopped": sorted(self.early_stopped),
                "hwcost": self.hwcost}

    def to_dict(self) -> Dict:
        data = self.stats_dict()
        data["progress"] = self.progress
        return data


def _scheme_hwcost(schemes: Sequence[str]) -> Dict:
    """Per-scheme silicon cost section for the campaign summary.

    Every number is a pure function of the scheme registry (no
    simulation state), so the section is identical across serial,
    parallel, resumed and summarize-only paths. Schemes whose descriptor
    declares no cost model are simply absent.
    """
    from repro.hwcost.redundancy_cost import unprotected_cost
    from repro.schemes import get as get_scheme

    base = unprotected_cost()
    section: Dict = {}
    for name in schemes:
        cost = get_scheme(name).system_cost()
        if cost is None:
            continue
        section[name] = {
            "n_cores": cost.n_cores,
            "area_um2": round(cost.total_area_um2, 3),
            "power_w": round(cost.total_power_w, 6),
            "area_overhead": round(cost.area_vs(base), 6),
            "power_overhead": round(cost.power_vs(base), 6),
            "self_correcting": cost.self_correcting,
        }
    return section


def _preload(store: ResultStore, aggregator: Aggregator
             ) -> Dict[Tuple[str, int], TrialResult]:
    """Replay the store into the aggregator; returns completed trials."""
    completed: Dict[Tuple[str, int], TrialResult] = {}
    for record in store.iter_trials():
        result = TrialResult.from_record(record)
        completed[result.key()] = result
        aggregator.add(result)
    return completed


def _prefix_aggregate(cell: str, batches: Sequence[Sequence[TrialSpec]],
                      completed: Dict[Tuple[str, int], TrialResult],
                      n_batches: int) -> CellAggregate:
    """Aggregate over exactly the first ``n_batches`` batches.

    The early-stop test must see the same trial set no matter when the
    campaign was interrupted, so it is evaluated on full batch prefixes
    only — never on whatever happens to be on disk.
    """
    agg = CellAggregate(cell)
    for batch in batches[:n_batches]:
        for trial in batch:
            agg.add(completed[trial.key()])
    return agg


#: campaign execution modes: ``full`` re-simulates every trial from
#: cycle 0; ``differential`` fast-forwards each trial from a cached
#: fault-free prefix snapshot (see :mod:`repro.campaign.snapshot`)
EXEC_MODES: Tuple[str, ...] = ("full", "differential")


def as_store(store_or_path) -> ResultStore:
    """Coerce a path into a :class:`ResultStore`; pass store objects
    through.

    Anything exposing ``append_trial`` (e.g. the service layer's
    :class:`~repro.service.shards.ShardedStore`) is treated as a store;
    everything else as a filesystem path. This is the engine's
    single-process -> multi-tenant seam: orchestration code above can
    swap the durability layer without the wave loop noticing.
    """
    if hasattr(store_or_path, "append_trial"):
        return store_or_path
    return ResultStore(store_or_path)


def store_append_order(spec: CampaignSpec,
                       records: Dict[Tuple[str, int], Dict]
                       ) -> List[Tuple[str, int]]:
    """The (cell, seed) order a fresh single-store run appends trials in.

    Mirrors the wave loop of :func:`run_campaign` exactly — waves take
    each active cell's earliest incomplete batch in canonical cell
    order, and early stopping is re-evaluated at clean batch prefixes
    from the *recorded* results — so replaying a complete trial set
    through it reconstructs the byte order of the equivalent
    uninterrupted single-store campaign. This is what makes a sharded
    store's merge verifiable: ``merge == single-store run`` byte for
    byte (the CI gate).

    Keys absent from ``records`` (an interrupted campaign) end the wave
    that first needs them; any unreachable leftovers are appended in
    sorted order so the merge is still total and deterministic.
    """
    completed: Dict[Tuple[str, int], TrialResult] = {}
    order: List[Tuple[str, int]] = []
    finished: Set[str] = set()
    cells = spec.cells()
    while True:
        wave: List[TrialSpec] = []
        for cell_axes in cells:
            cid = cell_id(*cell_axes)
            if cid in finished:
                continue
            batches = spec.batches(*cell_axes)
            pending_batch = None
            full_prefix = 0
            for i, batch in enumerate(batches):
                missing = [t for t in batch if t.key() not in completed]
                if missing:
                    pending_batch = missing
                    break
                full_prefix = i + 1
            if pending_batch is None:
                finished.add(cid)
                continue
            prefix_trials = full_prefix * spec.batch
            at_boundary = len(pending_batch) == len(batches[full_prefix])
            if (spec.ci_halfwidth is not None and at_boundary
                    and prefix_trials > 0):
                prefix = _prefix_aggregate(cid, batches, completed,
                                           full_prefix)
                if prefix.ci_met(spec.ci_halfwidth):
                    finished.add(cid)
                    continue
            wave.extend(pending_batch)
        if not wave:
            break
        progressed = False
        for trial in wave:
            record = records.get(trial.key())
            if record is None:
                continue  # interrupted before this trial ran
            order.append(trial.key())
            completed[trial.key()] = TrialResult.from_record(record)
            progressed = True
        if not progressed:
            break
    emitted = set(order)
    order.extend(sorted(k for k in records if k not in emitted))
    return order


def run_campaign(spec: CampaignSpec,
                 store_path,
                 workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 runner=run_trial,
                 progress_stream: Optional[TextIO] = None,
                 ticker_enabled: Optional[bool] = None,
                 exec_mode: str = "full",
                 snapshot_interval: Optional[int] = None,
                 should_stop: Optional[Callable[[], bool]] = None,
                 executor: Optional[Callable[..., List[TrialResult]]]
                 = None,
                 ) -> CampaignSummary:
    """Run (or resume) a campaign against a JSONL store.

    A fresh store is created from ``spec``; an existing one must carry an
    identical spec header, and its completed trials are skipped.
    ``store_path`` may also be an already-constructed store object (see
    :func:`as_store`) — the service layer passes sharded and observed
    stores through this seam. The returned summary's statistics depend
    only on the spec — never on worker count, timing, interruptions,
    retry history, or execution mode: ``exec_mode`` (and
    ``snapshot_interval``, differential-only) trade wall-clock for
    nothing else, so it is deliberately *not* part of the spec or the
    store header, and a store begun in one mode may be resumed in the
    other.

    ``should_stop`` is polled at wave boundaries only; returning True
    stops cleanly after the in-flight wave — every completed trial is
    already durably appended, so the campaign resumes from its store
    with nothing lost or repeated. This is the scheduler's cancellation
    and drain-on-shutdown hook, and by construction it can never change
    a statistic, only *when* the remaining trials run.

    ``executor`` replaces :func:`execute_trials` as the wave fan-out
    (same call signature and ordering contract); the service layer's
    distributed :class:`~repro.service.workers.WaveDispatcher` plugs in
    here without forking the wave loop, so batch boundaries, early
    stopping, and store append order stay identical to a local run.
    """
    if exec_mode not in EXEC_MODES:
        raise CampaignError(
            f"exec_mode {exec_mode!r} unknown (choose from {EXEC_MODES})")
    exec_fn = execute_trials if executor is None else executor
    submit_order = None
    if exec_mode == "differential" and runner is run_trial:
        # a caller-supplied runner wins over the mode switch (tests and
        # external harnesses replace the trial function wholesale)
        from repro.campaign.snapshot import (
            differential_runner,
            submission_key,
        )
        runner = differential_runner(snapshot_interval)
        submit_order = submission_key(snapshot_interval)
    store = as_store(store_path)
    store.repair()  # drop any torn final line before we append past it
    if store.exists():
        stored = store.load_spec()
        if stored != spec:
            raise CampaignError(
                f"store {store.path!r} holds a different campaign "
                f"(stored spec {stored.to_dict()} != requested "
                f"{spec.to_dict()}); pick a new store file or use "
                f"`campaign resume` to continue the stored one")
    else:
        store.create(spec)

    aggregator = Aggregator()
    completed = _preload(store, aggregator)

    tracker = ProgressTracker(planned=spec.total_trials)
    ticker = Ticker(tracker, stream=progress_stream, enabled=ticker_enabled)
    cells = spec.cells()
    for cell_axes in cells:
        cid = cell_id(*cell_axes)
        tracker.plan_cell(cid, spec.trials)
        already = sum(1 for t in spec.cell_trials(*cell_axes)
                      if t.key() in completed)
        if already:
            tracker.resume_skip(cid, already)

    early_stopped: List[str] = []
    finished: Set[str] = set()
    report = ExecutionReport()

    def on_result(result: TrialResult) -> None:
        store.append_trial(result.to_record())
        completed[result.key()] = result
        aggregator.add(result)
        tracker.update(result.cell)
        ticker.tick()

    try:
        while True:
            if should_stop is not None and should_stop():
                break  # graceful: everything completed is on disk
            wave: List[TrialSpec] = []
            for cell_axes in cells:
                cid = cell_id(*cell_axes)
                if cid in finished:
                    continue
                batches = spec.batches(*cell_axes)
                pending_batch = None
                full_prefix = 0
                for i, batch in enumerate(batches):
                    missing = [t for t in batch
                               if t.key() not in completed]
                    if missing:
                        pending_batch = missing
                        break
                    full_prefix = i + 1
                if pending_batch is None:
                    finished.add(cid)
                    tracker.finish_cell(cid)
                    continue
                # early-stop checks happen only on clean batch prefixes:
                # interrupted partial batches are completed first, so the
                # decision sequence is interruption-independent
                prefix_trials = full_prefix * spec.batch
                at_boundary = len(pending_batch) == len(
                    batches[full_prefix])
                if (spec.ci_halfwidth is not None and at_boundary
                        and prefix_trials > 0):
                    prefix = _prefix_aggregate(cid, batches, completed,
                                               full_prefix)
                    if prefix.ci_met(spec.ci_halfwidth):
                        finished.add(cid)
                        early_stopped.append(cid)
                        tracker.early_stop(cid)
                        tracker.finish_cell(cid)
                        continue
                wave.extend(pending_batch)
            if not wave:
                break
            wave_report = ExecutionReport()
            exec_fn(wave, workers=workers, timeout=timeout,
                    runner=runner, on_result=on_result,
                    report=wave_report, submit_order=submit_order)
            report.worker_failures += wave_report.worker_failures
            report.retries += wave_report.retries
            report.timeouts += wave_report.timeouts
            report.crashes += wave_report.crashes
            tracker.absorb(wave_report.worker_failures, wave_report.retries,
                           wave_report.timeouts, wave_report.crashes)
            if wave_report.degraded_to_serial:
                workers = 1  # the pool is gone; stay serial from here on
    finally:
        ticker.close()

    stats = aggregator.summary(cell_order=[cell_id(*c) for c in cells])
    return CampaignSummary(spec=spec.to_dict(), cells=stats["cells"],
                           totals=stats["totals"],
                           progress=tracker.summary(),
                           early_stopped=early_stopped,
                           hwcost=_scheme_hwcost(spec.schemes))


def summarize_store(store_path) -> CampaignSummary:
    """Aggregate whatever a store holds, without running anything.

    A campaign early-stopped cell is reported from its on-disk trials;
    the summary is byte-identical to what ``run_campaign`` returned for
    the same store (minus the progress section, which is ``None`` here).
    ``store_path`` may be a path or a store object (see :func:`as_store`).
    """
    store = as_store(store_path)
    if not store.exists():
        raise CampaignError(f"no campaign store at {store.path!r}")
    spec = store.load_spec()
    aggregator = Aggregator()
    completed = _preload(store, aggregator)
    cells = spec.cells()
    early_stopped = []
    for cell_axes in cells:
        done = sum(1 for t in spec.cell_trials(*cell_axes)
                   if t.key() in completed)
        if spec.ci_halfwidth is not None and 0 < done < spec.trials:
            early_stopped.append(cell_id(*cell_axes))
    stats = aggregator.summary(cell_order=[cell_id(*c) for c in cells])
    return CampaignSummary(spec=spec.to_dict(), cells=stats["cells"],
                           totals=stats["totals"], progress=None,
                           early_stopped=early_stopped,
                           hwcost=_scheme_hwcost(spec.schemes))


def summarize_stores(store_paths: Iterable) -> CampaignSummary:
    """Aggregate the union of several stores of ONE campaign.

    Every store (a path or store object) must carry an identical spec
    header; trials are deduplicated on (cell, seed) across stores in the
    order given, so summarizing a sharded store's shard files — in any
    order — reports exactly the statistics of the merged store.
    Aggregation is integer-sum order-independent, which is what makes
    that equivalence exact rather than approximate.
    """
    stores = [as_store(p) for p in store_paths]
    if not stores:
        raise CampaignError("no stores given")
    missing = [s.path for s in stores if not s.exists()]
    if missing:
        raise CampaignError(
            f"no campaign store at {missing[0]!r}")
    spec = stores[0].load_spec()
    for store in stores[1:]:
        other = store.load_spec()
        if other != spec:
            raise CampaignError(
                f"store {store.path!r} holds a different campaign than "
                f"{stores[0].path!r} (specs differ); summarize them "
                f"separately")
    aggregator = Aggregator()
    completed: Set[Tuple[str, int]] = set()
    for store in stores:
        for record in store.iter_trials():
            result = TrialResult.from_record(record)
            if result.key() in completed:
                continue
            completed.add(result.key())
            aggregator.add(result)
    cells = spec.cells()
    early_stopped = []
    for cell_axes in cells:
        done = sum(1 for t in spec.cell_trials(*cell_axes)
                   if t.key() in completed)
        if spec.ci_halfwidth is not None and 0 < done < spec.trials:
            early_stopped.append(cell_id(*cell_axes))
    stats = aggregator.summary(cell_order=[cell_id(*c) for c in cells])
    return CampaignSummary(spec=spec.to_dict(), cells=stats["cells"],
                           totals=stats["totals"], progress=None,
                           early_stopped=early_stopped,
                           hwcost=_scheme_hwcost(spec.schemes))
