"""Campaign observability: throughput, per-cell ETA, failure counts.

Two consumers, one source of truth. The :class:`ProgressTracker` keeps
the counters (injectable clock, so tests drive time by hand) and renders
both a single-line stderr ticker for humans and a machine-readable dict
for the summary. Timing numbers live *only* here — the statistical
summary stays bit-deterministic while the progress section is free to
report wall-clock truth.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, Optional, TextIO


class ProgressTracker:
    """Counters for one campaign run."""

    def __init__(self, planned: int,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._t0 = clock()
        self.planned = planned
        self.done = 0
        self.skipped_resume = 0
        self.skipped_early_stop = 0
        self.worker_failures = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes = 0
        self.cells_total = 0
        self.cells_finished = 0
        #: cell -> (done, planned) for per-cell ETA
        self._cells: Dict[str, list] = {}

    # -- engine hooks -------------------------------------------------------
    def plan_cell(self, cell: str, planned: int) -> None:
        self._cells[cell] = [0, planned]
        self.cells_total += 1

    def update(self, cell: str) -> None:
        self.done += 1
        if cell in self._cells:
            self._cells[cell][0] += 1

    def resume_skip(self, cell: str, n: int) -> None:
        """n trials found already complete in the store."""
        self.skipped_resume += n
        if cell in self._cells:
            self._cells[cell][0] += n

    def early_stop(self, cell: str) -> None:
        """A cell's CI converged; its remaining trials will never run."""
        done, planned = self._cells.get(cell, (0, 0))
        self.skipped_early_stop += planned - done
        self.planned -= planned - done
        if cell in self._cells:
            self._cells[cell][1] = done

    def finish_cell(self, cell: str) -> None:
        self.cells_finished += 1

    def absorb(self, worker_failures: int, retries: int,
               timeouts: int, crashes: int = 0) -> None:
        self.worker_failures += worker_failures
        self.retries += retries
        self.timeouts += timeouts
        self.crashes += crashes

    # -- derived ------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        return max(self._clock() - self._t0, 0.0)

    @property
    def remaining(self) -> int:
        return max(self.planned - self.skipped_resume - self.done, 0)

    @property
    def trials_per_second(self) -> float:
        return self.done / self.elapsed if self.elapsed > 0 else 0.0

    def eta_seconds(self) -> Optional[float]:
        rate = self.trials_per_second
        if rate <= 0:
            return None
        return self.remaining / rate

    def cell_eta_seconds(self, cell: str) -> Optional[float]:
        rate = self.trials_per_second
        if cell not in self._cells or rate <= 0:
            return None
        done, planned = self._cells[cell]
        return max(planned - done, 0) / rate

    # -- rendering ----------------------------------------------------------
    def render(self) -> str:
        eta = self.eta_seconds()
        eta_s = f"{eta:.0f}s" if eta is not None else "?"
        line = (f"campaign: {self.done + self.skipped_resume}/{self.planned} "
                f"trials  {self.trials_per_second:.1f} trials/s  eta {eta_s}"
                f"  cells {self.cells_finished}/{self.cells_total}")
        if self.worker_failures:
            line += f"  failures {self.worker_failures}"
        if self.skipped_early_stop:
            line += f"  early-stopped {self.skipped_early_stop}"
        return line

    def summary(self) -> Dict:
        return {
            "planned_trials": self.planned,
            "trials_run": self.done,
            "resumed_trials": self.skipped_resume,
            "early_stopped_trials": self.skipped_early_stop,
            "elapsed_seconds": self.elapsed,
            "trials_per_second": self.trials_per_second,
            "worker_failures": self.worker_failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "cells": {cell: {"done": done, "planned": planned,
                             "eta_seconds": self.cell_eta_seconds(cell)}
                      for cell, (done, planned)
                      in sorted(self._cells.items())},
        }


class Ticker:
    """Throttled single-line stderr progress display.

    Enabled by default only on a TTY, so pytest output and shell
    redirections stay clean; pass ``enabled=True`` to force.
    """

    def __init__(self, tracker: ProgressTracker,
                 stream: Optional[TextIO] = None,
                 interval: float = 0.5,
                 enabled: Optional[bool] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.tracker = tracker
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._clock = clock
        self._last = -float("inf")
        if enabled is None:
            enabled = bool(getattr(self.stream, "isatty", lambda: False)())
        self.enabled = enabled

    def tick(self, force: bool = False) -> None:
        if not self.enabled:
            return
        now = self._clock()
        if not force and now - self._last < self.interval:
            return
        self._last = now
        self.stream.write("\r\x1b[K" + self.tracker.render())
        self.stream.flush()

    def close(self) -> None:
        if self.enabled:
            self.tick(force=True)
            self.stream.write("\n")
            self.stream.flush()
