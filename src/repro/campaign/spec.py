"""Campaign specifications: the trial grid and its deterministic expansion.

A campaign is a grid of **cells** — one per (scheme, workload, SER) — and
every cell holds ``trials`` seeded Monte Carlo trials. The expansion
order is fixed (cell-major, seed-ascending) and every trial is fully
determined by its :class:`TrialSpec`, which is what makes campaigns
resumable and makes serial and parallel execution produce identical
numbers.

Trials inside a cell are grouped into fixed **batches** of ``batch``
seeds. The batch is the campaign's scheduling shard (one batch per cell
is fanned out per wave) *and* the sequential-early-stopping decision
boundary: the engine only evaluates a cell's confidence interval when a
whole prefix of batches has completed, so the decision sequence is
independent of interruptions and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


def _protected_schemes() -> Tuple[str, ...]:
    """Schemes a campaign may inject into — live registry view (the
    unprotected baseline declares ``protected = False``, so it is never
    a valid fault-injection target; a scheme registered by a plugin is
    immediately campaignable)."""
    from repro.schemes import protected_schemes
    return protected_schemes()


def __getattr__(name: str) -> Tuple[str, ...]:
    # PEP 562: PROTECTED_SCHEMES stays importable as a module attribute
    # but is derived from the scheme registry instead of a literal tuple.
    if name == "PROTECTED_SCHEMES":
        return _protected_schemes()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class CampaignError(ValueError):
    """Invalid campaign specification or store/spec mismatch."""


def cell_id(scheme: str, workload: str, ser: float) -> str:
    """Canonical cell key, e.g. ``"unsync/sha/0.0001"``."""
    return f"{scheme}/{workload}/{ser:g}"


@dataclass(frozen=True)
class TrialSpec:
    """One Monte Carlo trial: everything the worker needs, picklable."""

    scheme: str
    workload: str
    #: per-cycle strike rate for :class:`repro.faults.injector.FaultInjector`
    ser: float
    seed: int
    #: ``"standard"`` (isolated single-bit upsets) or ``"adversarial"``
    #: (multi-bit clusters, paired-core strikes, recovery chasing — see
    #: :mod:`repro.faults.adversarial`)
    fault_model: str = "standard"
    #: cycle-budget watchdog for this trial's simulation (``None`` keeps
    #: the runner's generous default); a tripped watchdog classifies the
    #: trial as ``HANG``
    watchdog_cycles: Optional[int] = None

    @property
    def cell(self) -> str:
        return cell_id(self.scheme, self.workload, self.ser)

    def key(self) -> Tuple[str, int]:
        """The store's dedup/resume key."""
        return (self.cell, self.seed)


@dataclass(frozen=True)
class CampaignSpec:
    """The full (scheme x workload x SER x seed) grid of a campaign."""

    schemes: Tuple[str, ...]
    workloads: Tuple[str, ...]
    #: per-cycle strike rates (use ``SERModel.per_cycle`` to derive one
    #: from a technology node)
    sers: Tuple[float, ...]
    #: seeded trials per cell
    trials: int
    seed_base: int = 0
    #: sequential early stopping: a cell stops once the Wilson CI on its
    #: SDC proportion has half-width <= this (None = run every trial)
    ci_halfwidth: Optional[float] = None
    #: trials per scheduling batch / early-stop decision boundary
    batch: int = 25
    #: fault model every trial uses (``"standard"`` or ``"adversarial"``)
    fault_model: str = "standard"
    #: per-trial cycle-budget watchdog (None = runner default)
    watchdog_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "sers", tuple(float(s) for s in self.sers))
        protected = _protected_schemes()
        for scheme in self.schemes:
            if scheme not in protected:
                raise CampaignError(
                    f"scheme {scheme!r} cannot take fault injection "
                    f"(choose from {protected})")
        if not self.schemes or not self.workloads or not self.sers:
            raise CampaignError("campaign grid has an empty axis")
        if any(s < 0 for s in self.sers):
            raise CampaignError("SER rates must be non-negative")
        if len(set(self.sers)) != len(self.sers):
            raise CampaignError("duplicate SER rates in grid")
        if self.trials <= 0:
            raise CampaignError("need at least one trial per cell")
        if self.batch <= 0:
            raise CampaignError("batch must be positive")
        if self.ci_halfwidth is not None and not 0 < self.ci_halfwidth < 1:
            raise CampaignError("ci_halfwidth must be in (0, 1)")
        from repro.faults.adversarial import FAULT_MODELS
        if self.fault_model not in FAULT_MODELS:
            raise CampaignError(
                f"fault_model {self.fault_model!r} unknown "
                f"(choose from {FAULT_MODELS})")
        if self.watchdog_cycles is not None and self.watchdog_cycles <= 0:
            raise CampaignError("watchdog_cycles must be positive")

    # -- expansion ----------------------------------------------------------
    def cells(self) -> List[Tuple[str, str, float]]:
        """All (scheme, workload, ser) cells in canonical order."""
        return [(s, w, r) for s in self.schemes for w in self.workloads
                for r in self.sers]

    def cell_trials(self, scheme: str, workload: str,
                    ser: float) -> List[TrialSpec]:
        """One cell's trials in seed order."""
        return [TrialSpec(scheme, workload, ser, self.seed_base + i,
                          fault_model=self.fault_model,
                          watchdog_cycles=self.watchdog_cycles)
                for i in range(self.trials)]

    def expand(self) -> List[TrialSpec]:
        """Every trial of the campaign, cell-major, seed-ascending."""
        return [t for cell in self.cells() for t in self.cell_trials(*cell)]

    def batches(self, scheme: str, workload: str,
                ser: float) -> List[List[TrialSpec]]:
        """A cell's trials chunked into fixed scheduling batches."""
        trials = self.cell_trials(scheme, workload, ser)
        return [trials[i:i + self.batch]
                for i in range(0, len(trials), self.batch)]

    @property
    def total_trials(self) -> int:
        return len(self.schemes) * len(self.workloads) * len(self.sers) \
            * self.trials

    def fingerprint(self) -> str:
        """Short stable digest of the canonical spec JSON.

        Two specs share a fingerprint iff they are equal, so the service
        journal can verify that a re-adopted job's on-disk store still
        belongs to the spec it was submitted with before resuming it.
        """
        import hashlib
        import json
        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    # -- JSON round-trip (the store header) ---------------------------------
    def to_dict(self) -> Dict:
        return {
            "schemes": list(self.schemes),
            "workloads": list(self.workloads),
            "sers": list(self.sers),
            "trials": self.trials,
            "seed_base": self.seed_base,
            "ci_halfwidth": self.ci_halfwidth,
            "batch": self.batch,
            "fault_model": self.fault_model,
            "watchdog_cycles": self.watchdog_cycles,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignSpec":
        try:
            return cls(schemes=tuple(data["schemes"]),
                       workloads=tuple(data["workloads"]),
                       sers=tuple(data["sers"]),
                       trials=int(data["trials"]),
                       seed_base=int(data.get("seed_base", 0)),
                       ci_halfwidth=data.get("ci_halfwidth"),
                       batch=int(data.get("batch", 25)),
                       fault_model=data.get("fault_model", "standard"),
                       watchdog_cycles=data.get("watchdog_cycles"))
        except KeyError as exc:
            raise CampaignError(f"spec record missing field {exc}") from exc
