"""Shared retry policy: exponential backoff, full jitter, hard budgets.

PR 1's executor hand-rolled its failure policy (one in-process
completion attempt for a pool-failed trial, then record the trial as
CRASH); the distributed worker tier adds a second family of fallible
operations — worker<->coordinator HTTP calls — that needs backoff and
budgets too. This module is the single policy both use:

* :class:`RetryPolicy` — a frozen value object describing attempt
  count, backoff shape, and wall-clock budget.
* :func:`call_with_retry` — runs a callable under a policy, sleeping
  a **full-jitter** backoff between attempts: attempt ``i`` waits
  ``uniform(0, min(max_delay, base_delay * 2**i))``. Full jitter
  de-synchronises a fleet of retrying workers so an expired coordinator
  is not stampeded the instant it returns.

Everything is deterministic under a seeded ``random.Random`` — chaos
tests replay identical schedules, and the default RNG is seeded so two
runs of the same failure pattern back off identically.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, TypeVar

T = TypeVar("T")


class RetryError(RuntimeError):
    """Every attempt failed, or the wall-clock budget ran out.

    Carries the final underlying exception (``cause``) and how many
    attempts were actually made (``attempts``) so callers can classify
    the failure without parsing the message.
    """

    def __init__(self, message: str, cause: BaseException,
                 attempts: int) -> None:
        super().__init__(message)
        self.cause = cause
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry one fallible operation.

    ``max_attempts`` counts *calls*, not re-tries: ``1`` means a single
    attempt and no backoff at all. ``budget`` caps wall-clock seconds
    across all attempts and sleeps; exceeding it raises
    :class:`RetryError` even with attempts remaining (``None`` =
    unbounded). ``retryable`` is the exception-type allowlist — anything
    else propagates unchanged on the first occurrence.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    budget: Optional[float] = 30.0
    retryable: Tuple[type, ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise ValueError("delays must be non-negative")
        if self.budget is not None and self.budget <= 0.0:
            raise ValueError("budget must be positive (or None)")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Full-jitter backoff before attempt ``attempt + 1`` (0-based)."""
        cap = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        if cap <= 0.0:
            return 0.0
        return rng.uniform(0.0, cap)


#: The executor's historical policy: exactly one in-process completion
#: attempt for a pool-failed trial, no backoff — a deterministic
#: simulation retry gains nothing from sleeping.
TRIAL_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, max_delay=0.0,
                          budget=None)

#: Worker<->coordinator HTTP default: bounded attempts, jittered
#: backoff, and a hard wall-clock budget per logical call so a dead
#: coordinator fails the worker loop instead of wedging it.
HTTP_RETRY = RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=1.0,
                         budget=15.0, retryable=(OSError,))


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy = HTTP_RETRY,
    rng: Optional[random.Random] = None,
    retry_on: Optional[Callable[[BaseException], bool]] = None,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> T:
    """Call ``fn`` under ``policy``; return its value or raise.

    ``retry_on`` (a predicate over the raised exception) overrides the
    policy's ``retryable`` type tuple when given. ``on_retry(attempt,
    exc, delay)`` fires before each backoff sleep. Non-retryable
    exceptions propagate unchanged; exhausting attempts or the budget
    raises :class:`RetryError` chained to the last failure. The
    schedule is deterministic under a seeded ``rng`` (default:
    ``random.Random(0)`` per call, so identical failure patterns
    produce identical backoff sequences).
    """
    if rng is None:
        rng = random.Random(0)
    deadline = None if policy.budget is None else clock() + policy.budget
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except BaseException as exc:
            if retry_on is not None:
                should = retry_on(exc)
            else:
                should = isinstance(exc, policy.retryable)
            if not should:
                raise
            last = exc
        if attempt + 1 >= policy.max_attempts:
            break
        wait = policy.delay(attempt, rng)
        if deadline is not None and clock() + wait > deadline:
            raise RetryError(
                f"retry budget ({policy.budget}s) exhausted after "
                f"{attempt + 1} attempt(s): {last!r}",
                last, attempt + 1) from last
        if on_retry is not None:
            on_retry(attempt + 1, last, wait)
        if wait > 0.0:
            sleep(wait)
    assert last is not None
    raise RetryError(
        f"all {policy.max_attempts} attempt(s) failed: {last!r}",
        last, policy.max_attempts) from last
