"""Deterministic, seeded fault injection for the service stack itself.

PR 4 pointed an adversarial fault model at the simulated cores; this
module points the same methodology at the harness. A single
:class:`ChaosController`, parsed from a compact ``key=value`` spec
string, drives every injected failure from one seeded RNG plus
deterministic counters, so a chaos soak replays bit-for-bit:

Worker-side faults (``repro worker --chaos ...``):

* ``kill-after=N`` + ``kill-point=mid-wave|boundary`` — SIGKILL the
  worker process after its Nth executed trial, either *before* the
  lease's results are posted (mid-wave: work is lost, the lease must
  expire and requeue) or *after* (boundary: no work lost, tests clean
  worker-loss detection).
* ``hb-drop=K`` — swallow the first K heartbeats so the lease TTL
  lapses while the worker is still computing.
* ``hb-delay=S`` — delay every surviving heartbeat by S seconds.

Coordinator-side faults (``repro serve --chaos ...``):

* ``http-500-rate=P`` — fail worker-API requests with an injected 500.
* ``http-stall-rate=P`` + ``http-stall=S`` — stall worker-API
  responses past the client's socket timeout.
* ``tear-journal-every=N`` — tear every Nth journal append mid-line,
  simulating a writer killed between ``write`` and the newline.

All counters are per-process; the seed only feeds the rate-based
faults, so two processes given the same spec inject the same sequence.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

KILL_MID_WAVE = "mid-wave"
KILL_BOUNDARY = "boundary"


class ChaosError(ValueError):
    """A chaos spec string could not be parsed."""


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed ``--chaos`` spec; all faults disabled by default."""

    seed: int = 0
    kill_after: int = 0
    kill_point: str = KILL_MID_WAVE
    hb_drop: int = 0
    hb_delay: float = 0.0
    http_500_rate: float = 0.0
    http_stall_rate: float = 0.0
    http_stall: float = 0.5
    tear_journal_every: int = 0

    _INT_KEYS = ("seed", "kill-after", "hb-drop", "tear-journal-every")
    _FLOAT_KEYS = ("hb-delay", "http-500-rate", "http-stall-rate",
                   "http-stall")

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Parse ``key=value[,key=value...]`` into a config.

        Unknown keys and malformed values raise :class:`ChaosError`
        with the offending token, so a typo'd soak fails loudly
        instead of silently injecting nothing.
        """
        values: Dict[str, object] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            key, sep, raw = token.partition("=")
            if not sep:
                raise ChaosError(
                    f"chaos token {token!r} is not key=value")
            try:
                if key in cls._INT_KEYS:
                    values[key.replace("-", "_")] = int(raw)
                elif key in cls._FLOAT_KEYS:
                    values[key.replace("-", "_")] = float(raw)
                elif key == "kill-point":
                    if raw not in (KILL_MID_WAVE, KILL_BOUNDARY):
                        raise ChaosError(
                            f"kill-point must be {KILL_MID_WAVE!r} or "
                            f"{KILL_BOUNDARY!r}, not {raw!r}")
                    values["kill_point"] = raw
                else:
                    raise ChaosError(f"unknown chaos key {key!r}")
            except ValueError as exc:
                if isinstance(exc, ChaosError):
                    raise
                raise ChaosError(
                    f"bad value for chaos key {key!r}: {raw!r}") from exc
        return cls(**values)  # type: ignore[arg-type]


def _sigkill_self() -> None:
    os.kill(os.getpid(), signal.SIGKILL)


class ChaosController:
    """Stateful injector: one per process, counters plus a seeded RNG.

    ``kill`` is injectable for tests (the default really does SIGKILL
    the calling process, exactly like a crashed worker: no cleanup, no
    result post, no heartbeat goodbye).
    """

    def __init__(self, config: ChaosConfig,
                 kill: Callable[[], None] = _sigkill_self) -> None:
        self.config = config
        self._kill = kill
        self._rng = random.Random(config.seed)
        self._trials = 0
        self._heartbeats = 0
        self._appends = 0
        self._killed = False

    @classmethod
    def from_spec(cls, spec: Optional[str],
                  kill: Callable[[], None] = _sigkill_self,
                  ) -> Optional["ChaosController"]:
        """Build a controller from a spec string; None/empty -> None."""
        if not spec:
            return None
        return cls(ChaosConfig.parse(spec), kill=kill)

    # ----- worker side -------------------------------------------------
    def after_trial(self) -> None:
        """Called after each executed trial, before results are posted."""
        self._trials += 1
        if (self.config.kill_after
                and self.config.kill_point == KILL_MID_WAVE
                and self._trials >= self.config.kill_after
                and not self._killed):
            self._killed = True
            self._kill()

    def at_wave_boundary(self) -> None:
        """Called after a lease's results have been posted."""
        if (self.config.kill_after
                and self.config.kill_point == KILL_BOUNDARY
                and self._trials >= self.config.kill_after
                and not self._killed):
            self._killed = True
            self._kill()

    def drop_heartbeat(self) -> bool:
        """True if this heartbeat should be silently swallowed."""
        self._heartbeats += 1
        return self._heartbeats <= self.config.hb_drop

    def heartbeat_delay(self) -> float:
        return self.config.hb_delay

    # ----- coordinator side --------------------------------------------
    def http_fault(self) -> Optional[Tuple[str, float]]:
        """Fault for one worker-API request: ("error"|"stall", delay)."""
        roll = self._rng.random()
        if roll < self.config.http_500_rate:
            return ("error", 0.0)
        if roll < self.config.http_500_rate + self.config.http_stall_rate:
            return ("stall", self.config.http_stall)
        return None

    def tear_journal(self) -> bool:
        """True if this journal append should be torn mid-line."""
        every = self.config.tear_journal_every
        if not every:
            return False
        self._appends += 1
        return self._appends % every == 0
