"""The live dashboard page served at ``/`` by ``repro serve``.

One self-contained HTML document, no external assets: it subscribes to
``/api/stream`` (server-sent events) and renders the scheduler's rollup
— headline stat tiles, outcome proportions as single-hue bars with their
Wilson 95% CI whiskers, and the job table. Styling follows the repo's
data-viz conventions: role-based ink/surface tokens with a selected dark
mode, one categorical hue for the single measure (outcome rate), status
colors only on job-state chips and always beside their label, values
direct-labeled in ink rather than painted series colors.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro campaign service</title>
<style>
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb; --page: #f9f9f7;
    --text-primary: #0b0b0b; --text-secondary: #52514e;
    --muted: #898781; --grid: #e1e0d9; --baseline: #c3c2b7;
    --border: rgba(11,11,11,0.10);
    --series-1: #2a78d6;
    --status-good: #0ca30c; --status-warning: #fab219;
    --status-serious: #ec835a; --status-critical: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19; --page: #0d0d0d;
      --text-primary: #ffffff; --text-secondary: #c3c2b7;
      --muted: #898781; --grid: #2c2c2a; --baseline: #383835;
      --border: rgba(255,255,255,0.10);
      --series-1: #3987e5;
    }
  }
  :root[data-theme="dark"] .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
  body.viz-root {
    margin: 0; background: var(--page); color: var(--text-primary);
    font: 14px/1.45 system-ui, sans-serif; padding: 24px;
  }
  h1 { font-size: 18px; font-weight: 600; margin: 0 0 4px; }
  .sub { color: var(--text-secondary); margin-bottom: 20px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 24px; }
  .tile {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 16px; min-width: 130px;
  }
  .tile .label { color: var(--muted); font-size: 12px; }
  .tile .value { font-size: 26px; font-weight: 600; font-variant-numeric:
    tabular-nums; }
  section {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 16px; margin-bottom: 16px;
  }
  section h2 { font-size: 14px; font-weight: 600; margin: 0 0 12px; }
  .rate-row { display: grid; grid-template-columns: 90px 1fr 130px;
    align-items: center; gap: 10px; margin: 6px 0; }
  .rate-row .name { color: var(--text-secondary); }
  .rate-track { position: relative; height: 10px; background: var(--grid);
    border-radius: 4px; }
  .rate-fill { position: absolute; left: 0; top: 0; bottom: 0;
    background: var(--series-1); border-radius: 0 4px 4px 0; }
  .rate-ci { position: absolute; top: 4px; height: 2px;
    background: var(--text-secondary); opacity: 0.7; }
  .rate-val { color: var(--text-primary); font-variant-numeric:
    tabular-nums; text-align: right; font-size: 12px; }
  table { width: 100%; border-collapse: collapse; }
  th { text-align: left; color: var(--muted); font-weight: 500;
    font-size: 12px; border-bottom: 1px solid var(--baseline);
    padding: 4px 8px; }
  td { padding: 5px 8px; border-bottom: 1px solid var(--grid);
    font-variant-numeric: tabular-nums; }
  .chip { display: inline-block; padding: 1px 8px; border-radius: 999px;
    font-size: 12px; border: 1px solid var(--border); }
  .chip::before { content: "\\25CF\\00a0"; }
  .chip.done    { color: var(--status-good); }
  .chip.running { color: var(--series-1); }
  .chip.queued, .chip.suspended { color: var(--text-secondary); }
  .chip.failed  { color: var(--status-critical); }
  .chip.cancelled { color: var(--status-serious); }
  .foot { color: var(--muted); font-size: 12px; }
</style>
</head>
<body class="viz-root">
<h1>repro campaign service</h1>
<div class="sub">live MetricsRegistry rollups &mdash; outcome rates with
Wilson 95% CIs, throughput, and the job queue</div>
<div class="tiles">
  <div class="tile"><div class="label">trials completed</div>
    <div class="value" id="t-trials">&ndash;</div></div>
  <div class="tile"><div class="label">trials / sec (30s)</div>
    <div class="value" id="t-rate">&ndash;</div></div>
  <div class="tile"><div class="label">jobs running</div>
    <div class="value" id="t-running">&ndash;</div></div>
  <div class="tile"><div class="label">jobs queued</div>
    <div class="value" id="t-queued">&ndash;</div></div>
  <div class="tile"><div class="label">cached-verdict rate</div>
    <div class="value" id="t-cache">&ndash;</div></div>
</div>
<section>
  <h2>Outcome rates (of injected trials, Wilson 95% CI)</h2>
  <div id="rates"></div>
</section>
<section>
  <h2>Jobs</h2>
  <table>
    <thead><tr><th>job</th><th>tenant</th><th>prio</th><th>state</th>
      <th>progress</th><th>store</th></tr></thead>
    <tbody id="jobs"></tbody>
  </table>
</section>
<div class="foot" id="foot">connecting&hellip;</div>
<script>
  "use strict";
  const pct = (x) => (100 * x).toFixed(2) + "%";
  function render(r) {
    const t = r.totals;
    document.getElementById("t-trials").textContent = t.trials;
    document.getElementById("t-rate").textContent =
      r.trials_per_sec.toFixed(2);
    document.getElementById("t-running").textContent = t.jobs_running;
    document.getElementById("t-queued").textContent = t.jobs_queued;
    document.getElementById("t-cache").textContent =
      pct(t.cached_verdict_rate);
    const rates = document.getElementById("rates");
    rates.replaceChildren();
    for (const [name, iv] of Object.entries(t.rates)) {
      const row = document.createElement("div");
      row.className = "rate-row";
      row.title = name + ": " + pct(iv.estimate) + "  CI [" +
        pct(iv.low) + ", " + pct(iv.high) + "]";
      const track =
        '<div class="rate-track">' +
        '<div class="rate-fill" style="width:' + (100 * iv.estimate) +
        '%"></div>' +
        '<div class="rate-ci" style="left:' + (100 * iv.low) +
        '%; width:' + Math.max(0.3, 100 * (iv.high - iv.low)) +
        '%"></div></div>';
      row.innerHTML = '<div class="name">' + name + '</div>' + track +
        '<div class="rate-val">' + pct(iv.estimate) + ' [' +
        pct(iv.low) + ', ' + pct(iv.high) + ']</div>';
      rates.appendChild(row);
    }
    const jobs = document.getElementById("jobs");
    jobs.replaceChildren();
    for (const j of r.jobs) {
      const tr = document.createElement("tr");
      tr.innerHTML =
        "<td>" + j.job_id + "</td><td>" + j.tenant + "</td><td>" +
        j.priority + '</td><td><span class="chip ' + j.state + '">' +
        j.state + "</span></td><td>" + j.trials_done + " / " +
        j.total_trials + "</td><td>" + j.store + "</td>";
      jobs.appendChild(tr);
    }
    document.getElementById("foot").textContent =
      (r.draining ? "draining - " : "") + "live";
  }
  const source = new EventSource("/api/stream");
  source.onmessage = (e) => render(JSON.parse(e.data));
  source.onerror = () => {
    document.getElementById("foot").textContent =
      "stream disconnected - retrying";
  };
</script>
</body>
</html>
"""
