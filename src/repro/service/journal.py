"""Append-only job-state journal: how a restarted server re-adopts work.

The journal is to jobs what the campaign store is to trials — a
flush-per-line JSONL of state transitions::

    {"event": "submitted", "job_id": "job-000001", "spec": {...}, ...}
    {"event": "started",   "job_id": "job-000001"}
    {"event": "finished",  "job_id": "job-000001"}

Replaying it yields each job's last known state. A job whose last event
is not terminal (``finished``/``failed``/``cancelled``) was in flight
when the server died; on startup the scheduler resubmits it against its
recorded store, and the store's (cell, seed) keying guarantees the
resumed campaign re-runs only the missing trials — no trial lost, none
duplicated. The reader tolerates exactly one torn final line (a server
killed mid-append), the same contract as the campaign store.

Adoption is exclusive: :meth:`JobJournal.acquire_lock` takes an
``O_CREAT | O_EXCL`` lock file next to the journal so two servers
pointed at the same data dir cannot both re-adopt (and both restart)
the same orphaned jobs. A lock left behind by a dead process is
detected by pid liveness and broken automatically.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: job states a journal replay can surface
TERMINAL_EVENTS = frozenset({"finished", "failed", "cancelled"})

#: a pid-less lock older than this is presumed abandoned
STALE_LOCK_SECONDS = 300.0


class JournalLocked(RuntimeError):
    """Another live server owns this journal (double-adoption guard)."""


@dataclass
class JournalEntry:
    """Last known state of one journaled job."""

    job_id: str
    spec: Dict = field(default_factory=dict)
    tenant: str = "default"
    priority: int = 0
    store: str = ""
    shards: int = 0
    workers: Optional[int] = None
    exec_mode: str = "differential"
    fingerprint: str = ""
    state: str = "submitted"
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_EVENTS


class JobJournal:
    """One service instance's job-event JSONL."""

    def __init__(self, path, chaos=None) -> None:
        self.path = os.fspath(path)
        self.chaos = chaos
        self._locked = False

    # -- exclusive adoption -------------------------------------------------
    @property
    def lock_path(self) -> str:
        return self.path + ".lock"

    def acquire_lock(self, *,
                     stale_after: float = STALE_LOCK_SECONDS) -> None:
        """Take exclusive ownership of this journal or raise.

        Raises :class:`JournalLocked` if another *live* process holds
        the lock. A stale lock (holder pid no longer exists, or no pid
        and older than ``stale_after``) is broken and re-taken; the
        ``O_EXCL`` create arbitrates the resulting race — exactly one
        contender wins, the other sees the fresh live lock and raises.
        """
        if self._locked:
            return
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        for _ in range(3):
            try:
                fd = os.open(self.lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                holder = self._read_lock()
                if holder is None or self._lock_stale(holder, stale_after):
                    try:
                        os.unlink(self.lock_path)
                    except FileNotFoundError:
                        pass  # the other contender broke it first
                    continue
                raise JournalLocked(
                    f"journal {self.path!r} is owned by pid "
                    f"{holder.get('pid')} (lock file {self.lock_path!r}); "
                    f"if that server is really gone, delete the lock")
            with os.fdopen(fd, "w") as fh:
                json.dump({"pid": os.getpid(), "created": time.time()}, fh)
                fh.flush()
            self._locked = True
            return
        raise JournalLocked(
            f"could not win the lock race for {self.lock_path!r}")

    def release_lock(self) -> None:
        if not self._locked:
            return
        self._locked = False
        try:
            os.unlink(self.lock_path)
        except FileNotFoundError:
            pass  # an admin broke the lock by hand; nothing to release

    def _read_lock(self) -> Optional[Dict]:
        try:
            with open(self.lock_path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None  # vanished or garbled: treated as stale
        return data if isinstance(data, dict) else None

    def _lock_stale(self, holder: Dict, stale_after: float) -> bool:
        pid = holder.get("pid")
        if isinstance(pid, int):
            if pid == os.getpid():
                # another journal instance in this very process — a
                # second scheduler, not a dead one
                return False
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True
            except PermissionError:
                return False  # alive under another uid
            return False
        created = holder.get("created")
        if isinstance(created, (int, float)):
            return time.time() - created > stale_after
        return True

    # -- writing ------------------------------------------------------------
    def repair(self) -> bool:
        """Heal a torn trailing append before writing after it.

        A complete-but-newline-less final record gets its newline; a
        truly torn fragment is truncated away (its event is lost, which
        is crash-equivalent: re-adoption re-runs only missing trials).
        Returns True if the file was modified.
        """
        if not os.path.exists(self.path):
            return False
        with open(self.path, "rb+") as fh:
            data = fh.read()
            if not data or data.endswith(b"\n"):
                return False
            cut = data.rfind(b"\n") + 1
            try:
                json.loads(data[cut:].decode())
            except (UnicodeDecodeError, json.JSONDecodeError):
                fh.seek(cut)
                fh.truncate()
            else:
                fh.write(b"\n")
            fh.flush()
            return True

    def record(self, event: str, job_id: str, **fields: object) -> None:
        """Durably append one state transition."""
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self.repair()  # a torn tail must never become mid-file garbage
        entry = dict(fields, event=event, job_id=job_id)
        line = json.dumps(entry, sort_keys=True) + "\n"
        if self.chaos is not None and self.chaos.tear_journal():
            # simulate a writer killed between write() and the newline
            with open(self.path, "a") as fh:
                fh.write(line[:max(1, len(line) // 2)])
                fh.flush()
            return
        with open(self.path, "a") as fh:
            fh.write(line)
            fh.flush()

    def submitted(self, job_id: str, *, spec: Dict, tenant: str,
                  priority: int, store: str, shards: int,
                  workers: Optional[int], exec_mode: str,
                  fingerprint: str) -> None:
        self.record("submitted", job_id, spec=spec, tenant=tenant,
                    priority=priority, store=store, shards=shards,
                    workers=workers, exec_mode=exec_mode,
                    fingerprint=fingerprint)

    def started(self, job_id: str) -> None:
        self.record("started", job_id)

    def finished(self, job_id: str) -> None:
        self.record("finished", job_id)

    def failed(self, job_id: str, error: str) -> None:
        self.record("failed", job_id, error=error[-2000:])

    def cancelled(self, job_id: str) -> None:
        self.record("cancelled", job_id)

    # -- replay -------------------------------------------------------------
    def replay(self) -> List[JournalEntry]:
        """Each journaled job's last state, in first-submission order.

        A torn final line (server killed mid-append) is dropped;
        non-final garbage raises, mirroring the campaign store's
        corruption contract.
        """
        if not os.path.exists(self.path):
            return []
        with open(self.path) as fh:
            lines = fh.read().splitlines()
        jobs: Dict[str, JournalEntry] = {}
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn final line from a killed server
                raise ValueError(
                    f"{self.path}:{i + 1}: unparsable journal record")
            event = record.get("event")
            job_id = record.get("job_id")
            if not job_id:
                continue
            if event == "submitted":
                jobs[job_id] = JournalEntry(
                    job_id=job_id,
                    spec=record.get("spec", {}),
                    tenant=record.get("tenant", "default"),
                    priority=int(record.get("priority", 0)),
                    store=record.get("store", ""),
                    shards=int(record.get("shards", 0)),
                    workers=record.get("workers"),
                    exec_mode=record.get("exec_mode", "differential"),
                    fingerprint=record.get("fingerprint", ""))
            elif job_id in jobs:
                jobs[job_id].state = event or "submitted"
                if event == "failed":
                    jobs[job_id].error = record.get("error")
        return list(jobs.values())

    def orphans(self) -> List[JournalEntry]:
        """Jobs to re-adopt: journaled but never reached a terminal state."""
        return [entry for entry in self.replay() if not entry.terminal]

    def next_job_number(self) -> int:
        """1 + the highest numeric job suffix ever journaled."""
        highest = 0
        for entry in self.replay():
            suffix = entry.job_id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                highest = max(highest, int(suffix))
        return highest + 1
