"""Append-only job-state journal: how a restarted server re-adopts work.

The journal is to jobs what the campaign store is to trials — a
flush-per-line JSONL of state transitions::

    {"event": "submitted", "job_id": "job-000001", "spec": {...}, ...}
    {"event": "started",   "job_id": "job-000001"}
    {"event": "finished",  "job_id": "job-000001"}

Replaying it yields each job's last known state. A job whose last event
is not terminal (``finished``/``failed``/``cancelled``) was in flight
when the server died; on startup the scheduler resubmits it against its
recorded store, and the store's (cell, seed) keying guarantees the
resumed campaign re-runs only the missing trials — no trial lost, none
duplicated. The reader tolerates exactly one torn final line (a server
killed mid-append), the same contract as the campaign store.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: job states a journal replay can surface
TERMINAL_EVENTS = frozenset({"finished", "failed", "cancelled"})


@dataclass
class JournalEntry:
    """Last known state of one journaled job."""

    job_id: str
    spec: Dict = field(default_factory=dict)
    tenant: str = "default"
    priority: int = 0
    store: str = ""
    shards: int = 0
    workers: Optional[int] = None
    exec_mode: str = "differential"
    fingerprint: str = ""
    state: str = "submitted"
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_EVENTS


class JobJournal:
    """One service instance's job-event JSONL."""

    def __init__(self, path) -> None:
        self.path = os.fspath(path)

    # -- writing ------------------------------------------------------------
    def record(self, event: str, job_id: str, **fields: object) -> None:
        """Durably append one state transition."""
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        entry = dict(fields, event=event, job_id=job_id)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()

    def submitted(self, job_id: str, *, spec: Dict, tenant: str,
                  priority: int, store: str, shards: int,
                  workers: Optional[int], exec_mode: str,
                  fingerprint: str) -> None:
        self.record("submitted", job_id, spec=spec, tenant=tenant,
                    priority=priority, store=store, shards=shards,
                    workers=workers, exec_mode=exec_mode,
                    fingerprint=fingerprint)

    def started(self, job_id: str) -> None:
        self.record("started", job_id)

    def finished(self, job_id: str) -> None:
        self.record("finished", job_id)

    def failed(self, job_id: str, error: str) -> None:
        self.record("failed", job_id, error=error[-2000:])

    def cancelled(self, job_id: str) -> None:
        self.record("cancelled", job_id)

    # -- replay -------------------------------------------------------------
    def replay(self) -> List[JournalEntry]:
        """Each journaled job's last state, in first-submission order.

        A torn final line (server killed mid-append) is dropped;
        non-final garbage raises, mirroring the campaign store's
        corruption contract.
        """
        if not os.path.exists(self.path):
            return []
        with open(self.path) as fh:
            lines = fh.read().splitlines()
        jobs: Dict[str, JournalEntry] = {}
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn final line from a killed server
                raise ValueError(
                    f"{self.path}:{i + 1}: unparsable journal record")
            event = record.get("event")
            job_id = record.get("job_id")
            if not job_id:
                continue
            if event == "submitted":
                jobs[job_id] = JournalEntry(
                    job_id=job_id,
                    spec=record.get("spec", {}),
                    tenant=record.get("tenant", "default"),
                    priority=int(record.get("priority", 0)),
                    store=record.get("store", ""),
                    shards=int(record.get("shards", 0)),
                    workers=record.get("workers"),
                    exec_mode=record.get("exec_mode", "differential"),
                    fingerprint=record.get("fingerprint", ""))
            elif job_id in jobs:
                jobs[job_id].state = event or "submitted"
                if event == "failed":
                    jobs[job_id].error = record.get("error")
        return list(jobs.values())

    def orphans(self) -> List[JournalEntry]:
        """Jobs to re-adopt: journaled but never reached a terminal state."""
        return [entry for entry in self.replay() if not entry.terminal]

    def next_job_number(self) -> int:
        """1 + the highest numeric job suffix ever journaled."""
        highest = 0
        for entry in self.replay():
            suffix = entry.job_id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                highest = max(highest, int(suffix))
        return highest + 1
