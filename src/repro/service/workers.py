"""Distributed worker tier: wave leases, heartbeats, at-least-once requeue.

Topology::

    repro serve (coordinator)                     repro worker --connect
    +---------------------------------+           +---------------------+
    | scheduler -- WaveDispatcher     |  claim    | lease -> run trials |
    |                 |               | <-------> | heartbeat (TTL/3)   |
    |             LeaseBroker         |  results  | post records        |
    +---------------------------------+           +---------------------+

The engine's wave loop is untouched: :class:`WaveDispatcher` is a
drop-in for :func:`repro.campaign.executor.execute_trials`, so waves,
batch boundaries, early stopping and store append order are decided
exactly as in a direct CLI run. The dispatcher slices each wave into
per-cell **leases**, the broker hands them to registered workers, and
workers stream back ``TrialResult`` records. Crash safety is
at-least-once: an expired lease (dead worker, dropped heartbeats) is
requeued, and because every trial is a pure function of its spec, the
first completion per (cell, seed) key wins and the store stays
byte-identical to a local run.

Graceful degradation, in order of escalation:

* no worker ever registers within ``worker_wait`` -> the dispatcher
  pins itself to local execution for the rest of the job;
* no worker is live at a wave boundary -> that wave runs locally and
  the next wave re-checks (a respawned worker can rejoin);
* every worker dies mid-wave -> outstanding leases are withdrawn and
  finished in-process;
* a lease exhausts its requeue budget (flapping workers) -> it is
  abandoned by the broker and finished in-process.

All worker<->coordinator HTTP goes through
:func:`repro.service.retry.call_with_retry`, so transient 500s and
socket timeouts are absorbed with jittered backoff instead of
hand-rolled loops.
"""

from __future__ import annotations

import http.client
import itertools
import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Optional, Sequence, Set, Tuple,
                    TypeVar)

from repro.campaign.executor import ExecutionReport, execute_trials
from repro.campaign.spec import TrialSpec
from repro.campaign.trial import TrialResult, run_trial
from repro.service.chaos import ChaosController
from repro.service.client import ServiceError
from repro.service.retry import (HTTP_RETRY, RetryError, RetryPolicy,
                                 call_with_retry)

T = TypeVar("T")

#: lease lifecycle states
PENDING = "pending"
CLAIMED = "claimed"
DONE = "done"
#: requeue budget exhausted — the dispatcher must finish it locally
ABANDONED = "abandoned"
#: taken back by the dispatcher for local execution; late completions
#: from presumed-dead workers are rejected so results stay single-source
WITHDRAWN = "withdrawn"


def trial_to_wire(trial: TrialSpec) -> Dict:
    """JSON-safe encoding of a :class:`TrialSpec` for the worker API."""
    wire: Dict = {"scheme": trial.scheme, "workload": trial.workload,
                  "ser": trial.ser, "seed": trial.seed,
                  "fault_model": trial.fault_model}
    if trial.watchdog_cycles is not None:
        wire["watchdog_cycles"] = trial.watchdog_cycles
    return wire


def trial_from_wire(wire: Dict) -> TrialSpec:
    return TrialSpec(scheme=wire["scheme"], workload=wire["workload"],
                     ser=float(wire["ser"]), seed=int(wire["seed"]),
                     fault_model=wire.get("fault_model", "standard"),
                     watchdog_cycles=wire.get("watchdog_cycles"))


@dataclass
class Lease:
    """One claimable slice of a wave (all trials share a cell)."""

    lease_id: str
    job_id: str
    trials: List[TrialSpec]
    state: str = PENDING
    worker_id: Optional[str] = None
    deadline: float = 0.0
    requeues: int = 0
    #: records posted by the completing worker (DONE leases only)
    records: List[Dict] = field(default_factory=list)
    #: recovery-latency bookkeeping: first expiry -> completion
    first_expired_at: Optional[float] = None


@dataclass
class WorkerInfo:
    worker_id: str
    name: str
    registered_at: float
    last_seen: float
    leases: Set[str] = field(default_factory=set)


class LeaseBroker:
    """Coordinator-side lease/worker state. Thread-safe.

    Liveness is heartbeat-driven: a worker is *live* while its last
    heartbeat (or claim) is within ``worker_ttl``; a claimed lease whose
    ``deadline`` (renewed by heartbeats) lapses is requeued — up to
    ``max_requeues`` times, after which it is abandoned to the
    dispatcher. Completions are first-wins: a late post for an
    already-completed or withdrawn lease is rejected, which is what
    makes at-least-once delivery safe to deduplicate.
    """

    def __init__(self, *, lease_ttl: float = 10.0,
                 worker_ttl: Optional[float] = None,
                 max_requeues: int = 3,
                 clock: Callable[[], float] = time.monotonic,
                 metrics=None) -> None:
        if lease_ttl <= 0.0:
            raise ValueError("lease_ttl must be positive")
        self.lease_ttl = lease_ttl
        self.worker_ttl = worker_ttl if worker_ttl is not None \
            else 2.5 * lease_ttl
        self.max_requeues = max_requeues
        self.clock = clock
        self.metrics = metrics
        self._cv = threading.Condition()
        self._workers: Dict[str, WorkerInfo] = {}
        self._leases: Dict[str, Lease] = {}
        self._queue: List[str] = []
        self._worker_seq = itertools.count(1)
        self.ever_registered = False
        self.counters: Dict[str, int] = {
            "granted": 0, "completed": 0, "expired": 0, "requeued": 0,
            "abandoned": 0, "rejected": 0,
        }
        self.recovery_latencies: List[float] = []

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        if self.metrics is not None:
            self.metrics.counter(f"service.lease.{name}").inc(amount)

    # -- worker lifecycle ---------------------------------------------------
    def register(self, name: Optional[str] = None) -> Dict:
        """Register a worker; returns its id and protocol intervals."""
        with self._cv:
            worker_id = f"w{next(self._worker_seq):04d}"
            now = self.clock()
            self._workers[worker_id] = WorkerInfo(
                worker_id=worker_id, name=name or worker_id,
                registered_at=now, last_seen=now)
            self.ever_registered = True
            self._cv.notify_all()
            return {"worker_id": worker_id,
                    "lease_ttl": self.lease_ttl,
                    "heartbeat_interval": self.lease_ttl / 3.0}

    def heartbeat(self, worker_id: str,
                  lease_ids: Sequence[str]) -> Optional[Dict]:
        """Renew worker liveness and held-lease deadlines.

        Returns ``None`` for an unknown worker (the HTTP layer turns
        that into a 404 and the worker re-registers — coordinator
        restarts drop broker state by design). ``lost`` lists leases
        the worker thinks it holds but the broker has already requeued.
        """
        with self._cv:
            info = self._workers.get(worker_id)
            if info is None:
                return None
            now = self.clock()
            info.last_seen = now
            lost: List[str] = []
            for lease_id in lease_ids:
                lease = self._leases.get(lease_id)
                if lease is not None and lease.state == CLAIMED \
                        and lease.worker_id == worker_id:
                    lease.deadline = now + self.lease_ttl
                else:
                    lost.append(lease_id)
            return {"ok": True, "lost": lost}

    def live_workers(self) -> int:
        with self._cv:
            return self._live_locked()

    def _live_locked(self) -> int:
        horizon = self.clock() - self.worker_ttl
        return sum(1 for info in self._workers.values()
                   if info.last_seen >= horizon)

    def workers_status(self) -> List[Dict]:
        with self._cv:
            horizon = self.clock() - self.worker_ttl
            return [{"worker_id": info.worker_id, "name": info.name,
                     "live": info.last_seen >= horizon,
                     "leases": sorted(info.leases)}
                    for info in self._workers.values()]

    # -- lease lifecycle ----------------------------------------------------
    def offer(self, leases: Sequence[Lease]) -> None:
        with self._cv:
            for lease in leases:
                self._leases[lease.lease_id] = lease
                self._queue.append(lease.lease_id)
            self._cv.notify_all()

    def claim(self, worker_id: str) -> Optional[Dict]:
        """Hand the next pending lease to ``worker_id`` (None if idle).

        Raises :class:`KeyError` for an unknown worker so the HTTP
        layer can 404 and trigger re-registration.
        """
        with self._cv:
            info = self._workers.get(worker_id)
            if info is None:
                raise KeyError(worker_id)
            now = self.clock()
            info.last_seen = now  # claiming is proof of life
            self._expire_locked()
            while self._queue:
                lease_id = self._queue.pop(0)
                lease = self._leases.get(lease_id)
                if lease is None or lease.state != PENDING:
                    continue
                lease.state = CLAIMED
                lease.worker_id = worker_id
                lease.deadline = now + self.lease_ttl
                info.leases.add(lease_id)
                self._count("granted")
                return {"lease_id": lease.lease_id,
                        "job_id": lease.job_id,
                        "ttl": self.lease_ttl,
                        "trials": [trial_to_wire(t) for t in lease.trials]}
            return None

    def complete(self, worker_id: str, lease_id: str,
                 records: Sequence[Dict]) -> bool:
        """Accept a worker's results for a lease; first completion wins.

        A completion for a requeued-but-not-yet-reclaimed lease is
        accepted (the work is valid; the requeue becomes a no-op), a
        completion for a DONE or WITHDRAWN lease is rejected.
        """
        with self._cv:
            info = self._workers.get(worker_id)
            if info is not None:
                info.last_seen = self.clock()
                info.leases.discard(lease_id)
            lease = self._leases.get(lease_id)
            if lease is None or lease.state in (DONE, WITHDRAWN):
                self._count("rejected")
                return False
            if lease.worker_id is not None:
                holder = self._workers.get(lease.worker_id)
                if holder is not None:
                    holder.leases.discard(lease_id)
            lease.records = list(records)
            lease.state = DONE
            if lease.first_expired_at is not None:
                self.recovery_latencies.append(
                    self.clock() - lease.first_expired_at)
            self._count("completed")
            self._cv.notify_all()
            return True

    def _expire_locked(self) -> int:
        now = self.clock()
        expired = 0
        for lease in self._leases.values():
            if lease.state != CLAIMED or now <= lease.deadline:
                continue
            holder = self._workers.get(lease.worker_id or "")
            if holder is not None:
                holder.leases.discard(lease.lease_id)
            expired += 1
            lease.requeues += 1
            if lease.first_expired_at is None:
                lease.first_expired_at = now
            self._count("expired")
            if lease.requeues > self.max_requeues:
                lease.state = ABANDONED
                self._count("abandoned")
            else:
                lease.state = PENDING
                lease.worker_id = None
                self._queue.append(lease.lease_id)
                self._count("requeued")
        return expired

    def expire_overdue(self) -> int:
        """Requeue (or abandon) claimed leases whose TTL has lapsed."""
        with self._cv:
            expired = self._expire_locked()
            if expired:
                self._cv.notify_all()
            return expired

    def poll(self, lease_ids: Sequence[str]
             ) -> Dict[str, Tuple[str, List[Dict]]]:
        """Snapshot (state, records) for the given leases."""
        with self._cv:
            out: Dict[str, Tuple[str, List[Dict]]] = {}
            for lease_id in lease_ids:
                lease = self._leases.get(lease_id)
                if lease is not None:
                    out[lease_id] = (lease.state, lease.records)
            return out

    def withdraw(self, lease_ids: Sequence[str]) -> List[Lease]:
        """Reclaim unfinished leases for local execution.

        Withdrawn leases reject late completions: once the dispatcher
        owns the trials again, results are single-source.
        """
        with self._cv:
            taken: List[Lease] = []
            for lease_id in lease_ids:
                lease = self._leases.get(lease_id)
                if lease is None or lease.state in (DONE, WITHDRAWN):
                    continue
                holder = self._workers.get(lease.worker_id or "")
                if holder is not None:
                    holder.leases.discard(lease_id)
                lease.state = WITHDRAWN
                lease.worker_id = None
                taken.append(lease)
            return taken

    def forget(self, lease_ids: Sequence[str]) -> None:
        """Drop finished leases so broker memory stays wave-bounded."""
        with self._cv:
            for lease_id in lease_ids:
                self._leases.pop(lease_id, None)
            self._queue = [lid for lid in self._queue
                           if lid in self._leases]

    def wait(self, timeout: float) -> None:
        """Block until broker state changes (or the timeout lapses)."""
        with self._cv:
            self._cv.wait(timeout=timeout)

    def stats(self) -> Dict:
        with self._cv:
            latencies = list(self.recovery_latencies)
            return {
                "counters": dict(self.counters),
                "live_workers": self._live_locked(),
                "ever_registered": self.ever_registered,
                "recovery_latencies": latencies,
                "recovery_latency_max": max(latencies, default=0.0),
            }


class WaveDispatcher:
    """Drop-in for ``execute_trials`` that fans a wave over HTTP workers.

    Instantiated per job by the scheduler and handed to the engine as
    its ``executor``; the engine's wave loop, early stopping, and store
    appends are untouched. ``on_result`` fires in the wave's original
    order (an ordered-prefix emit over an arrival dict), so distributed
    stores are byte-identical to local ones.
    """

    def __init__(self, broker: LeaseBroker, *, job_id: str,
                 expect_workers: int = 0, worker_wait: float = 10.0,
                 poll_interval: float = 0.05,
                 clock: Callable[[], float] = time.monotonic,
                 metrics=None) -> None:
        self.broker = broker
        self.job_id = job_id
        self.expect_workers = expect_workers
        self.worker_wait = worker_wait
        self.poll_interval = poll_interval
        self.clock = clock
        self.metrics = metrics
        self._wave = 0
        self._waited = False
        self._local_only = False

    # -- executor protocol --------------------------------------------------
    def __call__(self, trials: Sequence[TrialSpec],
                 workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 runner: Callable[[TrialSpec], TrialResult] = run_trial,
                 on_result: Optional[Callable[[TrialResult], None]] = None,
                 report: Optional[ExecutionReport] = None,
                 submit_order: Optional[Callable[[TrialSpec], object]]
                 = None,
                 ) -> List[TrialResult]:
        if report is None:
            report = ExecutionReport()
        if not trials:
            return []
        self._wave += 1
        if not self._distributed_ready():
            return execute_trials(trials, workers=workers, timeout=timeout,
                                  runner=runner, on_result=on_result,
                                  report=report, submit_order=submit_order)
        return self._run_wave(list(trials), workers, timeout, runner,
                              on_result, report)

    def _distributed_ready(self) -> bool:
        if self._local_only:
            return False
        if self.broker.live_workers() > 0:
            return True
        if self.expect_workers > 0 and not self._waited:
            self._waited = True
            deadline = self.clock() + self.worker_wait
            while self.clock() < deadline:
                if self.broker.live_workers() > 0:
                    return True
                self.broker.wait(timeout=min(
                    0.05, max(0.0, deadline - self.clock())))
            if not self.broker.ever_registered:
                # nobody ever showed up: stop re-checking every wave
                self._local_only = True
                if self.metrics is not None:
                    self.metrics.counter(
                        "service.dispatch.fallback_local").inc()
        return False

    def _make_leases(self, trials: Sequence[TrialSpec]) -> List[Lease]:
        leases: List[Lease] = []
        for index, (_, group) in enumerate(
                itertools.groupby(trials, key=lambda t: t.cell)):
            leases.append(Lease(
                lease_id=f"{self.job_id}-v{self._wave}-{index}",
                job_id=self.job_id, trials=list(group)))
        return leases

    def _run_wave(self, trials: List[TrialSpec], workers: Optional[int],
                  timeout: Optional[float],
                  runner: Callable[[TrialSpec], TrialResult],
                  on_result: Optional[Callable[[TrialResult], None]],
                  report: ExecutionReport) -> List[TrialResult]:
        leases = self._make_leases(trials)
        lease_ids = [lease.lease_id for lease in leases]
        self.broker.offer(leases)
        arrived: Dict[Tuple[str, int], TrialResult] = {}
        settled: Set[str] = set()
        emitted = 0
        try:
            while len(settled) < len(leases):
                self.broker.wait(timeout=self.poll_interval)
                expired = self.broker.expire_overdue()
                if expired:
                    # lost leases count like pool worker failures: the
                    # requeue is the distributed tier's retry
                    report.worker_failures += expired
                    report.retries += expired
                states = self.broker.poll(lease_ids)
                local_leases: List[Lease] = []
                for lease in leases:
                    if lease.lease_id in settled:
                        continue
                    state, records = states.get(lease.lease_id,
                                                (WITHDRAWN, []))
                    if state == DONE:
                        settled.add(lease.lease_id)
                        for record in records:
                            result = TrialResult.from_record(record)
                            arrived.setdefault(result.key(), result)
                    elif state == ABANDONED:
                        local_leases.extend(
                            self.broker.withdraw([lease.lease_id]))
                if len(settled) < len(leases) \
                        and self.broker.live_workers() == 0:
                    # every worker is gone mid-wave: reclaim the rest
                    outstanding = [lid for lid in lease_ids
                                   if lid not in settled]
                    local_leases.extend(self.broker.withdraw(outstanding))
                if local_leases:
                    self._run_local(local_leases, arrived, workers,
                                    timeout, runner, report)
                    settled.update(lease.lease_id
                                   for lease in local_leases)
                emitted = self._emit(trials, arrived, emitted, on_result)
        finally:
            self.broker.forget(lease_ids)
        self._emit(trials, arrived, emitted, on_result)
        missing = [t for t in trials if t.key() not in arrived]
        if missing:  # structurally unreachable; fail loudly if not
            raise RuntimeError(
                f"wave lost {len(missing)} trial(s): {missing[:3]!r}")
        return [arrived[t.key()] for t in trials]

    def _run_local(self, leases: Sequence[Lease],
                   arrived: Dict[Tuple[str, int], TrialResult],
                   workers: Optional[int], timeout: Optional[float],
                   runner: Callable[[TrialSpec], TrialResult],
                   report: ExecutionReport) -> None:
        if self.metrics is not None:
            self.metrics.counter("service.dispatch.local_takeover").inc()
        remaining = [t for lease in leases for t in lease.trials
                     if t.key() not in arrived]
        if not remaining:
            return
        for result in execute_trials(remaining, workers=workers,
                                     timeout=timeout, runner=runner,
                                     report=report):
            arrived.setdefault(result.key(), result)

    @staticmethod
    def _emit(trials: Sequence[TrialSpec],
              arrived: Dict[Tuple[str, int], TrialResult], emitted: int,
              on_result: Optional[Callable[[TrialResult], None]]) -> int:
        """Fire ``on_result`` for the longest arrived prefix, in order."""
        while emitted < len(trials) \
                and trials[emitted].key() in arrived:
            if on_result is not None:
                on_result(arrived[trials[emitted].key()])
            emitted += 1
        return emitted


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

def _transient(exc: BaseException) -> bool:
    """Retryable worker-API failures: connection trouble or 5xx."""
    if isinstance(exc, ServiceError):
        return exc.status >= 500
    return isinstance(exc, OSError)


class WorkerClient:
    """Retrying JSON client for the coordinator's worker API.

    Every endpoint is idempotent-or-safe under at-least-once delivery:
    a duplicated ``register`` leaves a zombie record that ages out, a
    duplicated ``claim`` strands a lease until its TTL requeues it, and
    a duplicated ``complete`` is first-wins — so the retry wrapper can
    re-send blindly after a 500 or a socket timeout.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 5.0,
                 policy: RetryPolicy = HTTP_RETRY,
                 rng: Optional[random.Random] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.policy = policy
        self.rng = rng if rng is not None else random.Random(port)

    def _once(self, method: str, path: str,
              body: Optional[Dict]) -> Dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = (json.dumps(body, sort_keys=True).encode()
                       if body is not None else None)
            headers = {"Content-Type": "application/json"} if payload \
                else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw.decode() or "{}")
            except json.JSONDecodeError:
                data = {"error": raw.decode(errors="replace")[:200]}
            if response.status >= 300:
                raise ServiceError(
                    response.status,
                    str(data.get("error", "unexpected response")))
            return data
        finally:
            conn.close()

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict:
        def attempt() -> Dict:
            return self._once(method, path, body)
        return call_with_retry(attempt, policy=self.policy, rng=self.rng,
                               retry_on=_transient)

    def register(self, name: Optional[str] = None) -> Dict:
        return self._request("POST", "/api/workers/register",
                             {"name": name})

    def claim(self, worker_id: str) -> Optional[Dict]:
        data = self._request("POST", f"/api/workers/{worker_id}/claim")
        return data.get("lease")

    def heartbeat(self, worker_id: str,
                  lease_ids: Sequence[str]) -> Dict:
        return self._request("POST",
                             f"/api/workers/{worker_id}/heartbeat",
                             {"leases": list(lease_ids)})

    def complete(self, worker_id: str, lease_id: str,
                 records: Sequence[Dict]) -> Dict:
        return self._request("POST",
                             f"/api/workers/{worker_id}/results",
                             {"lease_id": lease_id,
                              "records": list(records)})


def _heartbeat_loop(client: WorkerClient, state: Dict,
                    held: Set[str], held_lock: threading.Lock,
                    stop: threading.Event, interval: float,
                    chaos: Optional[ChaosController]) -> None:
    while not stop.wait(timeout=interval):
        if chaos is not None and chaos.drop_heartbeat():
            continue
        if chaos is not None:
            delay = chaos.heartbeat_delay()
            if delay > 0.0 and stop.wait(timeout=delay):
                break
        with held_lock:
            lease_ids = sorted(held)
        try:
            client.heartbeat(state["worker_id"], lease_ids)
        except (ServiceError, RetryError, OSError):
            # coordinator unreachable or restarting: the lease will
            # expire and requeue — at-least-once keeps the campaign
            # whole, so the heartbeat loop just keeps trying
            continue


def run_worker(host: str, port: int, *, name: Optional[str] = None,
               runner: Callable[[TrialSpec], TrialResult] = run_trial,
               poll_interval: float = 0.2,
               max_idle: Optional[float] = None,
               chaos: Optional[ChaosController] = None,
               stop: Optional[threading.Event] = None,
               policy: RetryPolicy = HTTP_RETRY,
               request_timeout: float = 5.0,
               clock: Callable[[], float] = time.monotonic) -> Dict:
    """Worker main loop: register, claim leases, run trials, post results.

    Exits cleanly when ``stop`` is set or after ``max_idle`` seconds
    without a lease (None = run until signalled). A 404 from the
    coordinator (restart wiped broker state) triggers re-registration;
    a lost lease simply requeues on the coordinator side.
    """
    if stop is None:
        stop = threading.Event()
    client = WorkerClient(host, port, timeout=request_timeout,
                          policy=policy)
    session = client.register(name)
    state = {"worker_id": session["worker_id"]}
    interval = float(session.get("heartbeat_interval", 1.0))
    held: Set[str] = set()
    held_lock = threading.Lock()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(client, state, held, held_lock, stop, interval, chaos),
        name="worker-heartbeat", daemon=True)
    beat.start()
    stats = {"leases": 0, "trials": 0, "reregistered": 0, "lost": 0}
    idle_deadline = None if max_idle is None else clock() + max_idle
    try:
        while not stop.is_set():
            if idle_deadline is not None and clock() >= idle_deadline:
                break
            try:
                payload = client.claim(state["worker_id"])
            except ServiceError as exc:
                if exc.status == 404:
                    session = client.register(name)
                    state["worker_id"] = session["worker_id"]
                    stats["reregistered"] += 1
                    continue
                raise
            if payload is None:
                stop.wait(timeout=poll_interval)
                continue
            if idle_deadline is not None:
                idle_deadline = clock() + max_idle  # type: ignore[operator]
            lease_id = payload["lease_id"]
            trials = [trial_from_wire(w) for w in payload["trials"]]
            with held_lock:
                held.add(lease_id)
            records: List[Dict] = []
            try:
                for trial in trials:
                    result = runner(trial)
                    records.append(result.to_record())
                    stats["trials"] += 1
                    if chaos is not None:
                        chaos.after_trial()
                try:
                    client.complete(state["worker_id"], lease_id, records)
                except (ServiceError, RetryError):
                    # lease is lost (coordinator restarted or requeued
                    # it); the trials re-run elsewhere — count and move on
                    stats["lost"] += 1
                else:
                    stats["leases"] += 1
            finally:
                with held_lock:
                    held.discard(lease_id)
            if chaos is not None:
                chaos.at_wave_boundary()
    finally:
        stop.set()
        beat.join(timeout=2.0 * interval)
    return stats
