"""``repro serve``: the campaign service's HTTP face (stdlib only).

A deliberately small HTTP/1.1 implementation over ``asyncio`` streams —
no framework, no new runtime dependency — exposing the scheduler::

    GET  /                      live dashboard (HTML)
    GET  /healthz               liveness + drain state
    GET  /api/jobs              all jobs
    POST /api/jobs              submit a grid (JSON spec body)
    GET  /api/jobs/<id>         one job's status
    POST /api/jobs/<id>/cancel  request cancellation
    GET  /api/jobs/<id>/results campaign summary (partial while running)
    GET  /api/metrics           MetricsRegistry snapshot + rollup
    GET  /api/stream            rollups as server-sent events

Worker API (the distributed tier — see :mod:`repro.service.workers`)::

    POST /api/workers/register        join the worker pool
    GET  /api/workers                 worker + lease-broker status
    POST /api/workers/<id>/claim      claim the next pending lease
    POST /api/workers/<id>/heartbeat  renew liveness + held leases
    POST /api/workers/<id>/results    post a lease's trial records

With ``--chaos`` the worker API also doubles as a fault surface:
seeded 500s and response stalls are injected ahead of routing, and
journal appends can be torn mid-line — the soak harness for the
retry/requeue machinery.

Every response is ``Connection: close`` — requests are short-lived and
the streaming endpoint holds its connection open anyway. Submissions are
journaled before the handler replies, so a reply of ``job_id`` is a
durability promise: kill the server at any instant afterwards and a
restart re-adopts the job.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Dict, Optional, Tuple

from repro.campaign.engine import summarize_store, summarize_stores
from repro.campaign.spec import CampaignError, CampaignSpec
from repro.service.dashboard import DASHBOARD_HTML
from repro.service.journal import JobJournal
from repro.service.scheduler import DONE, JobScheduler
from repro.service.shards import shard_paths

#: request-line / header limits (we only ever serve small JSON bodies)
MAX_HEADER_LINES = 64
MAX_BODY_BYTES = 1 << 20

#: fields a submission body may carry besides the CampaignSpec ones
_SUBMIT_FIELDS = frozenset({"tenant", "priority", "workers", "shards",
                            "exec_mode"})
_SPEC_FIELDS = frozenset({"schemes", "workloads", "sers", "trials",
                          "seed_base", "ci_halfwidth", "batch",
                          "fault_model", "watchdog_cycles"})


def spec_from_request(data: Dict) -> CampaignSpec:
    """Build a validated :class:`CampaignSpec` from a submission body.

    Unknown fields and unknown workloads are rejected with the same
    actionable messages the CLI gives, so a 400 response tells the
    client exactly what to fix.
    """
    if not isinstance(data, dict):
        raise CampaignError("submission body must be a JSON object")
    unknown = set(data) - _SPEC_FIELDS - _SUBMIT_FIELDS
    if unknown:
        raise CampaignError(
            f"unknown submission field(s) {sorted(unknown)} (spec "
            f"fields: {sorted(_SPEC_FIELDS)}; service fields: "
            f"{sorted(_SUBMIT_FIELDS)})")
    for required in ("schemes", "workloads", "sers"):
        if not data.get(required):
            raise CampaignError(f"submission needs a non-empty "
                                f"{required!r} list")
    from repro.workloads import workload_names
    known = workload_names()
    for name in data["workloads"]:
        if name not in known:
            raise CampaignError(
                f"unknown workload {name!r} (try one of "
                f"{', '.join(known)})")
    return CampaignSpec(
        schemes=tuple(data["schemes"]),
        workloads=tuple(data["workloads"]),
        sers=tuple(float(s) for s in data["sers"]),
        trials=int(data.get("trials", 50)),
        seed_base=int(data.get("seed_base", 0)),
        ci_halfwidth=data.get("ci_halfwidth"),
        batch=int(data.get("batch", 25)),
        fault_model=data.get("fault_model", "standard"),
        watchdog_cycles=data.get("watchdog_cycles"))


class CampaignService:
    """Scheduler + HTTP server bound to one event loop.

    ``start``/``stop`` are the programmatic lifecycle (tests drive it in
    a thread); :func:`serve` wraps it with signal handling for the CLI.
    """

    def __init__(self, scheduler: JobScheduler, *,
                 host: str = "127.0.0.1", port: int = 0,
                 stream_interval: float = 1.0, chaos=None) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.stream_interval = stream_interval
        self.chaos = chaos
        self._server: Optional[asyncio.AbstractServer] = None
        self._scheduler_task: Optional["asyncio.Task[None]"] = None
        self._conn_tasks: list = []

    async def start(self) -> None:
        self.scheduler.adopt_orphans()
        self._scheduler_task = asyncio.create_task(self.scheduler.run())
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful drain: stop admissions, finish in-flight waves,
        close the listener, and wait for the scheduler to settle."""
        self.scheduler.request_stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._scheduler_task is not None:
            await self._scheduler_task
        # open connections (long-lived SSE streams, mostly) die with us
        pending = list(self._conn_tasks)
        for conn in pending:
            conn.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    # -- plumbing -----------------------------------------------------------
    @staticmethod
    def _json_bytes(payload: object) -> bytes:
        return (json.dumps(payload, sort_keys=True) + "\n").encode()

    @staticmethod
    async def _write_response(writer: asyncio.StreamWriter, status: int,
                              body: bytes,
                              content_type: str = "application/json"
                              ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 409: "Conflict",
                  500: "Internal Server Error"}.get(status, "OK")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode() + body)
        await writer.drain()

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        length = 0
        for _ in range(MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.append(task)
        try:
            request = await self._read_request(reader)
            if request is None:
                await self._write_response(
                    writer, 400, self._json_bytes({"error": "bad request"}))
                return
            method, target, body = request
            if target == "/api/stream" and method == "GET":
                await self._stream(writer)
                return
            if self.chaos is not None \
                    and target.startswith("/api/workers"):
                fault = self.chaos.http_fault()
                if fault is not None:
                    kind, delay = fault
                    if kind == "error":
                        await self._write_response(
                            writer, 500,
                            self._json_bytes({"error": "chaos: 500"}))
                        return
                    # stall only this connection past the client's
                    # socket timeout; the loop keeps serving others
                    await asyncio.sleep(delay)
            status, payload, content_type = self._route(
                method, target, body)
            await self._write_response(writer, status, payload,
                                       content_type)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, asyncio.CancelledError):
            pass
        finally:
            if task is not None and task in self._conn_tasks:
                self._conn_tasks.remove(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- routing ------------------------------------------------------------
    def _route(self, method: str, target: str,
               body: bytes) -> Tuple[int, bytes, str]:
        target = target.split("?", 1)[0]
        if target == "/" and method == "GET":
            return 200, DASHBOARD_HTML.encode(), "text/html; charset=utf-8"
        if target == "/healthz" and method == "GET":
            return 200, self._json_bytes(
                {"ok": True, "draining": self.scheduler.stopping}), \
                "application/json"
        if target == "/api/jobs":
            if method == "GET":
                return 200, self._json_bytes(
                    {"jobs": [j.status() for j in self.scheduler.jobs()]}), \
                    "application/json"
            if method == "POST":
                return self._submit(body)
            return 405, self._json_bytes({"error": "method not allowed"}), \
                "application/json"
        if target == "/api/metrics" and method == "GET":
            return 200, self._json_bytes(
                {"registry": self.scheduler.metrics.snapshot(),
                 "rollup": self.scheduler.rollup()}), "application/json"
        if target.startswith("/api/jobs/"):
            return self._job_route(method, target[len("/api/jobs/"):])
        if target == "/api/workers" or target.startswith("/api/workers/"):
            return self._worker_route(method, target, body)
        return 404, self._json_bytes({"error": f"no route {target!r}"}), \
            "application/json"

    def _worker_route(self, method: str, target: str,
                      body: bytes) -> Tuple[int, bytes, str]:
        broker = self.scheduler.broker
        if broker is None:
            return 404, self._json_bytes(
                {"error": "this server has no worker tier"}), \
                "application/json"
        if target == "/api/workers" and method == "GET":
            return 200, self._json_bytes(
                {"workers": broker.workers_status(),
                 "leases": broker.stats()}), "application/json"
        try:
            data = json.loads(body.decode() or "{}")
        except json.JSONDecodeError:
            return 400, self._json_bytes({"error": "bad JSON body"}), \
                "application/json"
        if target == "/api/workers/register" and method == "POST":
            return 200, self._json_bytes(
                broker.register(data.get("name"))), "application/json"
        rest = target[len("/api/workers/"):]
        worker_id, _, action = rest.partition("/")
        if method != "POST":
            return 405, self._json_bytes({"error": "method not allowed"}), \
                "application/json"
        if action == "claim":
            try:
                lease = broker.claim(worker_id)
            except KeyError:
                return 404, self._json_bytes(
                    {"error": f"unknown worker {worker_id!r}; "
                     f"re-register"}), "application/json"
            return 200, self._json_bytes({"lease": lease}), \
                "application/json"
        if action == "heartbeat":
            ack = broker.heartbeat(worker_id,
                                   [str(x) for x in data.get("leases", [])])
            if ack is None:
                return 404, self._json_bytes(
                    {"error": f"unknown worker {worker_id!r}; "
                     f"re-register"}), "application/json"
            return 200, self._json_bytes(ack), "application/json"
        if action == "results":
            accepted = broker.complete(
                worker_id, str(data.get("lease_id", "")),
                list(data.get("records", [])))
            return 200, self._json_bytes({"accepted": accepted}), \
                "application/json"
        return 404, self._json_bytes(
            {"error": f"no worker route {target!r}"}), "application/json"

    def _submit(self, body: bytes) -> Tuple[int, bytes, str]:
        if self.scheduler.stopping:
            return 409, self._json_bytes(
                {"error": "server is draining; resubmit after restart"}), \
                "application/json"
        try:
            data = json.loads(body.decode() or "{}")
            spec = spec_from_request(data)
            job = self.scheduler.submit(
                spec,
                tenant=str(data.get("tenant", "default")),
                priority=int(data.get("priority", 0)),
                workers=data.get("workers"),
                shards=data.get("shards"),
                exec_mode=data.get("exec_mode"))
        except (CampaignError, ValueError) as exc:
            return 400, self._json_bytes({"error": str(exc)}), \
                "application/json"
        return 200, self._json_bytes(job.status()), "application/json"

    def _job_route(self, method: str,
                   rest: str) -> Tuple[int, bytes, str]:
        job_id, _, action = rest.partition("/")
        job = self.scheduler.get(job_id)
        if job is None:
            return 404, self._json_bytes(
                {"error": f"unknown job {job_id!r}"}), "application/json"
        if not action and method == "GET":
            return 200, self._json_bytes(job.status()), "application/json"
        if action == "cancel" and method == "POST":
            self.scheduler.cancel(job_id)
            return 200, self._json_bytes(job.status()), "application/json"
        if action == "results" and method == "GET":
            return self._results(job)
        return 405, self._json_bytes({"error": "method not allowed"}), \
            "application/json"

    def _results(self, job) -> Tuple[int, bytes, str]:
        """The job's deterministic summary — final for DONE jobs, the
        current store aggregate otherwise (byte-comparable to what
        ``repro campaign summarize`` prints for the same store)."""
        if job.state == DONE and job.summary is not None:
            stats = job.summary
        else:
            try:
                if job.shards > 1:
                    summary = summarize_stores(shard_paths(job.store_path))
                else:
                    summary = summarize_store(job.store_path)
            except CampaignError as exc:
                return 409, self._json_bytes(
                    {"error": f"no results yet: {exc}"}), "application/json"
            stats = summary.stats_dict()
        return 200, self._json_bytes(
            {"job_id": job.job_id, "state": job.state,
             "trials_done": job.trials_done, "summary": stats}), \
            "application/json"

    # -- server-sent events -------------------------------------------------
    async def _stream(self, writer: asyncio.StreamWriter) -> None:
        """Push rollups until the client hangs up or we drain."""
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        while True:
            payload = json.dumps(self.scheduler.rollup(), sort_keys=True)
            writer.write(f"data: {payload}\n\n".encode())
            await writer.drain()
            if self.scheduler.stopping:
                return
            await asyncio.sleep(self.stream_interval)


async def _serve_async(service: CampaignService) -> None:
    loop = asyncio.get_running_loop()
    stop_requested = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop_requested.set)
    await service.start()
    print(f"repro serve: listening on "
          f"http://{service.host}:{service.port} "
          f"(dashboard at /, API under /api)", flush=True)
    await stop_requested.wait()
    print("repro serve: draining (in-flight waves finish, queued jobs "
          "stay journaled for re-adoption)", flush=True)
    await service.stop()


def serve(*, host: str, port: int, data_dir: str,
          max_concurrent: int, tenant_quota: int,
          shards: int, workers: Optional[int], exec_mode: str,
          journal_path: Optional[str] = None,
          stream_interval: float = 1.0,
          lease_ttl: float = 10.0,
          expect_workers: int = 0,
          worker_wait: float = 10.0,
          chaos: Optional[str] = None) -> int:
    """CLI entry point: run the service until SIGINT/SIGTERM, then drain."""
    import os

    from repro.service.chaos import ChaosController
    from repro.service.workers import LeaseBroker
    from repro.telemetry.metrics import MetricsRegistry
    chaos_ctl = ChaosController.from_spec(chaos)
    journal = JobJournal(journal_path if journal_path is not None
                         else os.path.join(data_dir, "journal.jsonl"),
                         chaos=chaos_ctl)
    metrics = MetricsRegistry()
    broker = LeaseBroker(lease_ttl=lease_ttl, metrics=metrics)
    scheduler = JobScheduler(
        data_dir, max_concurrent=max_concurrent,
        tenant_quota=tenant_quota, journal=journal,
        default_shards=shards, default_workers=workers,
        exec_mode=exec_mode, metrics=metrics, broker=broker,
        expect_workers=expect_workers, worker_wait=worker_wait)
    service = CampaignService(scheduler, host=host, port=port,
                              stream_interval=stream_interval,
                              chaos=chaos_ctl)
    asyncio.run(_serve_async(service))
    return 0
