"""Sharded campaign stores and their deterministic, verifiable merge.

A :class:`ShardedStore` is a directory of ordinary
:class:`~repro.campaign.store.ResultStore` JSONL files — one per shard —
with trials routed by a stable hash of their cell id. Every shard
carries the full spec header, so any shard file is independently
readable by every existing store consumer (``summarize``, ``metrics
summarize``, resume).

The merge contract is the subsystem's backbone: for a completed
campaign, ``merge_shards`` writes a single-store JSONL that is
**byte-identical** to what an uninterrupted single-store run of the same
spec would have produced (CI gates this for all protected schemes,
serial and parallel). The append order is reconstructed by
:func:`repro.campaign.engine.store_append_order`, which replays the
engine's own wave loop over the recorded results — one ordering
authority, not two.
"""

from __future__ import annotations

import glob
import os
import threading
import zlib
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.campaign.spec import CampaignError, CampaignSpec
from repro.campaign.store import ResultStore

#: shard filename pattern inside a sharded store directory
SHARD_NAME = "shard-{index:02d}.jsonl"
SHARD_GLOB = "shard-*.jsonl"


def shard_index(cell: str, n_shards: int) -> int:
    """Stable shard routing: CRC32 of the cell id, mod shard count.

    ``zlib.crc32`` is specified byte-for-byte, so routing is identical
    across processes, interpreters and restarts — a cell's trials always
    land in the same shard file.
    """
    if n_shards <= 0:
        raise CampaignError("shard count must be positive")
    return zlib.crc32(cell.encode("utf-8")) % n_shards


def shard_paths(directory) -> List[str]:
    """Existing shard files under ``directory``, in shard-index order."""
    return sorted(glob.glob(os.path.join(os.fspath(directory), SHARD_GLOB)))


class ShardedStore:
    """A campaign store split across N shard files by cell hash.

    Implements the same surface the engine consumes from
    :class:`ResultStore` (``exists/repair/create/load_spec/append_trial/
    iter_trials/completed/trial_records``), so ``run_campaign`` writes
    through it unchanged. Appends take a per-shard lock: concurrent
    submitters within one service process interleave *lines*, never
    bytes, and the merge re-derives a canonical order anyway.
    """

    def __init__(self, directory, n_shards: Optional[int] = None,
                 on_append: Optional[Callable[[Dict], None]] = None) -> None:
        self.path = os.fspath(directory)
        if n_shards is None:
            existing = shard_paths(self.path)
            if not existing:
                raise CampaignError(
                    f"no shard files under {self.path!r} and no shard "
                    f"count given — pass n_shards to create a sharded "
                    f"store, or point at an existing one")
            n_shards = len(existing)
        if n_shards <= 0:
            raise CampaignError("shard count must be positive")
        self.n_shards = n_shards
        self.on_append = on_append
        self._shards = [
            ResultStore(os.path.join(self.path,
                                     SHARD_NAME.format(index=i)))
            for i in range(n_shards)]
        self._locks = [threading.Lock() for _ in range(n_shards)]

    # -- the ResultStore surface --------------------------------------------
    def exists(self) -> bool:
        return any(s.exists() for s in self._shards)

    def repair(self) -> bool:
        changed = False
        for shard in self._shards:
            changed = shard.repair() or changed
        return changed

    def create(self, spec: CampaignSpec) -> None:
        if self.exists():
            raise CampaignError(
                f"sharded store {self.path!r} already exists")
        os.makedirs(self.path, exist_ok=True)
        for shard in self._shards:
            shard.create(spec)

    def load_spec(self) -> CampaignSpec:
        spec: Optional[CampaignSpec] = None
        for shard in self._shards:
            if not shard.exists():
                continue
            other = shard.load_spec()
            if spec is None:
                spec = other
            elif other != spec:
                raise CampaignError(
                    f"shard {shard.path!r} holds a different campaign "
                    f"than its siblings under {self.path!r}")
        if spec is None:
            raise CampaignError(f"sharded store {self.path!r} is empty")
        return spec

    def append_trial(self, record: Dict) -> None:
        index = shard_index(record["cell"], self.n_shards)
        with self._locks[index]:
            self._shards[index].append_trial(record)
        if self.on_append is not None:
            self.on_append(record)

    def iter_trials(self) -> Iterator[Dict]:
        """Trials across shards (shard-index order), deduplicated.

        The order is deterministic but is NOT the single-store append
        order — consumers that need byte order go through
        :func:`merge_shards`. Aggregation is order-independent, so this
        is the right surface for resume/summarize.
        """
        seen: Set[Tuple[str, int]] = set()
        for shard in self._shards:
            if not shard.exists():
                continue
            for record in shard.iter_trials():
                key = (record["cell"], record["seed"])
                if key in seen:
                    continue
                seen.add(key)
                yield record

    def completed(self) -> Set[Tuple[str, int]]:
        return {(r["cell"], r["seed"]) for r in self.iter_trials()}

    def trial_records(self) -> List[Dict]:
        return list(self.iter_trials())

    def shard_files(self) -> List[str]:
        return [s.path for s in self._shards]


def _collect(source) -> Tuple[CampaignSpec, Dict[Tuple[str, int], Dict]]:
    """Spec + deduplicated records of a sharded store / path list."""
    if isinstance(source, ShardedStore):
        stores = [ResultStore(p) for p in source.shard_files()]
    elif isinstance(source, (list, tuple)):
        stores = [ResultStore(p) for p in source]
    else:
        path = os.fspath(source)
        if os.path.isdir(path):
            stores = [ResultStore(p) for p in shard_paths(path)]
        else:
            stores = [ResultStore(p) for p in sorted(glob.glob(path))]
    stores = [s for s in stores if s.exists()]
    if not stores:
        raise CampaignError(
            f"no shard stores found at {source!r} — expected a sharded "
            f"store directory, a glob, or a list of JSONL files")
    spec: Optional[CampaignSpec] = None
    records: Dict[Tuple[str, int], Dict] = {}
    for store in stores:
        store.repair()
        other = store.load_spec()
        if spec is None:
            spec = other
        elif other != spec:
            raise CampaignError(
                f"shard {store.path!r} holds a different campaign than "
                f"{stores[0].path!r}; merge shards of one campaign at a "
                f"time")
        for record in store.iter_trials():
            records.setdefault((record["cell"], record["seed"]), record)
    assert spec is not None
    return spec, records


def merge_shards(source, out_path) -> int:
    """Merge shard files into one single-store JSONL; returns trial count.

    ``source`` may be a :class:`ShardedStore`, a sharded store
    directory, a glob, or an explicit list of shard paths. The output is
    written through the ordinary :class:`ResultStore` append path in the
    engine-replayed canonical order, so for a completed campaign the
    result is byte-identical to the equivalent fresh single-store run —
    the verifiable-aggregation invariant, extended to sharding.
    """
    from repro.campaign.engine import store_append_order

    spec, records = _collect(source)
    out = ResultStore(out_path)
    if out.exists():
        raise CampaignError(
            f"refusing to overwrite existing store {out.path!r}")
    order = store_append_order(spec, records)
    out.create(spec)
    for key in order:
        out.append_trial(records[key])
    return len(order)
