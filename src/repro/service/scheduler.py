"""Asyncio job scheduler: many campaign grids, one worker budget.

Submitted grids become :class:`Job` objects multiplexed over the
existing campaign engine — each running job executes
:func:`repro.campaign.engine.run_campaign` in a worker thread, which in
turn fans trials across the process pool exactly as the CLI does
(differential-mode submission order included). The scheduler therefore
*wraps* the executor rather than forking it: multiplexing decides only
which grid runs next, with

* **priorities** — higher wins, FIFO within a priority;
* **per-tenant quotas** — one noisy tenant cannot occupy every slot;
* **cancellation** — polled by the engine at wave boundaries, so a
  cancelled job's store holds only whole, durable trial records;
* **graceful drain** — shutdown stops admissions, lets in-flight waves
  finish, and leaves non-terminal jobs journaled for re-adoption.

Rollups for the dashboard are fed by the store's ``on_append`` observer:
every durable trial record also updates a per-job
:class:`~repro.campaign.aggregate.Aggregator` and the service
:class:`~repro.telemetry.metrics.MetricsRegistry` under a lock, so the
SSE stream reads a consistent snapshot without touching any file.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Deque, Dict, List, Optional

from repro.campaign.aggregate import Aggregator
from repro.campaign.engine import run_campaign
from repro.campaign.spec import CampaignError, CampaignSpec
from repro.campaign.store import ResultStore
from repro.campaign.trial import TrialResult
from repro.harness.statistics import wilson_interval
from repro.service.journal import JobJournal
from repro.service.shards import ShardedStore
from repro.service.workers import LeaseBroker, WaveDispatcher
from repro.telemetry.metrics import MetricsRegistry

#: job lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
#: stopped mid-run by a drain; re-adopted from the journal on restart
SUSPENDED = "suspended"

#: sliding window (seconds) for the dashboard's trials/sec rollup
RATE_WINDOW_S = 30.0


@dataclass
class Job:
    """One submitted campaign grid and its live bookkeeping."""

    job_id: str
    spec: CampaignSpec
    tenant: str
    priority: int
    store_path: str
    shards: int
    workers: Optional[int]
    exec_mode: str
    seq: int
    state: str = QUEUED
    error: Optional[str] = None
    #: deterministic portion of the final summary (DONE jobs only)
    summary: Optional[Dict] = None
    #: live aggregate fed by the store's on_append observer
    agg: Aggregator = field(default_factory=Aggregator)
    trials_done: int = 0
    cancel_requested: bool = False
    #: set to make the engine stop at the next wave boundary
    stop_event: threading.Event = field(default_factory=threading.Event)

    def status(self) -> Dict:
        """JSON-ready status for the HTTP API."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "trials_done": self.trials_done,
            "total_trials": self.spec.total_trials,
            "store": self.store_path,
            "shards": self.shards,
            "exec_mode": self.exec_mode,
            "error": self.error,
        }


def _rate_dict(successes: int, trials: int) -> Dict[str, float]:
    if trials == 0:
        # no evidence yet: the whole [0, 1] interval is plausible
        return {"estimate": 0.0, "low": 0.0, "high": 1.0}
    iv = wilson_interval(successes, trials)
    return {"estimate": iv.estimate, "low": iv.low, "high": iv.high}


class JobScheduler:
    """Priority/quota multiplexer for campaign jobs on one event loop.

    ``submit``/``cancel``/``status`` are called from the event-loop
    thread (HTTP handlers); trial execution happens in worker threads
    via ``asyncio.to_thread``, which is why rollup state is guarded by a
    plain :class:`threading.Lock` rather than loop discipline.
    """

    def __init__(self, data_dir, *,
                 max_concurrent: int = 2,
                 tenant_quota: int = 1,
                 journal: Optional[JobJournal] = None,
                 runner: Optional[Callable] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 default_shards: int = 0,
                 default_workers: Optional[int] = None,
                 exec_mode: str = "differential",
                 broker: Optional[LeaseBroker] = None,
                 expect_workers: int = 0,
                 worker_wait: float = 10.0) -> None:
        if max_concurrent <= 0:
            raise CampaignError("max_concurrent must be positive")
        if tenant_quota <= 0:
            raise CampaignError("tenant_quota must be positive")
        self.data_dir = os.fspath(data_dir)
        self.max_concurrent = max_concurrent
        self.tenant_quota = tenant_quota
        self.journal = journal
        self.runner = runner
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.default_shards = default_shards
        self.default_workers = default_workers
        self.exec_mode = exec_mode
        self.broker = broker
        self.expect_workers = expect_workers
        self.worker_wait = worker_wait
        self._jobs: Dict[str, Job] = {}
        self._seq = itertools.count(1)
        self._numbers = itertools.count(
            journal.next_job_number() if journal is not None else 1)
        self._tasks: Dict[str, "asyncio.Task[None]"] = {}
        self._wake: Optional[asyncio.Event] = None
        self._stopping = False
        self._stopped = threading.Event()
        self._lock = threading.Lock()
        self._completions: Deque[float] = deque()

    # -- submission ---------------------------------------------------------
    def _job_store_path(self, job_id: str, shards: int) -> str:
        base = os.path.join(self.data_dir, job_id)
        return os.path.join(base, "shards") if shards > 1 \
            else os.path.join(base, "store.jsonl")

    def submit(self, spec: CampaignSpec, *,
               tenant: str = "default",
               priority: int = 0,
               workers: Optional[int] = None,
               shards: Optional[int] = None,
               exec_mode: Optional[str] = None,
               job_id: Optional[str] = None,
               store_path: Optional[str] = None,
               journal_event: bool = True) -> Job:
        """Queue one campaign grid; returns its :class:`Job`.

        ``job_id``/``store_path``/``journal_event=False`` are the
        re-adoption path: a journal replay resubmits an orphaned job
        against its original store, and the campaign engine's resume
        semantics skip every trial already on disk.
        """
        if job_id is None:
            job_id = f"job-{next(self._numbers):06d}"
        if job_id in self._jobs:
            raise CampaignError(f"job {job_id!r} already exists")
        n_shards = self.default_shards if shards is None else shards
        if store_path is None:
            store_path = self._job_store_path(job_id, n_shards)
        job = Job(job_id=job_id, spec=spec, tenant=tenant,
                  priority=priority,
                  workers=workers if workers is not None
                  else self.default_workers,
                  shards=n_shards,
                  exec_mode=exec_mode or self.exec_mode,
                  store_path=store_path, seq=next(self._seq))
        with self._lock:
            self._jobs[job_id] = job
        self.metrics.counter("service.jobs.submitted").inc()
        if self.journal is not None and journal_event:
            self.journal.submitted(
                job_id, spec=spec.to_dict(), tenant=tenant,
                priority=priority, store=store_path, shards=n_shards,
                workers=workers, exec_mode=job.exec_mode,
                fingerprint=spec.fingerprint())
        self._set_wake()
        return job

    def adopt_orphans(self) -> List[Job]:
        """Resubmit every journaled non-terminal job (server restart).

        A job whose recorded store no longer matches its spec
        fingerprint is marked FAILED instead of silently re-running a
        different campaign.
        """
        adopted: List[Job] = []
        if self.journal is None:
            return adopted
        # exclusive adoption: two servers pointed at one data dir must
        # not both resubmit (and both run) the same orphaned campaigns
        self.journal.acquire_lock()
        for entry in self.journal.orphans():
            spec = CampaignSpec.from_dict(entry.spec)
            if entry.fingerprint and spec.fingerprint() != entry.fingerprint:
                self.journal.failed(
                    entry.job_id,
                    "journal fingerprint mismatch — store not re-adopted")
                continue
            adopted.append(self.submit(
                spec, tenant=entry.tenant, priority=entry.priority,
                workers=entry.workers, shards=entry.shards,
                exec_mode=entry.exec_mode, job_id=entry.job_id,
                store_path=entry.store, journal_event=False))
        return adopted

    # -- queries ------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return sorted(self._jobs.values(), key=lambda j: j.seq)

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True if the job existed and was live."""
        job = self._jobs.get(job_id)
        if job is None or job.state in (DONE, FAILED, CANCELLED):
            return False
        job.cancel_requested = True
        if job.state == QUEUED:
            job.state = CANCELLED
            self.metrics.counter("service.jobs.cancelled").inc()
            if self.journal is not None:
                self.journal.cancelled(job_id)
        else:
            job.stop_event.set()  # engine stops at next wave boundary
        self._set_wake()
        return True

    # -- rollups ------------------------------------------------------------
    def _on_trial(self, job: Job, record: Dict) -> None:
        """Store observer — runs in the job's engine thread."""
        result = TrialResult.from_record(record)
        now = time.monotonic()
        with self._lock:
            job.agg.add(result)
            job.trials_done += 1
            self._completions.append(now)
            while self._completions and \
                    self._completions[0] < now - RATE_WINDOW_S:
                self._completions.popleft()
        self.metrics.counter("service.trials.completed").inc()
        self.metrics.counter(f"service.outcomes.{result.taxonomy}").inc()

    def rollup(self) -> Dict:
        """One consistent dashboard snapshot: jobs, rates, throughput.

        Outcome proportions carry Wilson 95% CIs (the campaign's own
        statistics layer). ``cached_verdict_rate`` is the differential
        mode's snapshot-cache hit proxy: zero-observable-strike trials
        are exactly the ones served the cached prefix verdict.
        """
        now = time.monotonic()
        with self._lock:
            jobs = [job.status() for job in self.jobs()]
            trials = strikes = clean = 0
            outcome_counts = {"sdc": 0, "due": 0, "recovered": 0,
                              "hang": 0, "crash": 0}
            for job in self._jobs.values():
                for cell in job.agg.cells.values():
                    trials += cell.trials
                    strikes += cell.strikes
                    clean += cell.clean_trials
                    outcome_counts["sdc"] += cell.sdc_trials
                    outcome_counts["due"] += cell.due_trials
                    outcome_counts["recovered"] += cell.recovered_trials
                    outcome_counts["hang"] += cell.hang_trials
                    outcome_counts["crash"] += cell.crash_trials
            window = [t for t in self._completions
                      if t >= now - RATE_WINDOW_S]
        running = sum(1 for j in jobs if j["state"] == RUNNING)
        queued = sum(1 for j in jobs if j["state"] == QUEUED)
        self.metrics.gauge("service.jobs.running").set(running)
        return {
            "jobs": jobs,
            "totals": {
                "trials": trials,
                "strikes": strikes,
                "jobs_running": running,
                "jobs_queued": queued,
                "rates": {name: _rate_dict(count, trials)
                          for name, count in sorted(outcome_counts.items())},
                "cached_verdict_rate": (clean / trials) if trials else 0.0,
            },
            "trials_per_sec": len(window) / RATE_WINDOW_S,
            "draining": self._stopping,
        }

    # -- the scheduling loop ------------------------------------------------
    def _set_wake(self) -> None:
        if self._wake is not None:
            self._wake.set()

    def _runnable(self) -> Optional[Job]:
        running_total = 0
        running_by_tenant: Dict[str, int] = {}
        for job in self._jobs.values():
            if job.state == RUNNING:
                running_total += 1
                running_by_tenant[job.tenant] = \
                    running_by_tenant.get(job.tenant, 0) + 1
        if running_total >= self.max_concurrent:
            return None
        queued = [j for j in self._jobs.values() if j.state == QUEUED]
        # higher priority first; FIFO (submission seq) within a priority
        for job in sorted(queued, key=lambda j: (-j.priority, j.seq)):
            if running_by_tenant.get(job.tenant, 0) < self.tenant_quota:
                return job
        return None

    def _make_store(self, job: Job):
        on_append = partial(self._on_trial, job)
        if job.shards > 1:
            os.makedirs(job.store_path, exist_ok=True)
            return ShardedStore(job.store_path, n_shards=job.shards,
                                on_append=on_append)
        parent = os.path.dirname(os.path.abspath(job.store_path))
        os.makedirs(parent, exist_ok=True)
        return ResultStore(job.store_path, on_append=on_append)

    def _execute(self, job: Job):
        """Worker-thread body: the unmodified campaign engine."""
        kwargs = {}
        if self.runner is not None:
            kwargs["runner"] = self.runner
        if self.broker is not None:
            kwargs["executor"] = WaveDispatcher(
                self.broker, job_id=job.job_id,
                expect_workers=self.expect_workers,
                worker_wait=self.worker_wait, metrics=self.metrics)
        return run_campaign(
            job.spec, self._make_store(job), workers=job.workers,
            exec_mode=job.exec_mode,
            should_stop=job.stop_event.is_set, **kwargs)

    async def _run_job(self, job: Job) -> None:
        self.metrics.counter("service.jobs.started").inc()
        if self.journal is not None:
            self.journal.started(job.job_id)
        try:
            summary = await asyncio.to_thread(self._execute, job)
        except Exception:
            job.state = FAILED
            job.error = traceback.format_exc()[-2000:]
            self.metrics.counter("service.jobs.failed").inc()
            if self.journal is not None:
                self.journal.failed(job.job_id, job.error)
        else:
            progress = summary.progress or {}
            remaining = progress.get("planned_trials", 0) \
                - progress.get("resumed_trials", 0) \
                - progress.get("trials_run", 0) \
                - progress.get("early_stopped_trials", 0)
            if job.cancel_requested:
                job.state = CANCELLED
                self.metrics.counter("service.jobs.cancelled").inc()
                if self.journal is not None:
                    self.journal.cancelled(job.job_id)
            elif remaining > 0:
                # a drain stopped the engine at a wave boundary; the
                # journal keeps the job non-terminal for re-adoption
                job.state = SUSPENDED
            else:
                job.state = DONE
                job.summary = summary.stats_dict()
                self.metrics.counter("service.jobs.completed").inc()
                if self.journal is not None:
                    self.journal.finished(job.job_id)
        finally:
            self._tasks.pop(job.job_id, None)
            self._set_wake()

    def request_stop(self) -> None:
        """Begin a graceful drain: no new admissions, running jobs stop
        at their next wave boundary, queued jobs stay journaled."""
        self._stopping = True
        for job in self._jobs.values():
            if job.state == RUNNING:
                job.stop_event.set()
        self._set_wake()

    @property
    def stopping(self) -> bool:
        return self._stopping

    async def run(self) -> None:
        """Main loop; returns once a requested drain has completed."""
        self._wake = asyncio.Event()
        self._set_wake()
        try:
            while True:
                await self._wake.wait()
                self._wake.clear()
                if self._stopping:
                    if self._tasks:
                        await asyncio.gather(
                            *list(self._tasks.values()),
                            return_exceptions=True)
                    break
                while True:
                    job = self._runnable()
                    if job is None:
                        break
                    # flip state here, not in _run_job: create_task does
                    # not run synchronously, and _runnable must see the
                    # admission immediately or this loop never breaks
                    job.state = RUNNING
                    self._tasks[job.job_id] = asyncio.create_task(
                        self._run_job(job))
        finally:
            if self.journal is not None:
                self.journal.release_lock()
            self._stopped.set()
