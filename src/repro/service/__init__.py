"""Campaign-as-a-service: the multi-tenant face of the campaign engine.

One process owning one JSONL store serves a single sweep; production
scale (paper Sec VI: SER grids spanning 1e-7..1e-17, 4-way scheme
comparisons) means many concurrent grids from many clients. This package
adds the service seam *around* the campaign engine — never a fork of it:

* :class:`~repro.service.shards.ShardedStore` — the JSONL store sharded
  by cell hash, with a deterministic merge that is byte-identical to the
  equivalent single-store run (CI-gated);
* :class:`~repro.service.scheduler.JobScheduler` — an asyncio scheduler
  multiplexing submitted grids across the existing process-pool
  executor, with priorities, per-tenant quotas, cancellation, and
  graceful drain-on-shutdown;
* :class:`~repro.service.journal.JobJournal` — append-only job-state
  journal so a restarted server re-adopts in-flight campaigns with no
  trial lost or repeated (the store's (cell, seed) keying does the
  deduplication);
* :mod:`~repro.service.server` — ``repro serve``: submit/status/cancel/
  results/metrics over HTTP plus a live dashboard streaming
  MetricsRegistry rollups as server-sent events (stdlib only);
* :class:`~repro.service.client.ServiceClient` — the stdlib HTTP client
  the CI smoke and tests drive the API with;
* :mod:`~repro.service.workers` — the distributed worker tier:
  ``repro worker`` processes claim wave-grained leases over HTTP,
  renew them with heartbeats, and stream results back; expired leases
  requeue (at-least-once) and the dispatcher falls back to local
  execution when no workers are available;
* :mod:`~repro.service.retry` — the shared backoff policy (exponential
  + full jitter, budgets) used by pool retries and service HTTP calls;
* :mod:`~repro.service.chaos` — seeded fault injection for the service
  stack itself (worker SIGKILLs, dropped heartbeats, torn journal
  lines, injected 500s/stalls).

Every determinism invariant of the single-process engine survives
multiplexing because the service only decides *when* grids run, never
what a trial computes or in what order a store's bytes land.
"""

from repro.service.chaos import ChaosConfig, ChaosController, ChaosError
from repro.service.client import ServiceClient, ServiceError
from repro.service.journal import JobJournal, JournalLocked
from repro.service.retry import (HTTP_RETRY, TRIAL_RETRY, RetryError,
                                 RetryPolicy, call_with_retry)
from repro.service.scheduler import Job, JobScheduler
from repro.service.shards import ShardedStore, merge_shards, shard_index
from repro.service.workers import (LeaseBroker, WaveDispatcher,
                                   WorkerClient, run_worker)

__all__ = [
    "ChaosConfig", "ChaosController", "ChaosError",
    "HTTP_RETRY", "TRIAL_RETRY",
    "Job", "JobJournal", "JobScheduler", "JournalLocked",
    "LeaseBroker", "RetryError", "RetryPolicy",
    "ServiceClient", "ServiceError",
    "ShardedStore", "WaveDispatcher", "WorkerClient",
    "call_with_retry", "merge_shards", "run_worker", "shard_index",
]
