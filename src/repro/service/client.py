"""A small stdlib HTTP client for the campaign service.

Used by the CI smoke test and handy from scripts/notebooks::

    client = ServiceClient("127.0.0.1", 8765)
    job = client.submit({"schemes": ["unsync"], "workloads": ["matmul"],
                         "sers": [1e-4], "trials": 20})
    client.wait(job["job_id"])
    print(client.results(job["job_id"])["summary"])

Every method raises :class:`ServiceError` on a non-2xx response, with
the server's ``error`` message attached, so callers never parse failure
bodies themselves.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional

#: job states the service reports as final
FINAL_STATES = frozenset({"done", "failed", "cancelled", "suspended"})


class ServiceError(RuntimeError):
    """Non-2xx response from the campaign service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talks JSON to one ``repro serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = (json.dumps(body, sort_keys=True).encode()
                       if body is not None else None)
            headers = {"Content-Type": "application/json"} if payload \
                else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw.decode() or "{}")
            except json.JSONDecodeError:
                data = {"error": raw.decode(errors="replace")[:200]}
            if response.status >= 300:
                raise ServiceError(
                    response.status,
                    str(data.get("error", "unexpected response")))
            return data
        finally:
            conn.close()

    # -- API ----------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def submit(self, submission: Dict) -> Dict:
        """Submit a grid; returns the new job's status dict."""
        return self._request("POST", "/api/jobs", submission)

    def jobs(self) -> List[Dict]:
        return list(self._request("GET", "/api/jobs")["jobs"])

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/api/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict:
        return self._request("POST", f"/api/jobs/{job_id}/cancel")

    def results(self, job_id: str) -> Dict:
        return self._request("GET", f"/api/jobs/{job_id}/results")

    def metrics(self) -> Dict:
        return self._request("GET", "/api/metrics")

    def wait(self, job_id: str, *, timeout: float = 300.0,
             poll_interval: float = 0.2) -> Dict:
        """Poll until the job reaches a final state; returns its status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in FINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    408, f"job {job_id} still {status['state']!r} "
                    f"after {timeout:.0f}s")
            time.sleep(poll_interval)
