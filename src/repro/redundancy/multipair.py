"""Multi-pair CMP: the paper's full 4-core configuration.

Figure 1 shows *two* UnSync core-pairs sharing one ECC L2; Table I's
machine is a 4-core CMP. :class:`MultiPairSystem` composes any number of
pair systems (UnSync or Reunion, independently per pair) over one shared
bus + L2, each pair running its own workload in its own L2 address window.
This is what exposes the cross-pair interference that single-pair runs
cannot: CB drains and L1 refills of pair 0 contend with those of pair 1.

"The number and pairs of redundant cores in the multi-core system can be
configured by the user, based on reliability and performance
requirements" (Sec I) — the ``schemes`` argument is that knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.isa.program import Program
from repro.mem.bus import Bus
from repro.mem.l2 import SharedL2
from repro.redundancy.stats import RunResult

#: spacing of per-pair L2 address windows; far larger than any kernel
#: footprint, and the L2 index hashing spreads the windows across sets.
PAIR_ADDR_STRIDE = 0x2000_0000


@dataclass
class MultiPairResult:
    """Per-pair results plus shared-uncore statistics."""

    pair_results: List[RunResult]
    total_cycles: int
    bus_busy_cycles: int

    @property
    def aggregate_throughput(self) -> float:
        """Total committed instructions per cycle across all pairs."""
        total_instructions = sum(r.instructions for r in self.pair_results)
        return total_instructions / self.total_cycles if self.total_cycles else 0.0


class MultiPairSystem:
    """N redundant pairs on one shared bus + L2."""

    def __init__(self,
                 programs: Sequence[Program],
                 schemes: Optional[Sequence[str]] = None,
                 config: Optional[SystemConfig] = None,
                 **pair_kwargs) -> None:
        """
        Parameters
        ----------
        programs:
            One program per pair.
        schemes:
            Per-pair scheme name, ``"unsync"`` or ``"reunion"``
            (default: all UnSync, the Figure 1 configuration).
        pair_kwargs:
            Extra keyword arguments forwarded to every pair constructor
            (e.g. ``unsync=UnSyncConfig(...)`` for UnSync pairs).
        """
        from repro.reunion.system import ReunionSystem
        from repro.unsync.system import UnSyncSystem

        if not programs:
            raise ValueError("need at least one pair")
        schemes = list(schemes) if schemes is not None else \
            ["unsync"] * len(programs)
        if len(schemes) != len(programs):
            raise ValueError("one scheme per program")

        self.config = config or SystemConfig.table1()
        self.bus = Bus(width_bytes=self.config.bus_width_bytes)
        self.l2 = SharedL2(config=self.config.l2,
                           mshrs=self.config.l2_mshrs)
        self.pairs = []
        for i, (program, scheme) in enumerate(zip(programs, schemes)):
            kwargs = dict(pair_kwargs)
            if scheme == "unsync":
                cls = UnSyncSystem
            elif scheme == "reunion":
                cls = ReunionSystem
            else:
                raise ValueError(f"unknown pair scheme {scheme!r}")
            self.pairs.append(cls(
                program, config=self.config,
                bus=self.bus, l2=self.l2,
                addr_offset=i * PAIR_ADDR_STRIDE,
                name=f"pair{i}.{program.name}",
                **kwargs))
        self.now = 0

    def finished(self) -> bool:
        return all(p.finished() for p in self.pairs)

    def step(self) -> None:
        for pair in self.pairs:
            if not pair.finished():
                pair.on_cycle(self.now)
        for pair in self.pairs:
            for pipeline in pair.pipelines:
                pipeline.step(self.now)
        self.now += 1

    def run(self, max_cycles: int = 8_000_000) -> MultiPairResult:
        while not self.finished():
            if self.now >= max_cycles:
                raise RuntimeError(
                    f"multi-pair system exceeded {max_cycles} cycles")
            self.step()
        results = [p.result() for p in self.pairs]
        return MultiPairResult(
            pair_results=results,
            total_cycles=max(r.cycles for r in results),
            bus_busy_cycles=self.bus.stats.busy_cycles,
        )
