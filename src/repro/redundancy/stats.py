"""Run results and the baseline store write buffer."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.pipeline import PipelineStats
from repro.faults.events import FaultEvent
from repro.isa.golden import ArchState


@dataclass
class RunResult:
    """Outcome of one (system, workload) simulation."""

    name: str
    scheme: str
    cycles: int
    instructions: int
    state: ArchState
    core_stats: List[PipelineStats] = field(default_factory=list)
    fault_events: List[FaultEvent] = field(default_factory=list)
    #: legacy scheme-specific counters. Since the telemetry subsystem this
    #: is a *derived view* over :attr:`metrics` (each system maps its
    #: historical keys onto the named counters), kept for backward
    #: compatibility with every figure driver and test that reads it.
    extra: Dict[str, float] = field(default_factory=dict)
    #: flat hierarchical telemetry counters (``core0.l1d.misses``,
    #: ``unsync.cb.full_stalls``, ...) — the canonical counter namespace.
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def overhead_vs(self, baseline: "RunResult") -> float:
        """Relative slowdown against a baseline run of the same workload.

        0.08 means 8% more cycles than the baseline.
        """
        if baseline.cycles == 0:
            raise ValueError("baseline has zero cycles")
        if baseline.instructions != self.instructions:
            raise ValueError(
                f"incomparable runs: {self.instructions} vs "
                f"{baseline.instructions} instructions")
        return self.cycles / baseline.cycles - 1.0


class WriteBuffer:
    """Store buffer between a write-through L1 and the L2.

    The unprotected baseline needs one so that write-through stores do not
    serialise commit: retired stores queue here and drain whenever the bus
    is free. A full buffer back-pressures commit exactly like UnSync's CB
    (same mechanism, no pairing rule) — which is why UnSync with a large
    CB converges to baseline performance in Figure 6.
    """

    def __init__(self, capacity: int = 16, entry_bytes: int = 12) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.entry_bytes = entry_bytes
        self._entries: Deque[Tuple[int, int, int, int]] = deque()
        self.pushes = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def can_accept(self) -> bool:
        if self.full:
            self.full_stalls += 1
            return False
        return True

    def push(self, seq: int, addr: int, value: int, width: int) -> None:
        if self.full:
            raise RuntimeError("push into full write buffer")
        self._entries.append((seq, addr, value, width))
        self.pushes += 1

    def head(self) -> Optional[Tuple[int, int, int, int]]:
        return self._entries[0] if self._entries else None

    def pop(self) -> Tuple[int, int, int, int]:
        return self._entries.popleft()
