"""Dual-core system scaffolding and the unprotected baseline.

:class:`DualCoreSystem` is the common chassis: two cores running the same
program over one shared bus + L2 (the paper's core-pair), stepped in
lockstep of *wall-clock cycles only* — the cores' pipelines drift apart
freely, which is the whole point of UnSync. Subclasses install commit
gates and override :meth:`DualCoreSystem.on_cycle` for their drain /
verification engines.

:class:`BaselineSystem` is the single, unprotected Table I core with a
store write buffer — the reference every Figure 4-6 overhead is computed
against.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.pipeline import CommitGate, Pipeline
from repro.core.rob import ROBEntry
from repro.isa.program import Program
from repro.mem.bus import Bus
from repro.mem.hierarchy import MemPort
from repro.mem.l2 import SharedL2
from repro.mem.prewarm import prewarm_l2
from repro.redundancy.stats import RunResult, WriteBuffer
from repro.telemetry import NULL_REGISTRY, Telemetry
from repro.telemetry.events import WATCHDOG_TRIP


class SimulationHang(RuntimeError):
    """The cycle-budget watchdog fired: the simulated system wedged.

    A ``RuntimeError`` subclass so every historical ``except RuntimeError``
    / ``pytest.raises(RuntimeError)`` site keeps working, but carries
    enough context (cycles burned, instructions committed) for the
    campaign trial runner to classify the run as a ``HANG`` outcome
    instead of aborting the whole grid. Attributes are plain scalars so
    the exception pickles cleanly across process-pool workers.
    """

    def __init__(self, message: str, cycles: int = 0,
                 committed: int = 0) -> None:
        super().__init__(message)
        self.cycles = cycles
        self.committed = committed


class DualCoreSystem:
    """Two cores, one thread, shared L2 — the redundant-pair chassis."""

    scheme = "pair"

    def __init__(self, program: Program,
                 config: Optional[SystemConfig] = None,
                 name: Optional[str] = None,
                 bus: Optional[Bus] = None,
                 l2: Optional[SharedL2] = None,
                 addr_offset: int = 0,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.program = program
        self.config = config or SystemConfig.table1()
        self.name = name or program.name
        # telemetry sinks, bound before gates/ports so make_gate overrides
        # and the MemPorts can pick them up. `_ev is None` is the hot-path
        # "disabled" test (same idiom as Pipeline.tracer); `_met` is the
        # null registry when disabled so warm paths may call through.
        self.telemetry = telemetry
        self._ev = telemetry.events if telemetry is not None else None
        self._met = telemetry.metrics if telemetry is not None \
            else NULL_REGISTRY
        # bus/l2 may be supplied by a multi-pair chassis so that several
        # pairs contend for the same uncore (the paper's 4-core CMP)
        self.bus = bus if bus is not None else Bus(
            width_bytes=self.config.bus_width_bytes)
        self.l2 = l2 if l2 is not None else SharedL2(
            config=self.config.l2, mshrs=self.config.l2_mshrs)
        self.addr_offset = addr_offset
        prewarm_l2(self.l2, program, addr_offset)
        self.ports: List[MemPort] = []
        self.pipelines: List[Pipeline] = []
        for i in range(2):
            port = MemPort(self.bus, self.l2,
                           icache_cfg=self.config.icache,
                           dcache_cfg=self.config.dcache,
                           itlb_cfg=self.config.itlb,
                           dtlb_cfg=self.config.dtlb,
                           l1_mshrs=self.config.l1_mshrs,
                           name=f"{self.name}.core{i}",
                           addr_offset=addr_offset)
            if self._ev is not None:
                port.attach_events(self._ev, track=f"core{i}.mem")
            self.ports.append(port)
            gate = self.make_gate(i)
            self.pipelines.append(Pipeline(program, self.config.core, port,
                                           gate=gate, name=f"core{i}"))
        self.now = 0

    # -- scheme hooks ------------------------------------------------------
    def make_gate(self, core_id: int) -> CommitGate:
        """Commit gate for core ``core_id`` (override per scheme)."""
        return CommitGate()

    def on_cycle(self, now: int) -> None:
        """Per-cycle housekeeping before the cores step (drains, checks)."""

    def finished(self) -> bool:
        for p in self.pipelines:
            if not p.done:
                return False
        return True

    def extra_stats(self) -> dict:
        """Scheme-specific counters merged into the result.

        Since the telemetry subsystem this is a derived view: the default
        maps :attr:`LEGACY_EXTRA` (legacy key -> metric name) over
        :meth:`scheme_metrics`, so the historical keys keep their exact
        values while the named counters are the single source of truth.
        """
        metrics = self.scheme_metrics()
        return {legacy: float(metrics[name])
                for legacy, name in self.LEGACY_EXTRA.items()}

    #: legacy ``extra`` key -> telemetry counter name (per scheme)
    LEGACY_EXTRA: Dict[str, str] = {}

    def scheme_metrics(self) -> Dict[str, float]:
        """Scheme-level named telemetry counters (override per scheme)."""
        return {}

    def metric_counters(self) -> Dict[str, float]:
        """The full flat counter rollup: per-core pipeline + memory
        hierarchy counters plus the scheme-level counters."""
        m: Dict[str, float] = {}
        for i, (p, port) in enumerate(zip(self.pipelines, self.ports)):
            m.update(p.stats.metric_counters(f"core{i}.pipeline."))
            m.update(port.metric_counters(f"core{i}."))
        m.update(self.scheme_metrics())
        return m

    # -- driving -----------------------------------------------------------
    def step(self) -> None:
        self.on_cycle(self.now)
        for p in self.pipelines:
            p.step(self.now)
        self.now += 1

    def run(self, max_cycles: int = 2_000_000) -> RunResult:
        while not self.finished():
            if self.now >= max_cycles:
                committed = [p.stats.committed for p in self.pipelines]
                if self._ev is not None:
                    self._ev.emit(WATCHDOG_TRIP, self.now, "watchdog",
                                  args={"budget": max_cycles,
                                        "committed": committed})
                raise SimulationHang(
                    f"{self.name}[{self.scheme}]: exceeded {max_cycles} "
                    f"cycles (committed: {committed})",
                    cycles=self.now, committed=committed[0])
            self.step()
        return self.result()

    def result(self) -> RunResult:
        # per-thread performance: the pair retires ONE logical thread, so
        # cycles = slowest core's completion, instructions = one stream.
        cycles = max(p.stats.cycles for p in self.pipelines)
        instructions = self.pipelines[0].stats.committed
        if self._ev is not None:
            for port in self.ports:
                port.flush_miss_bursts()
        metrics = self.metric_counters()
        if self.telemetry is not None:
            self.telemetry.metrics.merge_counters(metrics)
        return RunResult(
            name=self.name,
            scheme=self.scheme,
            cycles=cycles,
            instructions=instructions,
            state=self.pipelines[0].committed_state,
            core_stats=[p.stats for p in self.pipelines],
            extra=self.extra_stats(),
            metrics=metrics,
        )

    # -- verification helper -------------------------------------------------
    def states_agree(self) -> bool:
        """Architectural agreement between the two cores (fault-free
        invariant; tests lean on this)."""
        a, b = self.pipelines
        return (a.committed_state.regs == b.committed_state.regs
                and a.committed_state.mem == b.committed_state.mem)


class _WriteBufferGate(CommitGate):
    """Baseline gate: retired stores enter the write buffer."""

    def __init__(self, system: "BaselineSystem") -> None:
        self.system = system

    def can_commit(self, entry: ROBEntry, now: int) -> bool:
        if entry.is_store:
            return self.system.wbuf.can_accept()
        return True

    def on_commit(self, entry: ROBEntry, now: int) -> None:
        if entry.is_store:
            self.system.wbuf.push(entry.seq, entry.mem_addr,
                                  entry.store_value, entry.ins.mem_width)


class BaselineSystem:
    """Single unprotected core + write buffer: the Figure 4-6 reference."""

    scheme = "baseline"

    def __init__(self, program: Program,
                 config: Optional[SystemConfig] = None,
                 wbuf_entries: int = 16,
                 name: Optional[str] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.program = program
        self.config = config or SystemConfig.table1()
        self.name = name or program.name
        self.telemetry = telemetry
        self._ev = telemetry.events if telemetry is not None else None
        self.bus = Bus(width_bytes=self.config.bus_width_bytes)
        self.l2 = SharedL2(config=self.config.l2, mshrs=self.config.l2_mshrs)
        prewarm_l2(self.l2, program)
        self.port = MemPort(self.bus, self.l2,
                            icache_cfg=self.config.icache,
                            dcache_cfg=self.config.dcache,
                            itlb_cfg=self.config.itlb,
                            dtlb_cfg=self.config.dtlb,
                            l1_mshrs=self.config.l1_mshrs,
                            name=f"{self.name}.core0")
        if self._ev is not None:
            self.port.attach_events(self._ev, track="core0.mem")
        self.wbuf = WriteBuffer(capacity=wbuf_entries)
        self.pipeline = Pipeline(program, self.config.core, self.port,
                                 gate=_WriteBufferGate(self), name="core0")
        self.now = 0

    def finished(self) -> bool:
        """Uniform completion probe (the pair systems' spelling), so
        system-agnostic drivers — the differential-replay prefix runner —
        can step any scheme without special-casing the baseline."""
        return self.pipeline.done

    def step(self) -> None:
        # drain the write buffer whenever the bus is idle
        while len(self.wbuf):
            head = self.wbuf.head()
            xfer = self.bus.transfer_cycles(self.wbuf.entry_bytes)
            if self.bus.try_request(self.now, xfer) < 0:
                break
            self.wbuf.pop()
            self.l2.access(head[1], is_write=True, now=self.now)
        self.pipeline.step(self.now)
        self.now += 1

    def scheme_metrics(self) -> Dict[str, float]:
        return {
            "baseline.wbuf.pushes": float(self.wbuf.pushes),
            "baseline.wbuf.full_stalls": float(self.wbuf.full_stalls),
        }

    def run(self, max_cycles: int = 2_000_000) -> RunResult:
        while not self.pipeline.done:
            if self.now >= max_cycles:
                if self._ev is not None:
                    self._ev.emit(WATCHDOG_TRIP, self.now, "watchdog",
                                  args={"budget": max_cycles})
                raise SimulationHang(
                    f"{self.name}[baseline]: exceeded {max_cycles} cycles",
                    cycles=self.now,
                    committed=self.pipeline.stats.committed)
            self.step()
        if self._ev is not None:
            self.port.flush_miss_bursts()
        metrics = self.pipeline.stats.metric_counters("core0.pipeline.")
        metrics.update(self.port.metric_counters("core0."))
        metrics.update(self.scheme_metrics())
        if self.telemetry is not None:
            self.telemetry.metrics.merge_counters(metrics)
        return RunResult(
            name=self.name,
            scheme=self.scheme,
            cycles=self.pipeline.stats.cycles,
            instructions=self.pipeline.stats.committed,
            state=self.pipeline.committed_state,
            core_stats=[self.pipeline.stats],
            extra={"wbuf_full_stalls": metrics["baseline.wbuf.full_stalls"]},
            metrics=metrics,
        )
