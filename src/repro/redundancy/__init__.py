"""Shared machinery for redundant core-pair systems.

Both UnSync and Reunion are *core pairs running one thread twice* over a
shared bus + L2. :class:`~repro.redundancy.pair.DualCoreSystem` owns that
common shape — construction, the cycle loop, completion detection, result
assembly — and exposes one hook (``on_cycle``) plus per-core commit gates
for the scheme-specific behaviour. The unprotected baseline that Figures
4-6 normalise against lives here too (a single core with a plain store
write buffer).
"""

from repro.redundancy.pair import DualCoreSystem, BaselineSystem
from repro.redundancy.stats import RunResult, WriteBuffer

__all__ = ["DualCoreSystem", "BaselineSystem", "RunResult", "WriteBuffer"]
