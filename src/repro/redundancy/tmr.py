"""Triple modular redundancy comparator (extension).

The paper positions UnSync against the classic redundancy spectrum: DMR
detects, TMR detects *and corrects* by majority vote at ~200% overhead
(Sec II / III-B-1). This module implements a core-level TMR system over
the same substrate so the trade-off is measurable rather than cited:

* three identical cores run the thread; their store streams meet in
  three Communication Buffers;
* an entry drains once a *majority* (2 of 3) has produced it — the vote;
* a fault on one core never stalls the majority: only the struck core
  freezes, adopts a majority member's architectural state, and catches
  up (TMR's availability advantage over pair-recovery);
* the price is a third core's worth of area, power, and uncore traffic —
  the hwcost model (``repro.hwcost.redundancy_cost``) quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import SystemConfig
from repro.core.pipeline import CommitGate, Pipeline
from repro.core.rob import ROBEntry
from repro.faults.detection import Detector, NoDetector
from repro.faults.events import FaultEvent, Outcome
from repro.faults.injector import FaultInjector, Strike
from repro.isa.program import Program
from repro.mem.bus import Bus
from repro.mem.hierarchy import MemPort
from repro.mem.l2 import SharedL2
from repro.mem.prewarm import prewarm_l2
from repro.redundancy.stats import RunResult
from repro.unsync.comm_buffer import CBEntry, CommBuffer
from repro.unsync.recovery import RecoveryCostModel


class _TMRGate(CommitGate):
    """Per-core gate: stores enter this core's CB (or are dropped if the
    majority already voted them through while this core lagged)."""

    def __init__(self, system: "TMRSystem", core_id: int) -> None:
        self.system = system
        self.core_id = core_id

    def can_commit(self, entry: ROBEntry, now: int) -> bool:
        if entry.is_store:
            if entry.seq <= self.system.drained_seq:
                return True  # already voted through; no CB slot needed
            return self.system.cbs[self.core_id].can_accept()
        return True

    def on_commit(self, entry: ROBEntry, now: int) -> None:
        if entry.is_store and entry.seq > self.system.drained_seq:
            self.system.cbs[self.core_id].push(CBEntry(
                seq=entry.seq, addr=entry.mem_addr,
                value=entry.store_value, width=entry.ins.mem_width))


class TMRSystem:
    """Three cores, one thread, majority-voted store stream."""

    scheme = "tmr"
    N = 3

    def __init__(self, program: Program,
                 config: Optional[SystemConfig] = None,
                 cb_entries: int = 170,
                 injector: Optional[FaultInjector] = None,
                 recovery: Optional[RecoveryCostModel] = None,
                 name: Optional[str] = None) -> None:
        self.program = program
        self.config = config or SystemConfig.table1()
        self.name = name or program.name
        self.bus = Bus(width_bytes=self.config.bus_width_bytes)
        self.l2 = SharedL2(config=self.config.l2, mshrs=self.config.l2_mshrs)
        prewarm_l2(self.l2, program)
        self.cbs: List[CommBuffer] = [CommBuffer(cb_entries)
                                      for _ in range(self.N)]
        #: highest store seq already voted and written to L2
        self.drained_seq = -1
        self.injector = injector
        self.recovery = recovery or RecoveryCostModel(l1_restore="invalidate")
        self.fault_events: List[FaultEvent] = []
        self.corrections = 0
        self.votes = 0
        self._next_strike: Optional[Strike] = None

        self.ports: List[MemPort] = []
        self.pipelines: List[Pipeline] = []
        for i in range(self.N):
            port = MemPort(self.bus, self.l2,
                           icache_cfg=self.config.icache,
                           dcache_cfg=self.config.dcache,
                           itlb_cfg=self.config.itlb,
                           dtlb_cfg=self.config.dtlb,
                           l1_mshrs=self.config.l1_mshrs,
                           name=f"{self.name}.core{i}")
            self.ports.append(port)
            self.pipelines.append(Pipeline(program, self.config.core, port,
                                           gate=_TMRGate(self, i),
                                           name=f"core{i}"))
        self.now = 0
        if self.injector is not None:
            # Injected runs must keep the commit-time image an independent
            # re-execution, never a replay of fetch-time records.
            for p in self.pipelines:
                p.commit_replay = "always"
            self._arm_next_strike(0)

    # -- drain / vote ------------------------------------------------------
    def _drain(self, now: int) -> None:
        while True:
            heads = [cb.head().seq for cb in self.cbs if len(cb)]
            if not heads:
                return
            oldest = min(heads)
            holders = [cb for cb in self.cbs
                       if len(cb) and cb.head().seq == oldest]
            if len(holders) < 2:
                return  # no majority for the oldest store yet
            xfer = self.bus.transfer_cycles(8)
            if self.bus.try_request(now, xfer) < 0:
                return
            self.votes += 1
            head = holders[0].head()
            for cb in holders:
                cb.pop()
            self.l2.access(head.addr, is_write=True, now=now)
            self.drained_seq = oldest

    def _purge_stale(self) -> None:
        """Drop already-voted entries from a lagging core's CB."""
        for cb in self.cbs:
            while len(cb) and cb.head().seq <= self.drained_seq:
                cb.pop()

    # -- faults --------------------------------------------------------------
    def _arm_next_strike(self, now: int) -> None:
        interval = self.injector.next_interval()
        if interval == float("inf"):
            self._next_strike = None
            return
        self._next_strike = self.injector.strike_at(now + max(1, int(interval)))

    def _process_strikes(self, now: int) -> None:
        while self._next_strike is not None and self._next_strike.cycle <= now:
            strike = self._next_strike
            core_id = strike.bit % self.N
            event = FaultEvent(cycle=now, core_id=core_id,
                               block=strike.block, bit=strike.bit)
            # TMR's detection is the vote itself: any corrupted core is
            # out-voted; the struck core resynchronises while the other
            # two keep running.
            self._recover_core(now, core_id)
            event.outcome = Outcome.DETECTED_RECOVERED
            self.fault_events.append(event)
            self.corrections += 1
            self._arm_next_strike(now)

    def _recover_core(self, now: int, bad_core: int) -> None:
        donors = [i for i in range(self.N) if i != bad_core]
        # adopt from whichever healthy core has committed furthest
        donor = max(donors,
                    key=lambda i: self.pipelines[i].stats.committed)
        bad = self.pipelines[bad_core]
        plan = self.recovery.plan(
            stall_cycles=2,
            l1_resident_lines=self.ports[donor].dcache.resident_count(),
            cb_entries=len(self.cbs[donor]))
        bad.flush_pipeline()
        bad.adopt_state(self.pipelines[donor])
        self.ports[bad_core].dcache.invalidate_all()
        self.ports[bad_core].icache.invalidate_all()
        self.cbs[bad_core].overwrite_from(self.cbs[donor])
        # ONLY the struck core freezes — the majority keeps executing
        bad.frozen_until = max(bad.frozen_until, now + plan.total_cycles)

    # -- driving ---------------------------------------------------------------
    def finished(self) -> bool:
        return all(p.done for p in self.pipelines)

    def step(self) -> None:
        if self.injector is not None:
            self._process_strikes(self.now)
        self._purge_stale()
        self._drain(self.now)
        for p in self.pipelines:
            p.step(self.now)
        self.now += 1

    def run(self, max_cycles: int = 4_000_000) -> RunResult:
        while not self.finished():
            if self.now >= max_cycles:
                raise RuntimeError(
                    f"{self.name}[tmr]: exceeded {max_cycles} cycles")
            self.step()
        res = RunResult(
            name=self.name,
            scheme=self.scheme,
            cycles=max(p.stats.cycles for p in self.pipelines),
            instructions=self.pipelines[0].stats.committed,
            state=self.pipelines[0].committed_state,
            core_stats=[p.stats for p in self.pipelines],
            extra={
                "votes": float(self.votes),
                "corrections": float(self.corrections),
                "cb_full_stalls": float(sum(cb.full_stalls
                                            for cb in self.cbs)),
            },
        )
        res.fault_events = list(self.fault_events)
        return res
