"""Hand-written algorithmic kernels.

Real programs (not statistical clones) for tests and examples: each one
computes a verifiable result and stores it to a labelled location, so
correctness checks are one memory read. They also serve as ground truth
that the ISA + assembler + simulators execute actual algorithms, not just
generated instruction soup.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.isa.assembler import assemble
from repro.isa.program import Program

DOT_PRODUCT = """
# dot product of two 64-element vectors (a[i] = i+1, b[i] = 2i+1)
main:
    li r1, 64
    la r2, va
    la r3, vb
    li r4, 1
    li r5, 1
init:
    sw r4, 0(r2)
    sw r5, 0(r3)
    addi r2, r2, 4
    addi r3, r3, 4
    addi r4, r4, 1
    addi r5, r5, 2
    addi r1, r1, -1
    bne r1, r0, init
    li r1, 64
    la r2, va
    la r3, vb
    li r10, 0
dot:
    lw r6, 0(r2)
    lw r7, 0(r3)
    mul r8, r6, r7
    add r10, r10, r8
    addi r2, r2, 4
    addi r3, r3, 4
    addi r1, r1, -1
    bne r1, r0, dot
    la r9, result
    sw r10, 0(r9)
    halt
.data
result: .word 0
va: .space 256
vb: .space 256
"""

BUBBLE_SORT = """
# bubble-sort 32 pseudo-random words, then store the min and max
main:
    li r1, 32
    la r2, arr
    li r3, 12345
fill:                      # LCG fill: x = (x*1103515245 + 12345) & 0x7fff
    li r4, 1103515245
    mul r3, r3, r4
    addi r3, r3, 12345
    li r5, 0x7fff
    and r6, r3, r5
    sw r6, 0(r2)
    addi r2, r2, 4
    addi r1, r1, -1
    bne r1, r0, fill
    li r10, 31             # outer counter
outer:
    la r2, arr
    li r11, 31             # inner counter
inner:
    lw r6, 0(r2)
    lw r7, 4(r2)
    bge r7, r6, noswap
    sw r7, 0(r2)
    sw r6, 4(r2)
noswap:
    addi r2, r2, 4
    addi r11, r11, -1
    bne r11, r0, inner
    addi r10, r10, -1
    bne r10, r0, outer
    la r2, arr
    lw r8, 0(r2)           # min
    lw r9, 124(r2)         # max
    la r3, result
    sw r8, 0(r3)
    sw r9, 4(r3)
    halt
.data
result: .space 8
arr: .space 128
"""

CHECKSUM = """
# additive + rotating checksum over a 256-byte buffer
main:
    li r1, 64
    la r2, buf
    li r3, 7
fill:
    mul r3, r3, r3
    addi r3, r3, 13
    sw r3, 0(r2)
    addi r2, r2, 4
    addi r1, r1, -1
    bne r1, r0, fill
    li r1, 64
    la r2, buf
    li r10, 0
sum:
    lw r4, 0(r2)
    add r10, r10, r4
    slli r11, r10, 1
    srli r12, r10, 31
    or r10, r11, r12       # rotate left 1
    xor r10, r10, r4
    addi r2, r2, 4
    addi r1, r1, -1
    bne r1, r0, sum
    la r9, result
    sw r10, 0(r9)
    halt
.data
result: .word 0
buf: .space 256
"""

FIBONACCI = """
# fib(30) mod 2^32, iteratively
main:
    li r1, 30
    li r2, 0
    li r3, 1
fib:
    add r4, r2, r3
    mv r2, r3
    mv r3, r4
    addi r1, r1, -1
    bne r1, r0, fib
    la r9, result
    sw r2, 0(r9)
    halt
.data
result: .word 0
"""

ATOMIC_COUNTER = """
# exercise the non-idempotent SWAP: rotate a token through 3 mailboxes
main:
    li r1, 40
    la r2, boxes
    li r5, 1
spin:
    swap r5, 0(r2)
    swap r5, 4(r2)
    swap r5, 8(r2)
    membar
    addi r1, r1, -1
    bne r1, r0, spin
    la r9, result
    sw r5, 0(r9)
    lw r6, 0(r2)
    sw r6, 4(r9)
    halt
.data
result: .space 8
boxes: .word 10, 20, 30
"""

MATMUL = """
# 8x8 integer matrix multiply C = A * B, then checksum C
main:
    li r1, 64
    la r2, ma
    la r3, mb
    li r4, 1
fill:
    sw r4, 0(r2)
    slli r5, r4, 1
    sw r5, 0(r3)
    addi r2, r2, 4
    addi r3, r3, 4
    addi r4, r4, 1
    addi r1, r1, -1
    bne r1, r0, fill
    li r10, 0              # i
iloop:
    li r11, 0              # j
jloop:
    li r12, 0              # k
    li r13, 0              # acc
kloop:
    slli r14, r10, 5       # i*8*4
    slli r15, r12, 2
    add r14, r14, r15      # &A[i][k] offset
    la r2, ma
    add r2, r2, r14
    lw r6, 0(r2)
    slli r14, r12, 5
    slli r15, r11, 2
    add r14, r14, r15
    la r3, mb
    add r3, r3, r14
    lw r7, 0(r3)
    mul r8, r6, r7
    add r13, r13, r8
    addi r12, r12, 1
    slti r9, r12, 8
    bne r9, r0, kloop
    slli r14, r10, 5
    slli r15, r11, 2
    add r14, r14, r15
    la r4, mc
    add r4, r4, r14
    sw r13, 0(r4)
    addi r11, r11, 1
    slti r9, r11, 8
    bne r9, r0, jloop
    addi r10, r10, 1
    slti r9, r10, 8
    bne r9, r0, iloop
    li r1, 64
    la r2, mc
    li r10, 0
sum:
    lw r4, 0(r2)
    add r10, r10, r4
    addi r2, r2, 4
    addi r1, r1, -1
    bne r1, r0, sum
    la r9, result
    sw r10, 0(r9)
    halt
.data
result: .word 0
ma: .space 256
mb: .space 256
mc: .space 256
"""

SIEVE = """
# sieve of Eratosthenes up to 255; result = count of primes (= 54)
main:
    la r2, flags
    li r1, 256
    li r3, 0
clear:
    sb r3, 0(r2)
    addi r2, r2, 1
    addi r1, r1, -1
    bne r1, r0, clear
    li r4, 2              # candidate
outer:
    la r2, flags
    add r5, r2, r4
    lb r6, 0(r5)
    bne r6, r0, next      # already composite
    add r7, r4, r4        # first multiple
mark:
    slti r8, r7, 256
    beq r8, r0, next
    la r2, flags
    add r5, r2, r7
    li r9, 1
    sb r9, 0(r5)
    add r7, r7, r4
    j mark
next:
    addi r4, r4, 1
    slti r8, r4, 256
    bne r8, r0, outer
    # count zeros in flags[2..255]
    li r4, 2
    li r10, 0
count:
    la r2, flags
    add r5, r2, r4
    lb r6, 0(r5)
    bne r6, r0, notp
    addi r10, r10, 1
notp:
    addi r4, r4, 1
    slti r8, r4, 256
    bne r8, r0, count
    la r9, result
    sw r10, 0(r9)
    halt
.data
result: .word 0
flags: .space 256
"""

BINARY_SEARCH = """
# binary-search 48 keys in a sorted 64-word table; result = found count
main:
    li r1, 64
    la r2, table
    li r3, 0
fill:                      # table[i] = 3*i
    sw r3, 0(r2)
    addi r2, r2, 4
    addi r3, r3, 3
    addi r1, r1, -1
    bne r1, r0, fill
    li r10, 0              # found counter
    li r11, 48             # probes
    li r12, 0              # probe key seed
probe:
    li r4, 0               # lo
    li r5, 63              # hi
bs_loop:
    blt r5, r4, missed
    add r6, r4, r5
    srli r6, r6, 1         # mid
    la r2, table
    slli r7, r6, 2
    add r7, r2, r7
    lw r8, 0(r7)           # table[mid]
    beq r8, r12, found
    blt r8, r12, go_right
    addi r5, r6, -1
    j bs_loop
go_right:
    addi r4, r6, 1
    j bs_loop
found:
    addi r10, r10, 1
missed:
    addi r12, r12, 4       # next key (hits every 3rd multiple pattern)
    addi r11, r11, -1
    bne r11, r0, probe
    la r9, result
    sw r10, 0(r9)
    halt
.data
result: .word 0
table: .space 256
"""

STRING_SEARCH = """
# naive substring search: count occurrences of a 3-byte needle in a
# 64-byte haystack; result = match count
main:
    # haystack = repeating pattern 'a' 'b' 'c' 'a' 'b' (5-periodic)
    la r2, hay
    li r1, 64
    li r3, 0               # index
hfill:
    li r4, 5
    div r5, r3, r4
    mul r5, r5, r4
    sub r5, r3, r5         # i mod 5
    la r6, pat5
    add r6, r6, r5
    lb r7, 0(r6)
    sb r7, 0(r2)
    addi r2, r2, 1
    addi r3, r3, 1
    addi r1, r1, -1
    bne r1, r0, hfill
    li r10, 0              # matches
    li r3, 0               # position
search:
    slti r8, r3, 62        # positions 0..61
    beq r8, r0, done
    la r2, hay
    add r2, r2, r3
    lb r4, 0(r2)
    lb r5, 1(r2)
    lb r6, 2(r2)
    la r7, needle
    lb r11, 0(r7)
    lb r12, 1(r7)
    lb r13, 2(r7)
    bne r4, r11, nomatch
    bne r5, r12, nomatch
    bne r6, r13, nomatch
    addi r10, r10, 1
nomatch:
    addi r3, r3, 1
    j search
done:
    la r9, result
    sw r10, 0(r9)
    halt
.data
result: .word 0
pat5: .byte 97, 98, 99, 97, 98
needle: .byte 97, 98, 99
hay: .space 68
"""

GCD_CHAIN = """
# Euclid's gcd over a chain of pairs; result = sum of gcds
main:
    li r10, 0
    li r11, 20             # pairs
    li r2, 1071
    li r3, 462
pair:
    mv r4, r2
    mv r5, r3
gcd:
    beq r5, r0, gcd_done
    rem r6, r4, r5
    mv r4, r5
    mv r5, r6
    j gcd
gcd_done:
    add r10, r10, r4
    addi r2, r2, 13
    addi r3, r3, 7
    addi r11, r11, -1
    bne r11, r0, pair
    la r9, result
    sw r10, 0(r9)
    halt
.data
result: .word 0
"""

CRC32_TABLE = """
# table-driven CRC-8 (polynomial 0x07) over a 64-byte message
main:
    # build the 256-entry table
    li r1, 0               # byte value
tbl:
    mv r2, r1              # crc = byte
    li r3, 8
tbl_bit:
    andi r4, r2, 0x80
    slli r2, r2, 1
    andi r2, r2, 0xff
    beq r4, r0, no_poly
    xori r2, r2, 0x07
no_poly:
    addi r3, r3, -1
    bne r3, r0, tbl_bit
    la r5, table
    add r5, r5, r1
    sb r2, 0(r5)
    addi r1, r1, 1
    slti r6, r1, 256
    bne r6, r0, tbl
    # message[i] = (7i+3) & 0xff
    la r2, msg
    li r1, 64
    li r3, 3
mfill:
    sb r3, 0(r2)
    addi r2, r2, 1
    addi r3, r3, 7
    andi r3, r3, 0xff
    addi r1, r1, -1
    bne r1, r0, mfill
    # crc loop
    li r10, 0              # crc
    la r2, msg
    li r1, 64
crc:
    lb r4, 0(r2)
    andi r4, r4, 0xff
    xor r5, r10, r4
    andi r5, r5, 0xff
    la r6, table
    add r6, r6, r5
    lb r10, 0(r6)
    andi r10, r10, 0xff
    addi r2, r2, 1
    addi r1, r1, -1
    bne r1, r0, crc
    la r9, result
    sw r10, 0(r9)
    halt
.data
result: .word 0
table: .space 256
msg: .space 64
"""

KERNELS: Dict[str, str] = {
    "dot_product": DOT_PRODUCT,
    "bubble_sort": BUBBLE_SORT,
    "checksum": CHECKSUM,
    "fibonacci": FIBONACCI,
    "atomic_counter": ATOMIC_COUNTER,
    "matmul": MATMUL,
    "sieve": SIEVE,
    "binary_search": BINARY_SEARCH,
    "string_search": STRING_SEARCH,
    "gcd_chain": GCD_CHAIN,
    "crc8_table": CRC32_TABLE,
}


def load_kernel(name: str) -> Program:
    """Assemble a hand-written kernel by name."""
    if name not in KERNELS:
        raise KeyError(f"unknown kernel {name!r}; "
                       f"known: {', '.join(sorted(KERNELS))}")
    return assemble(KERNELS[name], name=name)
