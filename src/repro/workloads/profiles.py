"""Per-benchmark instruction-mix profiles.

Calibration sources:

* serializing fractions for bzip2 (2%), ammp (1.7%), galgel (1%) are
  stated in Sec VI-B-1; the remaining benchmarks are given small values
  consistent with the paper's claim that they suffer little from
  serialization;
* ammp and galgel are flagged in Sec VI-B-2 as the ROB-saturating,
  high-MLP workloads — they get ``ILP.HIGH``;
* store densities are set from the benchmarks' published characters
  (compression and media kernels store heavily; graph/pointer codes less)
  and drive Figure 6's CB sweep.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ILP(enum.Enum):
    """Instruction-level-parallelism class of the generated kernel.

    HIGH spreads work over 4 independent accumulator chains (the OoO
    window can run far ahead — maximal ROB appetite); MED uses 2; LOW
    serialises everything through one chain. The values are calibrated so
    the baseline IPCs land in the 1.4-2.6 band of SPEC2000 on an
    Alpha-class core, which in turn puts Reunion's deferred-commit
    overhead for non-serializing benchmarks in the paper's single-digit
    range.
    """

    LOW = 1
    MED = 2
    HIGH = 4


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one benchmark's generated kernel."""

    name: str
    suite: str
    #: fraction of dynamic instructions that are serializing (trap/membar)
    serializing_pct: float
    #: fraction that are stores
    store_pct: float
    #: fraction that are loads
    load_pct: float
    #: fraction that are (conditional) branches beyond the loop branch
    branch_pct: float
    ilp: ILP
    #: working set in KB (sized against the 32 KB L1)
    working_set_kb: int
    #: loop iterations (sets the dynamic instruction count)
    iterations: int = 100
    #: instructions per loop body (before rounding to the mix)
    body_size: int = 50
    #: fraction of extra branches that are data-dependent (hard to predict)
    unpredictable_branch_frac: float = 0.3
    #: fraction of the body's stores emitted as one contiguous burst.
    #: Real benchmarks write in runs (buffer flushes, struct updates); a
    #: 4-wide commit then fills a small CB faster than the one-per-cycle
    #: drain empties it, which is what gives Figure 6 its left edge.
    store_burst_frac: float = 0.75
    seed: int = 1

    def __post_init__(self) -> None:
        total = (self.serializing_pct + self.store_pct + self.load_pct
                 + self.branch_pct)
        if total >= 0.9:
            raise ValueError(f"{self.name}: mix fractions leave no room "
                             f"for ALU work ({total:.2f})")

    @property
    def approx_dynamic_instructions(self) -> int:
        return self.iterations * self.body_size


def _p(name, suite, ser, st, ld, br, ilp, ws, seed, iters=100, body=50):
    return WorkloadProfile(name=name, suite=suite, serializing_pct=ser,
                           store_pct=st, load_pct=ld, branch_pct=br,
                           ilp=ilp, working_set_kb=ws, seed=seed,
                           iterations=iters, body_size=body)


#: The benchmark roster. SPEC2000 members mirror the ones the paper names
#: or plots; MiBench members are the common embedded set.
PROFILES = {
    # --- SPEC2000 ---
    # paper: 2% serializing, >10% Reunion overhead; compression = store-heavy
    "bzip2": _p("bzip2", "spec2000", 0.020, 0.16, 0.18, 0.08, ILP.MED, 24, 11),
    # paper: 1.7% serializing + ROB-hungry; molecular dynamics = FP-ish MLP.
    # Working set fits L1 so its overhead comes from ROB pressure, not
    # miss drains (the paper's ammp is its second-worst case, ~12%).
    "ammp": _p("ammp", "spec2000", 0.017, 0.10, 0.22, 0.05, ILP.HIGH, 16, 12),
    # paper: 1% serializing, *maximum* overhead via ROB occupancy
    "galgel": _p("galgel", "spec2000", 0.010, 0.08, 0.24, 0.04, ILP.HIGH, 16, 13),
    "gzip": _p("gzip", "spec2000", 0.004, 0.14, 0.18, 0.09, ILP.MED, 16, 14),
    "mcf": _p("mcf", "spec2000", 0.002, 0.06, 0.30, 0.10, ILP.LOW, 96, 15),
    "parser": _p("parser", "spec2000", 0.004, 0.08, 0.24, 0.12, ILP.LOW, 32, 16),
    "vpr": _p("vpr", "spec2000", 0.003, 0.10, 0.20, 0.10, ILP.MED, 24, 17),
    "art": _p("art", "spec2000", 0.002, 0.08, 0.26, 0.04, ILP.HIGH, 80, 18),
    "equake": _p("equake", "spec2000", 0.003, 0.10, 0.24, 0.05, ILP.MED, 48, 19),
    # --- MiBench ---
    "qsort": _p("qsort", "mibench", 0.002, 0.12, 0.20, 0.12, ILP.LOW, 8, 21),
    "dijkstra": _p("dijkstra", "mibench", 0.002, 0.06, 0.26, 0.11, ILP.LOW, 16, 22),
    "sha": _p("sha", "mibench", 0.001, 0.08, 0.12, 0.05, ILP.MED, 4, 23),
    "crc32": _p("crc32", "mibench", 0.001, 0.04, 0.16, 0.06, ILP.LOW, 4, 24),
    "stringsearch": _p("stringsearch", "mibench", 0.002, 0.04, 0.24, 0.13, ILP.LOW, 8, 25),
    "bitcount": _p("bitcount", "mibench", 0.001, 0.02, 0.06, 0.10, ILP.MED, 2, 26),
    "susan": _p("susan", "mibench", 0.003, 0.12, 0.22, 0.06, ILP.MED, 32, 27),
    "basicmath": _p("basicmath", "mibench", 0.001, 0.06, 0.10, 0.06, ILP.MED, 4, 28),
}
