"""Workload substrate: synthetic SPEC2000 / MiBench stand-ins.

The paper evaluates on SPEC2000 and MiBench binaries we cannot ship, so
each named benchmark here is a *generated kernel* whose instruction-mix
statistics are calibrated to what the paper reports or implies:

* serializing-instruction fraction — the paper gives bzip2 2%, ammp 1.7%,
  galgel 1% (Sec VI-B-1); others are small;
* store density — drives CB pressure (Figure 6);
* instruction-level parallelism — drives ROB occupancy sensitivity
  (Figure 5: ammp and galgel "quickly saturate the ROB");
* branchiness and working-set size — general pipeline realism.

Figures 4-6 depend on exactly these statistics, so controlling them
directly is what makes the reproduction apples-to-apples. The calibration
table lives in :mod:`repro.workloads.profiles`; EXPERIMENTS.md records the
paper-vs-built values.

Hand-written algorithmic kernels (sort, checksum, dot product, ...) live
in :mod:`repro.workloads.kernels` for tests and examples that want real
programs rather than statistical clones.
"""

from repro.workloads.profiles import WorkloadProfile, ILP, PROFILES
from repro.workloads.generator import generate, generated_program
from repro.workloads.suites import (
    SPEC2000, MIBENCH, ALL_BENCHMARKS, load_benchmark, benchmark_names,
)
from repro.workloads.kernels import KERNELS, load_kernel


def workload_names():
    """Every runnable workload: calibrated benchmarks plus hand-written
    kernels."""
    return sorted(ALL_BENCHMARKS) + sorted(KERNELS)


def load_workload(name: str):
    """Load a workload by name, benchmark or kernel alike.

    The CLI and the campaign engine both address workloads by a single
    flat namespace; this is the one resolver for it. Raises ``KeyError``
    for unknown names (the caller decides how to report it).
    """
    if name in ALL_BENCHMARKS:
        return load_benchmark(name)
    if name in KERNELS:
        return load_kernel(name)
    raise KeyError(f"unknown workload {name!r} "
                   f"(try one of {', '.join(workload_names())})")


__all__ = [
    "WorkloadProfile", "ILP", "PROFILES",
    "generate", "generated_program",
    "SPEC2000", "MIBENCH", "ALL_BENCHMARKS", "load_benchmark",
    "benchmark_names",
    "KERNELS", "load_kernel",
    "load_workload", "workload_names",
]
