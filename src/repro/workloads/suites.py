"""Benchmark suite registries."""

from __future__ import annotations

from typing import Dict, List

from repro.isa.program import Program
from repro.workloads.generator import generated_program
from repro.workloads.profiles import PROFILES, WorkloadProfile

SPEC2000: Dict[str, WorkloadProfile] = {
    name: p for name, p in PROFILES.items() if p.suite == "spec2000"}
MIBENCH: Dict[str, WorkloadProfile] = {
    name: p for name, p in PROFILES.items() if p.suite == "mibench"}
ALL_BENCHMARKS: Dict[str, WorkloadProfile] = dict(PROFILES)

_cache: Dict[str, Program] = {}


def benchmark_names(suite: str = "all") -> List[str]:
    """Names in a suite ('spec2000', 'mibench', or 'all')."""
    if suite == "spec2000":
        return sorted(SPEC2000)
    if suite == "mibench":
        return sorted(MIBENCH)
    if suite == "all":
        return sorted(ALL_BENCHMARKS)
    raise ValueError(f"unknown suite {suite!r}")


def load_benchmark(name: str) -> Program:
    """Assembled program for benchmark ``name`` (cached — programs are
    deterministic in the profile seed)."""
    if name not in ALL_BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"known: {', '.join(sorted(ALL_BENCHMARKS))}")
    if name not in _cache:
        _cache[name] = generated_program(ALL_BENCHMARKS[name])
    return _cache[name]
