"""Kernel generator: profile -> assembly -> Program.

The generated kernel is one hot loop whose body realises the profile's
instruction mix:

* ALU slots update ``ilp``-many independent accumulator chains
  round-robin — the knob that sets how much of the OoO window the kernel
  can fill (Figure 5's sensitivity);
* load/store slots walk a working-set array with a register-masked
  wrap-around cursor, at immediate offsets spread over a 1 KB window
  (spatial locality like a real stride-1..8 kernel);
* branch slots hash an accumulator (or a loaded value, for the
  unpredictable fraction) and conditionally skip one filler instruction;
* serializing slots emit ``trap`` — the paper's Figure 4 driver.

Generation is deterministic in ``profile.seed``. The returned program is
self-checking in the weak sense that every accumulator is stored to the
output area at the end, so two executions can be compared bit-for-bit.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.profiles import WorkloadProfile

#: register conventions inside generated kernels
R_LOOP = 1        # iteration down-counter
R_BASE = 2        # working-set base address
R_CUR = 3         # cursor offset into the working set
R_LOADED = 4      # most recent loaded value
R_ADDR = 16       # base+cursor for this iteration
R_TMP = 17        # branch-hash temporary
R_MASK = 21       # working-set wrap mask
ACC_FIRST = 8     # accumulators r8..r15

#: spread of immediate offsets used by loads/stores within one iteration
OFFSET_WINDOW = 1024


def generate(profile: WorkloadProfile) -> str:
    """Generate assembly text for ``profile``."""
    rng = random.Random(profile.seed)
    n_acc = profile.ilp.value
    body = profile.body_size

    # Loop overhead (cursor bump, counter, loop branch, per-branch-slot
    # hash+skip, conditional-trap gate) dilutes the in-body mix; inflate
    # the slot counts so the *dynamic* fractions land on the profile.
    n_branch = max(0, round(body * profile.branch_pct * 1.2))
    est_total = body + 5 + 2 * n_branch + 3
    inflate = est_total / body
    n_store = max(1, round(body * profile.store_pct * inflate))
    n_load = max(1, round(body * profile.load_pct * inflate))

    # Serializing slots: whole traps per iteration when the fraction is
    # large enough, otherwise one trap every 2^k iterations behind a
    # counter test (this is how sub-1-per-body fractions like galgel's 1%
    # stay representable).
    traps_per_iter = est_total * profile.serializing_pct
    n_ser = int(traps_per_iter)
    trap_gate_log2 = 0
    remainder = traps_per_iter - n_ser
    if remainder > 0.02:
        trap_gate_log2 = min(12, max(1, round(math.log2(1.0 / remainder))))
    n_alu = max(1, body - n_ser - n_store - n_load - n_branch)

    burst_stores = round(n_store * profile.store_burst_frac)
    slots: List[str] = (["ser"] * n_ser
                        + ["store"] * (n_store - burst_stores)
                        + ["load"] * n_load + ["branch"] * n_branch
                        + ["alu"] * n_alu)
    rng.shuffle(slots)
    if burst_stores:
        # one contiguous store run per iteration (see store_burst_frac)
        where = rng.randrange(0, len(slots) + 1)
        slots[where:where] = ["store"] * burst_stores

    ws_bytes = profile.working_set_kb * 1024
    # wrap mask needs a power-of-two working set
    if ws_bytes & (ws_bytes - 1):
        ws_bytes = 1 << (ws_bytes.bit_length() - 1)
    # the cursor must wrap within the run, or the kernel degenerates into
    # a cold stream and the working-set knob stops meaning anything: the
    # hot region is min(ws, what the iterations can cover twice).
    offset_window = min(OFFSET_WINDOW, ws_bytes // 4)
    stride = 64
    coverage = profile.iterations * stride // 2
    wrap_bytes = ws_bytes
    while wrap_bytes > max(2 * offset_window, 512) and wrap_bytes > coverage:
        wrap_bytes //= 2
    # cursor is a multiple of the stride and wrap_bytes is a power of two,
    # so AND with (wrap_bytes - 1) is an exact modulo
    mask = wrap_bytes - 1

    lines = [
        f"# generated kernel: {profile.name} ({profile.suite})",
        "main:",
        f"    li r{R_LOOP}, {profile.iterations}",
        f"    la r{R_BASE}, ws",
        f"    li r{R_CUR}, 0",
        f"    li r{R_MASK}, {mask}",
    ]
    for i in range(n_acc):
        lines.append(f"    li r{ACC_FIRST + i}, {rng.randrange(1, 1 << 16)}")
    lines.append("loop:")
    lines.append(f"    add r{R_ADDR}, r{R_BASE}, r{R_CUR}")

    acc_rr = 0          # accumulator round-robin pointer
    branch_id = 0
    use_loaded_next = False
    for slot in slots:
        acc = ACC_FIRST + (acc_rr % n_acc)
        if slot == "alu":
            op = rng.choices(["add", "xor", "sub", "mul", "slli"],
                             weights=[5, 3, 2, 1, 1])[0]
            if use_loaded_next:
                src = R_LOADED
                use_loaded_next = False
            else:
                src = ACC_FIRST + ((acc_rr + 1) % n_acc)
            if op == "slli":
                lines.append(f"    slli r{acc}, r{acc}, {rng.randrange(1, 5)}")
            else:
                lines.append(f"    {op} r{acc}, r{acc}, r{src}")
            acc_rr += 1
        elif slot == "load":
            off = rng.randrange(0, offset_window, 4)
            lines.append(f"    lw r{R_LOADED}, {off}(r{R_ADDR})")
            use_loaded_next = True
        elif slot == "store":
            off = rng.randrange(0, offset_window, 4)
            lines.append(f"    sw r{acc}, {off}(r{R_ADDR})")
            acc_rr += 1
        elif slot == "branch":
            label = f"bskip_{profile.name}_{branch_id}"
            branch_id += 1
            if rng.random() < profile.unpredictable_branch_frac:
                # data-dependent: hash the last loaded value
                lines.append(f"    andi r{R_TMP}, r{R_LOADED}, 1")
            else:
                # loop-invariant: learned perfectly by the predictor
                lines.append(f"    andi r{R_TMP}, r{R_LOOP}, 0")
            lines.append(f"    beq r{R_TMP}, r0, {label}")
            lines.append(f"    addi r{acc}, r{acc}, 1")
            lines.append(f"{label}:")
            acc_rr += 1
        elif slot == "ser":
            lines.append("    trap")
        else:  # pragma: no cover - exhaustive
            raise AssertionError(slot)

    if trap_gate_log2:
        gate_mask = (1 << trap_gate_log2) - 1
        lines += [
            f"    andi r{R_TMP}, r{R_LOOP}, {gate_mask}",
            f"    bne r{R_TMP}, r0, no_trap_{profile.name}",
            "    trap",
            f"no_trap_{profile.name}:",
        ]
    stride = 64
    lines += [
        f"    addi r{R_CUR}, r{R_CUR}, {stride}",
        f"    and r{R_CUR}, r{R_CUR}, r{R_MASK}",
        f"    addi r{R_LOOP}, r{R_LOOP}, -1",
        f"    bne r{R_LOOP}, r0, loop",
    ]
    # spill the accumulators so runs are comparable
    lines.append("    la r16, out")
    for i in range(n_acc):
        lines.append(f"    sw r{ACC_FIRST + i}, {4 * i}(r16)")
    lines += [
        "    halt",
        ".data",
        "out: .space 64",
        f"ws: .space {ws_bytes + offset_window + 64}",
    ]
    return "\n".join(lines) + "\n"


def generated_program(profile: WorkloadProfile) -> Program:
    """Assemble the kernel for ``profile``."""
    return assemble(generate(profile), name=profile.name)
