"""repro — reproduction of *UnSync: A Soft Error Resilient Redundant
Multicore Architecture* (Jeyapaul et al., ICPP 2011).

Quick start::

    from repro import load_benchmark, compare_schemes

    program = load_benchmark("bzip2")
    cmp = compare_schemes(program)
    print(f"Reunion overhead {cmp.reunion_overhead:+.1%}, "
          f"UnSync overhead {cmp.unsync_overhead:+.1%}")

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.isa` — mini-ISA, assembler, golden executor (substrate)
* :mod:`repro.mem` — caches, TLBs, bus, L2, DRAM timing models (substrate)
* :mod:`repro.core` — cycle-level out-of-order core (substrate)
* :mod:`repro.faults` — SER math, strike injection, detector models
* :mod:`repro.unsync` — **the paper's contribution**: CB + EIH +
  always-forward recovery
* :mod:`repro.reunion` — the fingerprinting baseline
* :mod:`repro.hwcost` — synthesis/CACTI substitute (Tables II, III)
* :mod:`repro.workloads` — synthetic SPEC2000/MiBench suite
* :mod:`repro.harness` — one experiment driver per table/figure
* :mod:`repro.campaign` — resumable Monte Carlo fault-injection campaigns
"""

__version__ = "0.1.0"

from repro.isa import assemble, Program
from repro.isa.golden import run as golden_run
from repro.core import Core, SystemConfig, CoreConfig
from repro.redundancy import BaselineSystem, RunResult
from repro.unsync import UnSyncSystem, UnSyncConfig
from repro.reunion import ReunionSystem, ReunionParams
from repro.faults import FaultInjector, SERModel
from repro.workloads import load_benchmark, load_kernel, load_workload, \
    benchmark_names
from repro.harness import compare_schemes, run_scheme
from repro.campaign import CampaignSpec, run_campaign, summarize_store

__all__ = [
    "__version__",
    "assemble", "Program", "golden_run",
    "Core", "SystemConfig", "CoreConfig",
    "BaselineSystem", "RunResult",
    "UnSyncSystem", "UnSyncConfig",
    "ReunionSystem", "ReunionParams",
    "FaultInjector", "SERModel",
    "load_benchmark", "load_kernel", "load_workload", "benchmark_names",
    "compare_schemes", "run_scheme",
    "CampaignSpec", "run_campaign", "summarize_store",
]
