"""RepTFDSystem: delayed-replay comparison against the leading core.

RepTFD ("replay-based transient fault detection", arXiv:1206.2132)
detects soft errors by re-executing the committed instruction stream on a
second core a fixed *replay lag* behind the leader and comparing the two
commit-time images value-for-value. Mapped onto this repo's pair chassis:

* **core 0 (leader)** runs ahead; every retirement deposits an oracle
  record — the same commit-time record the pipeline's replay machinery
  produces — into a bounded **replay queue** (stall-on-full, like the CB);
* **core 1 (trailer)** may only retire an instruction once the leader's
  record for it has aged ``replay_lag`` cycles, and its own commit-time
  re-execution is compared against that record (pc, result, store
  address/value);
* only trailer-verified stores are released to the shared L2 — the
  trailer's commit point is the verification point;
* a mismatch rolls both cores back (squash + freeze) and additionally
  charges the leader's committed-but-unverified window, which is what
  makes detection latency — and hence ``replay_lag`` — expensive.

The comparison is a full-value check, so there is no CRC-aliasing escape
and no parity blind spot: multi-bit clusters are detected exactly like
single flips. The exposure that remains is the recovery window itself
(bounded retries, then DUE) and the replay queue's own storage (a
corrupted record forces a spurious rollback).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.pipeline import CommitGate
from repro.core.rob import ROBEntry
from repro.faults.events import FaultEvent, Outcome
from repro.faults.injector import Block, FaultInjector, Strike
from repro.isa.program import Program
from repro.redundancy.pair import DualCoreSystem
from repro.redundancy.stats import WriteBuffer
from repro.telemetry import Telemetry
from repro.telemetry.events import (
    FAULT_DUE, FAULT_INJECTED, FAULT_MULTIBIT, RECOVERY_ABORT,
    RECOVERY_REENTRY, REPLAY_COMPARE, REPLAY_GATE, ROLLBACK,
)

#: RepTFD's scheme-private uncore structure: the replay queue holds the
#: leader's commit records (pc + result + address + value + tags) until
#: the trailer consumes them. Sized for the default 96-entry queue.
REPTFD_UNCORE_BLOCKS = (
    Block("replay_queue", 96 * 130, pre_commit=False),
)


@dataclass(frozen=True)
class RepTFDParams:
    """RepTFD knobs on top of the Table I system."""

    #: minimum age (cycles) of a leader record before the trailer may
    #: retire the same instruction — the detection-latency floor
    replay_lag: int = 64
    #: bounded replay-queue capacity; a full queue back-pressures the
    #: leader's commit exactly like a full CB
    queue_entries: int = 96
    #: squash + re-steer cost of one rollback episode (both cores)
    rollback_penalty: int = 40
    #: rollback restarts tolerated inside one episode before the pair
    #: degrades to a detected-unrecoverable outcome
    rollback_retry_budget: int = 2
    #: verified-store release queue between trailer commit and the L2
    store_queue_entries: int = 16

    def __post_init__(self) -> None:
        if self.replay_lag <= 0:
            raise ValueError("replay_lag must be positive")
        if self.queue_entries <= 0:
            raise ValueError("queue_entries must be positive")
        if self.rollback_penalty <= 0:
            raise ValueError("rollback_penalty must be positive")
        if self.rollback_retry_budget < 0:
            raise ValueError("rollback_retry_budget must be >= 0")
        if self.store_queue_entries <= 0:
            raise ValueError("store_queue_entries must be positive")


@dataclass(slots=True)
class _ReplayRecord:
    """One leader retirement awaiting trailer comparison."""

    seq: int
    pc: int
    result: Optional[int]
    mem_addr: Optional[int]
    store_value: Optional[int]
    is_store: bool
    commit_cycle: int


class _LeaderGate(CommitGate):
    """Core 0: every retirement needs a replay-queue slot."""

    def __init__(self, system: "RepTFDSystem") -> None:
        self.system = system
        self._ev = system._ev
        self._stall_start: Optional[int] = None

    def can_commit(self, entry: ROBEntry, now: int) -> bool:
        system = self.system
        if len(system.replay_queue) >= system.params.queue_entries:
            system.queue_full_stalls += 1
            if self._ev is not None and self._stall_start is None:
                self._stall_start = now
            return False
        if self._stall_start is not None:
            self._ev.emit(REPLAY_GATE, self._stall_start, "core0.replay",
                          dur=now - self._stall_start)
            self._stall_start = None
        return True

    def on_commit(self, entry: ROBEntry, now: int) -> None:
        system = self.system
        system.replay_queue.append(_ReplayRecord(
            seq=entry.seq, pc=entry.pc, result=entry.result,
            mem_addr=entry.mem_addr, store_value=entry.store_value,
            is_store=entry.is_store, commit_cycle=now))
        if len(system.replay_queue) > system.queue_max_occupancy:
            system.queue_max_occupancy = len(system.replay_queue)


class _TrailerGate(CommitGate):
    """Core 1: retire only aged leader records, comparing on the way."""

    def __init__(self, system: "RepTFDSystem") -> None:
        self.system = system

    def can_commit(self, entry: ROBEntry, now: int) -> bool:
        system = self.system
        queue = system.replay_queue
        if not queue:
            return False
        head = queue[0]
        if head.seq != entry.seq:
            # the leader is mid-resteer after a rollback; wait for its
            # record stream to catch up with the trailer's commit point
            return False
        if now - head.commit_cycle < system.params.replay_lag:
            return False
        if entry.is_store:
            # verified stores need a release-queue slot
            return system.store_queue.can_accept()
        return True

    def on_commit(self, entry: ROBEntry, now: int) -> None:
        system = self.system
        record = system.replay_queue.popleft()
        system.compares += 1
        if (record.pc != entry.pc or record.result != entry.result
                or record.mem_addr != entry.mem_addr
                or record.store_value != entry.store_value):
            # fault-free runs never diverge (both images re-execute the
            # same deterministic program); kept as a live invariant
            system.value_divergences += 1  # pragma: no cover
        if entry.is_store:
            system.store_queue.push(entry.seq, entry.mem_addr,
                                    entry.store_value, entry.ins.mem_width)


class RepTFDSystem(DualCoreSystem):
    """Leader/trailer pair with delayed full-value replay comparison."""

    scheme = "reptfd"
    LEADER = 0
    TRAILER = 1

    def __init__(self, program: Program,
                 config: Optional[SystemConfig] = None,
                 params: Optional[RepTFDParams] = None,
                 injector: Optional[FaultInjector] = None,
                 name: Optional[str] = None,
                 telemetry: Optional[Telemetry] = None,
                 **uncore) -> None:
        self.params = params or RepTFDParams()
        self.replay_queue: Deque[_ReplayRecord] = deque()
        self.store_queue = WriteBuffer(
            capacity=self.params.store_queue_entries)
        self.injector = injector
        self.fault_events: List[FaultEvent] = []
        self.compares = 0
        self.value_divergences = 0
        self.queue_full_stalls = 0
        self.queue_max_occupancy = 0
        self.rollbacks = 0
        self.rollback_cycles_total = 0
        self.due_count = 0
        self.rollback_reentries = 0
        self.rollback_aborts = 0
        self._rollback_until = 0
        self._rollback_retries_left = self.params.rollback_retry_budget
        self._next_strike: Optional[Strike] = None
        #: fault events awaiting the trailer's comparison of the struck
        #: instruction: (trailer-commit threshold, event)
        self._pending: List = []
        super().__init__(program, config, name=name, telemetry=telemetry,
                         **uncore)
        if self.injector is not None:
            # Injected runs must keep the commit-time image an independent
            # re-execution, never a replay of fetch-time records.
            for p in self.pipelines:
                p.commit_replay = "always"
            self._arm_next_strike(0)

    # -- construction hooks -------------------------------------------------
    def make_gate(self, core_id: int) -> CommitGate:
        if core_id == self.LEADER:
            return _LeaderGate(self)
        return _TrailerGate(self)

    # -- per-cycle engine ---------------------------------------------------
    def on_cycle(self, now: int) -> None:
        if self.injector is not None:
            self._process_strikes(now)
            if self._pending:
                self._adjudicate(now)
        # drain trailer-verified stores whenever the bus is idle
        while len(self.store_queue):
            head = self.store_queue.head()
            xfer = self.bus.transfer_cycles(self.store_queue.entry_bytes)
            if self.bus.try_request(now, xfer) < 0:
                break
            self.store_queue.pop()
            self.l2.access(head[1] + self.addr_offset, is_write=True, now=now)

    # -- faults -------------------------------------------------------------
    def _arm_next_strike(self, now: int) -> None:
        self._next_strike = self.injector.next_strike(now)

    def _process_strikes(self, now: int) -> None:
        while self._next_strike is not None and self._next_strike.cycle <= now:
            strike = self._next_strike
            core_id = strike.core_id()
            event = FaultEvent(cycle=now, core_id=core_id,
                               block=strike.block, bit=strike.bit)
            if self._ev is not None:
                self._ev.emit(FAULT_INJECTED, now, f"core{core_id}",
                              args={"block": strike.block,
                                    "bit": strike.bit,
                                    "flipped": strike.flipped_bits})
                if strike.flipped_bits > 1:
                    self._ev.emit(FAULT_MULTIBIT, now, f"core{core_id}",
                                  args={"block": strike.block,
                                        "flipped": strike.flipped_bits})
            if now < self._rollback_until:
                self._strike_during_rollback(now, core_id, event)
            elif strike.block == "replay_queue":
                self._strike_queue(now, event)
            else:
                # every core block feeds the compared commit-time image —
                # the corruption surfaces when the trailer re-executes the
                # struck instruction, regardless of cluster size (the
                # full-value compare has no parity blind spot)
                threshold = self.pipelines[core_id].stats.committed
                event.outcome = None  # pending comparison
                self._pending.append((threshold, event))
            self.fault_events.append(event)
            self._arm_next_strike(now)

    def _strike_queue(self, now: int, event: FaultEvent) -> None:
        """A strike on a buffered replay record.

        An empty queue has no record to corrupt (masked). Otherwise the
        corrupted record mis-compares when the trailer consumes it — a
        spurious mismatch, detected and repaired by an ordinary rollback.
        """
        if not self.replay_queue:
            event.outcome = Outcome.MASKED
            return
        event.outcome = None
        self._pending.append(
            (self.pipelines[self.TRAILER].stats.committed, event))

    def _strike_during_rollback(self, now: int, core_id: int,
                                event: FaultEvent) -> None:
        """A strike landing inside an in-progress rollback window.

        The squash-and-restart state is exactly what the next comparison
        round depends on, so the rollback aborts and restarts (bounded
        retries); an exhausted budget degrades to DUE.
        """
        self.rollback_reentries += 1
        if self._ev is not None:
            self._ev.emit(RECOVERY_REENTRY, now, "replay",
                          args={"core": core_id, "block": event.block,
                                "retries_left": self._rollback_retries_left})
        if self._rollback_retries_left > 0:
            self._rollback_retries_left -= 1
            self.rollback_aborts += 1
            penalty = self.params.rollback_penalty
            self._rollback_until = max(self._rollback_until, now + penalty)
            for pipeline in self.pipelines:
                pipeline.frozen_until = max(pipeline.frozen_until,
                                            now + penalty)
            self.rollback_cycles_total += penalty
            event.outcome = Outcome.DETECTED_RECOVERED
            if self._ev is not None:
                self._ev.emit(RECOVERY_ABORT, now, "replay",
                              args={"core": core_id, "block": event.block})
        else:
            event.outcome = Outcome.DETECTED_UNRECOVERABLE
            self.due_count += 1
            if self._ev is not None:
                self._ev.emit(FAULT_DUE, now, f"core{core_id}",
                              args={"block": event.block,
                                    "reason": "retry-budget-exhausted"})

    def _adjudicate(self, now: int) -> None:
        """Resolve pending events the trailer's comparison has reached."""
        verified = self.pipelines[self.TRAILER].stats.committed
        matured = [(t, e) for t, e in self._pending if verified > t]
        if not matured:
            return
        for _, event in matured:
            event.outcome = Outcome.DETECTED_RECOVERED
            event.detection_latency = max(0, now - event.cycle)
            if self._ev is not None:
                self._ev.emit(REPLAY_COMPARE, now, "replay",
                              args={"core": event.core_id,
                                    "block": event.block,
                                    "latency": event.detection_latency})
            self._met.histogram("reptfd.detection.latency").observe(
                event.detection_latency)
        self._pending = [(t, e) for t, e in self._pending
                         if verified <= t]
        self._rollback(now)

    # -- rollback -----------------------------------------------------------
    def _rollback(self, now: int) -> None:
        """Squash both cores and re-run the unverified window.

        The leader has committed ``lag_window`` instructions the trailer
        never verified; restoring the pair to the last verified point
        costs the fixed squash penalty *plus* that window's re-execution
        — the price of delayed detection. The replay queue is never
        cleared: it still holds the records for the leader commits the
        trailer has yet to consume, and draining them is what lets the
        episode converge.
        """
        self.rollbacks += 1
        lag_window = (self.pipelines[self.LEADER].stats.committed
                      - self.pipelines[self.TRAILER].stats.committed)
        penalty = self.params.rollback_penalty + max(0, lag_window)
        if now >= self._rollback_until:
            # a fresh rollback episode resets the abort-retry budget
            self._rollback_retries_left = self.params.rollback_retry_budget
        self._rollback_until = max(self._rollback_until, now + penalty)
        if self.injector is not None:
            # a chase strike queued for this window must preempt the
            # pre-drawn strike or it would be delivered after the squash
            self.injector.on_recovery(now, penalty)
            self._next_strike = self.injector.preempt(self._next_strike)
        if self._ev is not None:
            self._ev.emit(ROLLBACK, now, "replay", dur=penalty,
                          args={"window": lag_window})
        self._met.histogram("reptfd.rollback.penalty").observe(penalty)
        for pipeline in self.pipelines:
            pipeline.flush_pipeline()
            pipeline.frozen_until = max(pipeline.frozen_until, now + penalty)
        self.rollback_cycles_total += penalty

    # -- results ------------------------------------------------------------
    #: legacy `extra` keys, derived from the named telemetry counters
    LEGACY_EXTRA = {
        "replay_compares": "reptfd.replay.compares",
        "replay_queue_full_stalls": "reptfd.queue.full_stalls",
        "rollbacks": "reptfd.rollback.count",
        "rollback_cycles": "reptfd.rollback.cycles",
    }

    def scheme_metrics(self) -> Dict[str, float]:
        return {
            "reptfd.replay.compares": float(self.compares),
            "reptfd.replay.divergences": float(self.value_divergences),
            "reptfd.queue.full_stalls": float(self.queue_full_stalls),
            "reptfd.queue.max_occupancy": float(self.queue_max_occupancy),
            "reptfd.rollback.count": float(self.rollbacks),
            "reptfd.rollback.cycles": float(self.rollback_cycles_total),
            "reptfd.rollback.reentries": float(self.rollback_reentries),
            "reptfd.rollback.aborts": float(self.rollback_aborts),
            "reptfd.due.count": float(self.due_count),
            "reptfd.store_queue.pushes": float(self.store_queue.pushes),
            "reptfd.store_queue.full_stalls": float(
                self.store_queue.full_stalls),
        }

    def result(self):
        res = super().result()
        res.fault_events = list(self.fault_events)
        return res
