"""repro.schemes: the pluggable resilience-scheme registry.

Public surface::

    from repro.schemes import get, register, available, protected_schemes

    system = get("unsync").build_system(program, injector=injector)
    result = system.run(max_cycles)

Registration order fixes the canonical scheme ordering everywhere a
list of schemes is presented (CLI choices, hwcost tables, CI smoke):
the two ported schemes first — ``protected_schemes()`` therefore starts
``("unsync", "reunion")``, preserving the historical
``PROTECTED_SCHEMES`` tuple as a prefix — then the two new backends,
then the unprotected baseline.

To add a scheme: subclass :class:`ResilienceScheme`, implement
``build_system`` (and whichever of ``detectors`` / ``uncore_blocks`` /
``system_cost`` apply), and :func:`register` an instance. See
README.md's "Resilience schemes" section for a worked example.
"""

from repro.schemes.base import (
    ResilienceScheme,
    UnknownSchemeError,
    available,
    get,
    protected_schemes,
    register,
    unregister,
)
from repro.schemes.builtin import (
    BaselineScheme,
    MEEKScheme,
    RepTFDScheme,
    ReunionScheme,
    UnSyncScheme,
)

register(UnSyncScheme())
register(ReunionScheme())
register(RepTFDScheme())
register(MEEKScheme())
register(BaselineScheme())

__all__ = [
    "BaselineScheme",
    "MEEKScheme",
    "RepTFDScheme",
    "ResilienceScheme",
    "ReunionScheme",
    "UnSyncScheme",
    "UnknownSchemeError",
    "available",
    "get",
    "protected_schemes",
    "register",
    "unregister",
]
