"""MEEKSystem: a cheap in-order checker core trailing an OoO leader.

MEEK (arXiv:2504.01347) pairs the big out-of-order core with a small
in-order checker: the leader retires at full speed, every retirement
enters a bounded **check queue** with its operand/result values, and the
checker re-executes the stream ``check_width`` instructions per cycle
once entries have matured ``check_latency`` cycles. Mapped onto this
repo's model:

* the checker is an abstract verification engine (no second
  :class:`~repro.core.pipeline.Pipeline` — its in-order core is an order
  of magnitude smaller than the leader, which is the scheme's whole
  selling point and what the hwcost entry charges);
* the leader's commit gate needs a check-queue slot for *every*
  instruction — a full queue back-pressures commit (stall-on-full), the
  directed backpressure test pins this;
* stores are released to the L2 only after the checker verifies them;
* coverage follows the forwarding design: the checker re-executes with
  its own register file, so register and pre-commit pipeline state are
  covered, but load values are *forwarded* from the leader rather than
  re-loaded — L1/TLB corruption flows straight through as SDC. That
  asymmetry is the taxonomy contrast with the full-pair schemes.

Detection triggers a **recheck**: squash the leader, freeze for the
recheck penalty plus the committed-but-unchecked window, and re-verify.
Strikes inside that window burn bounded retries, then degrade to DUE.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.pipeline import CommitGate, Pipeline
from repro.core.rob import ROBEntry
from repro.faults.events import FaultEvent, Outcome
from repro.faults.injector import Block, FaultInjector, Strike
from repro.isa.program import Program
from repro.mem.bus import Bus
from repro.mem.hierarchy import MemPort
from repro.mem.l2 import SharedL2
from repro.mem.prewarm import prewarm_l2
from repro.redundancy.pair import SimulationHang
from repro.redundancy.stats import RunResult, WriteBuffer
from repro.telemetry import NULL_REGISTRY, Telemetry
from repro.telemetry.events import (
    CHECKQ_DRAIN, CHECKQ_GATE, FAULT_DETECTED, FAULT_DUE, FAULT_INJECTED,
    FAULT_MULTIBIT, FAULT_SDC, RECOVERY_ABORT, RECOVERY_REENTRY,
    WATCHDOG_TRIP,
)

#: blocks the checker's re-execution covers: its private register file
#: shadows the leader's, and pre-commit pipeline state feeds the compared
#: results. Memory arrays are NOT here — load values are forwarded from
#: the leader unverified.
MEEK_COVERED_BLOCKS = frozenset(
    ("regfile", "pc", "pipeline_regs", "rob", "iq", "lsq"))

#: MEEK's scheme-private uncore structure: the check queue carries the
#: leader's retirement records (values + tags) to the checker core.
MEEK_UNCORE_BLOCKS = (
    Block("check_queue", 64 * 100, pre_commit=False),
)


@dataclass(frozen=True)
class MEEKParams:
    """MEEK knobs on top of the Table I system."""

    #: bounded check-queue capacity (leader retirements awaiting the
    #: checker); a full queue back-pressures leader commit
    queue_entries: int = 64
    #: instructions the in-order checker verifies per cycle (the paper's
    #: parallel checking lanes — sized to keep up with the leader's
    #: commit width so steady-state slowdown stays small)
    check_width: int = 4
    #: cycles an entry matures in the queue before the checker may take
    #: it (transfer + the checker's own pipeline depth)
    check_latency: int = 8
    #: squash + re-steer cost of one recheck episode
    recheck_penalty: int = 24
    #: recheck restarts tolerated inside one episode before degrading to
    #: a detected-unrecoverable outcome
    recheck_retry_budget: int = 2
    #: verified-store release queue between the checker and the L2
    store_buffer_entries: int = 16

    def __post_init__(self) -> None:
        if self.queue_entries <= 0:
            raise ValueError("queue_entries must be positive")
        if self.check_width <= 0:
            raise ValueError("check_width must be positive")
        if self.check_latency < 0:
            raise ValueError("check_latency must be >= 0")
        if self.recheck_penalty <= 0:
            raise ValueError("recheck_penalty must be positive")
        if self.recheck_retry_budget < 0:
            raise ValueError("recheck_retry_budget must be >= 0")
        if self.store_buffer_entries <= 0:
            raise ValueError("store_buffer_entries must be positive")


@dataclass(slots=True)
class _CheckRecord:
    """One leader retirement awaiting checker verification."""

    seq: int
    is_store: bool
    mem_addr: Optional[int]
    store_value: Optional[int]
    mem_width: int
    commit_cycle: int


class _MEEKGate(CommitGate):
    """Leader gate: every retirement needs a check-queue slot."""

    def __init__(self, system: "MEEKSystem") -> None:
        self.system = system
        self._ev = system._ev
        self._stall_start: Optional[int] = None

    def can_commit(self, entry: ROBEntry, now: int) -> bool:
        system = self.system
        if len(system.check_queue) >= system.params.queue_entries:
            system.checkq_full_stalls += 1
            if self._ev is not None and self._stall_start is None:
                self._stall_start = now
            return False
        if self._stall_start is not None:
            self._ev.emit(CHECKQ_GATE, self._stall_start, "core0.checkq",
                          dur=now - self._stall_start)
            self._stall_start = None
        return True

    def on_commit(self, entry: ROBEntry, now: int) -> None:
        system = self.system
        system.check_queue.append(_CheckRecord(
            seq=entry.seq, is_store=entry.is_store,
            mem_addr=entry.mem_addr, store_value=entry.store_value,
            mem_width=entry.ins.mem_width, commit_cycle=now))
        if len(system.check_queue) > system.checkq_max_occupancy:
            system.checkq_max_occupancy = len(system.check_queue)


class MEEKSystem:
    """OoO leader + small in-order checker over a bounded check queue."""

    scheme = "meek"

    def __init__(self, program: Program,
                 config: Optional[SystemConfig] = None,
                 params: Optional[MEEKParams] = None,
                 injector: Optional[FaultInjector] = None,
                 name: Optional[str] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.program = program
        self.config = config or SystemConfig.table1()
        self.params = params or MEEKParams()
        self.name = name or program.name
        self.telemetry = telemetry
        self._ev = telemetry.events if telemetry is not None else None
        self._met = telemetry.metrics if telemetry is not None \
            else NULL_REGISTRY
        self.bus = Bus(width_bytes=self.config.bus_width_bytes)
        self.l2 = SharedL2(config=self.config.l2, mshrs=self.config.l2_mshrs)
        prewarm_l2(self.l2, program)
        self.port = MemPort(self.bus, self.l2,
                            icache_cfg=self.config.icache,
                            dcache_cfg=self.config.dcache,
                            itlb_cfg=self.config.itlb,
                            dtlb_cfg=self.config.dtlb,
                            l1_mshrs=self.config.l1_mshrs,
                            name=f"{self.name}.core0")
        if self._ev is not None:
            self.port.attach_events(self._ev, track="core0.mem")
        self.check_queue: Deque[_CheckRecord] = deque()
        self.store_buffer = WriteBuffer(
            capacity=self.params.store_buffer_entries)
        self.injector = injector
        self.fault_events: List[FaultEvent] = []
        self.checks = 0
        self.checked_seqs = 0
        self.checkq_full_stalls = 0
        self.checkq_max_occupancy = 0
        self.rechecks = 0
        self.recovery_cycles_total = 0
        self.due_count = 0
        self.recheck_reentries = 0
        self.recheck_aborts = 0
        self._recheck_until = 0
        self._recheck_retries_left = self.params.recheck_retry_budget
        self._next_strike: Optional[Strike] = None
        #: fault events awaiting checker verification of the struck
        #: instruction: (checked-count threshold, event)
        self._pending: List = []
        self.pipeline = Pipeline(program, self.config.core, self.port,
                                 gate=_MEEKGate(self), name="core0")
        self.now = 0
        if self.injector is not None:
            # Injected runs must keep the commit-time image an independent
            # re-execution, never a replay of fetch-time records.
            self.pipeline.commit_replay = "always"
            self._arm_next_strike(0)

    # -- per-cycle engine ---------------------------------------------------
    def step(self) -> None:
        now = self.now
        if self.injector is not None:
            self._process_strikes(now)
            if self._pending:
                self._adjudicate(now)
        if now >= self._recheck_until:
            self._check(now)
        # drain checker-verified stores whenever the bus is idle
        while len(self.store_buffer):
            head = self.store_buffer.head()
            xfer = self.bus.transfer_cycles(self.store_buffer.entry_bytes)
            if self.bus.try_request(now, xfer) < 0:
                break
            self.store_buffer.pop()
            self.l2.access(head[1], is_write=True, now=now)
        self.pipeline.step(now)
        self.now += 1

    def _check(self, now: int) -> None:
        """The in-order checker: verify up to ``check_width`` mature
        entries, releasing verified stores to the store buffer."""
        queue = self.check_queue
        taken = 0
        while queue and taken < self.params.check_width:
            head = queue[0]
            if now - head.commit_cycle < self.params.check_latency:
                break
            if head.is_store and not self.store_buffer.can_accept():
                break
            queue.popleft()
            taken += 1
            self.checks += 1
            self.checked_seqs = head.seq + 1
            if head.is_store:
                self.store_buffer.push(head.seq, head.mem_addr,
                                       head.store_value, head.mem_width)
        if taken and self._ev is not None:
            self._ev.emit(CHECKQ_DRAIN, now, "checkq",
                          args={"n": taken, "left": len(queue)})

    # -- faults -------------------------------------------------------------
    def _arm_next_strike(self, now: int) -> None:
        self._next_strike = self.injector.next_strike(now)

    def _process_strikes(self, now: int) -> None:
        while self._next_strike is not None and self._next_strike.cycle <= now:
            strike = self._next_strike
            core_id = strike.core_id()
            event = FaultEvent(cycle=now, core_id=core_id,
                               block=strike.block, bit=strike.bit)
            if self._ev is not None:
                self._ev.emit(FAULT_INJECTED, now, "core0",
                              args={"block": strike.block,
                                    "bit": strike.bit,
                                    "flipped": strike.flipped_bits})
                if strike.flipped_bits > 1:
                    self._ev.emit(FAULT_MULTIBIT, now, "core0",
                                  args={"block": strike.block,
                                        "flipped": strike.flipped_bits})
            if now < self._recheck_until:
                self._strike_during_recheck(now, event)
            elif strike.block == "check_queue":
                self._strike_queue(event)
            elif strike.block in MEEK_COVERED_BLOCKS:
                # surfaces when the checker re-executes the struck
                # instruction (value compare, no parity blind spot)
                event.outcome = None  # pending verification
                self._pending.append((self.pipeline.stats.committed, event))
            else:
                # forwarded load values are never re-verified: L1 and TLB
                # corruption sails straight past the checker
                event.outcome = Outcome.SDC
                if self._ev is not None:
                    self._ev.emit(FAULT_SDC, now, "core0",
                                  args={"block": strike.block,
                                        "flipped": strike.flipped_bits})
            self.fault_events.append(event)
            self._arm_next_strike(now)

    def _strike_queue(self, event: FaultEvent) -> None:
        """A strike on a buffered check record: an empty queue is masked,
        otherwise the corrupted record mis-compares at the checker — a
        spurious mismatch repaired by an ordinary recheck."""
        if not self.check_queue:
            event.outcome = Outcome.MASKED
            return
        event.outcome = None
        self._pending.append((self.checked_seqs, event))

    def _strike_during_recheck(self, now: int, event: FaultEvent) -> None:
        """A strike landing inside an in-progress recheck window."""
        self.recheck_reentries += 1
        if self._ev is not None:
            self._ev.emit(RECOVERY_REENTRY, now, "checkq",
                          args={"block": event.block,
                                "retries_left": self._recheck_retries_left})
        if self._recheck_retries_left > 0:
            self._recheck_retries_left -= 1
            self.recheck_aborts += 1
            penalty = self.params.recheck_penalty
            self._recheck_until = max(self._recheck_until, now + penalty)
            self.pipeline.frozen_until = max(self.pipeline.frozen_until,
                                             now + penalty)
            self.recovery_cycles_total += penalty
            event.outcome = Outcome.DETECTED_RECOVERED
            if self._ev is not None:
                self._ev.emit(RECOVERY_ABORT, now, "checkq",
                              args={"block": event.block})
        else:
            event.outcome = Outcome.DETECTED_UNRECOVERABLE
            self.due_count += 1
            if self._ev is not None:
                self._ev.emit(FAULT_DUE, now, "core0",
                              args={"block": event.block,
                                    "reason": "retry-budget-exhausted"})

    def _adjudicate(self, now: int) -> None:
        """Resolve pending events the checker has verified past."""
        matured = [(t, e) for t, e in self._pending
                   if self.checked_seqs > t]
        if not matured:
            return
        for _, event in matured:
            event.outcome = Outcome.DETECTED_RECOVERED
            event.detection_latency = max(0, now - event.cycle)
            if self._ev is not None:
                self._ev.emit(FAULT_DETECTED, now, "core0",
                              args={"block": event.block,
                                    "latency": event.detection_latency})
            self._met.histogram("meek.detection.latency").observe(
                event.detection_latency)
        self._pending = [(t, e) for t, e in self._pending
                         if self.checked_seqs <= t]
        self._recheck(now)

    def _recheck(self, now: int) -> None:
        """Squash the leader and re-verify the unchecked window."""
        self.rechecks += 1
        window = len(self.check_queue)
        penalty = self.params.recheck_penalty + window
        if now >= self._recheck_until:
            # a fresh recheck episode resets the abort-retry budget
            self._recheck_retries_left = self.params.recheck_retry_budget
        self._recheck_until = max(self._recheck_until, now + penalty)
        if self.injector is not None:
            # a chase strike queued for this window must preempt the
            # pre-drawn strike or it would be delivered after the squash
            self.injector.on_recovery(now, penalty)
            self._next_strike = self.injector.preempt(self._next_strike)
        self._met.histogram("meek.recheck.penalty").observe(penalty)
        self.pipeline.flush_pipeline()
        self.pipeline.frozen_until = max(self.pipeline.frozen_until,
                                         now + penalty)
        self.recovery_cycles_total += penalty

    # -- driving ------------------------------------------------------------
    def finished(self) -> bool:
        return (self.pipeline.done and not self.check_queue
                and not len(self.store_buffer))

    def run(self, max_cycles: int = 2_000_000) -> RunResult:
        while not self.finished():
            if self.now >= max_cycles:
                if self._ev is not None:
                    self._ev.emit(WATCHDOG_TRIP, self.now, "watchdog",
                                  args={"budget": max_cycles})
                raise SimulationHang(
                    f"{self.name}[meek]: exceeded {max_cycles} cycles",
                    cycles=self.now,
                    committed=self.pipeline.stats.committed)
            self.step()
        return self.result()

    # -- results ------------------------------------------------------------
    #: legacy `extra` keys, derived from the named telemetry counters
    LEGACY_EXTRA = {
        "checkq_full_stalls": "meek.checkq.full_stalls",
        "checks": "meek.check.count",
        "rechecks": "meek.recheck.count",
        "recovery_cycles": "meek.recovery.cycles",
    }

    def scheme_metrics(self) -> Dict[str, float]:
        return {
            "meek.check.count": float(self.checks),
            "meek.checkq.full_stalls": float(self.checkq_full_stalls),
            "meek.checkq.max_occupancy": float(self.checkq_max_occupancy),
            "meek.recheck.count": float(self.rechecks),
            "meek.recheck.reentries": float(self.recheck_reentries),
            "meek.recheck.aborts": float(self.recheck_aborts),
            "meek.recovery.cycles": float(self.recovery_cycles_total),
            "meek.due.count": float(self.due_count),
            "meek.store_buffer.pushes": float(self.store_buffer.pushes),
            "meek.store_buffer.full_stalls": float(
                self.store_buffer.full_stalls),
        }

    def extra_stats(self) -> dict:
        metrics = self.scheme_metrics()
        return {legacy: float(metrics[name])
                for legacy, name in self.LEGACY_EXTRA.items()}

    def result(self) -> RunResult:
        if self._ev is not None:
            self.port.flush_miss_bursts()
        metrics = self.pipeline.stats.metric_counters("core0.pipeline.")
        metrics.update(self.port.metric_counters("core0."))
        metrics.update(self.scheme_metrics())
        if self.telemetry is not None:
            self.telemetry.metrics.merge_counters(metrics)
        res = RunResult(
            name=self.name,
            scheme=self.scheme,
            cycles=max(self.pipeline.stats.cycles, self.now),
            instructions=self.pipeline.stats.committed,
            state=self.pipeline.committed_state,
            core_stats=[self.pipeline.stats],
            extra=self.extra_stats(),
            metrics=metrics,
        )
        res.fault_events = list(self.fault_events)
        return res
