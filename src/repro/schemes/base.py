"""The resilience-scheme seam: one protocol, one registry.

A :class:`ResilienceScheme` bundles everything the rest of the repo needs
to know about one protection scheme — how to build its system over the
shared core+mem model, which detectors guard its blocks, which uncore
structures the adversarial fault model may strike, what its silicon
costs, and how a campaign trial charges its recovery time. The campaign
grid, the CLI, the fault models and the hwcost reports all resolve
schemes through :func:`get`/:func:`available` instead of hard-coded
``{"unsync": ..., "reunion": ...}`` dicts, so adding a scheme means
registering one descriptor — nothing else changes.

Descriptors are deliberately *light*: the heavy system classes are
imported lazily inside :meth:`ResilienceScheme.build_system` (and the
other hooks), so importing ``repro.schemes`` — which campaign specs do
at validation time — never drags in the simulators.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class UnknownSchemeError(ValueError):
    """Lookup of a scheme name the registry does not hold.

    A ``ValueError`` subclass so historical ``except ValueError`` /
    ``pytest.raises(ValueError)`` sites around ``run_scheme`` keep
    working; the message lists what *is* registered so a typo on the
    command line is self-diagnosing.
    """

    def __init__(self, name: str, known: Tuple[str, ...]) -> None:
        super().__init__(
            f"unknown scheme {name!r} (available: {', '.join(known)})")
        self.name = name
        self.known = known


class ResilienceScheme:
    """One protection scheme's descriptor (subclass per scheme).

    Class attributes describe the scheme; methods are the seam's hooks.
    The defaults suit a detect-and-recover pair scheme; override what
    differs. All imports of simulator/cost modules belong *inside* the
    hook bodies (see the module docstring).
    """

    #: registry key, CLI ``--scheme`` value, and ``RunResult.scheme`` tag
    name: str = ""
    #: may a fault-injection campaign target this scheme? (the
    #: unprotected baseline has no detectors to fire)
    protected: bool = True
    #: cores a scheme keeps busy per protected thread
    n_cores: int = 2
    #: one-line description for ``--help`` and the README table
    description: str = ""
    #: telemetry event tracks the scheme's system emits on (informational;
    #: the Chrome exporter derives actual rows from the event log)
    telemetry_tracks: Tuple[str, ...] = ()
    #: dotted prefix of the scheme's named metric counters
    metric_prefix: str = ""
    #: ``RunResult.extra`` keys summed into a trial's recovery-cycle
    #: charge. The default covers both historical conventions (UnSync
    #: charges ``recovery_cycles``, Reunion ``rollback_cycles``) with the
    #: exact arithmetic the trial runner always used, so fixed-seed
    #: campaign stores stay byte-identical across the port.
    recovery_extra_keys: Tuple[str, ...] = ("recovery_cycles",
                                            "rollback_cycles")

    # -- construction -------------------------------------------------------
    def build_system(self, program, config=None, **kwargs):
        """Build this scheme's system over ``program`` (must override).

        ``kwargs`` are forwarded to the system constructor (``injector``,
        ``detectors``, ``telemetry``, scheme-specific knobs ...). The
        returned object exposes ``run(max_cycles) -> RunResult``.
        """
        raise NotImplementedError

    # -- fault model --------------------------------------------------------
    def detectors(self) -> Dict:
        """Block-name -> :class:`~repro.faults.detection.Detector` map the
        scheme's system installs by default (empty = no detectors)."""
        return {}

    def uncore_blocks(self) -> Tuple:
        """Scheme-private uncore structures the adversarial fault model
        may strike (:class:`~repro.faults.injector.Block` tuple)."""
        return ()

    # -- snapshot/restore (differential replay) -----------------------------
    def snapshot(self, system, pool=None, ins_index=None):
        """Freeze a built system into a restorable
        :class:`~repro.checkpoint.snapshot.SystemSnapshot`.

        The default serializes the whole system object graph (see
        :mod:`repro.checkpoint.snapshot`); a scheme holding state that
        must not — or cannot — be pickled overrides this hook. Raises
        :class:`~repro.checkpoint.snapshot.SnapshotUnsupported` when the
        system cannot participate (callers fall back to full replay).
        """
        from repro.checkpoint.snapshot import capture_system
        return capture_system(system, system.program, pool=pool,
                              ins_index=ins_index)

    def restore(self, snapshot, program, injector=None):
        """Thaw an independent replica; optionally arm a live injector.

        ``program`` must be the program object the capture was bound to.
        With ``injector`` the replica is re-armed exactly as
        :meth:`build_system` would have armed it at cycle 0, so a
        restored-then-injected run is cycle-identical to a full injected
        run whose first strike lands at or after the snapshot epoch.
        """
        from repro.checkpoint.snapshot import restore_system
        system = restore_system(snapshot, program)
        if injector is not None:
            self.attach_injector(system, injector)
        return system

    def attach_injector(self, system, injector) -> None:
        """Re-arm a restored system with a fresh injector.

        Mirrors the schemes' construction-time arming: the injector is
        installed, its inventory adopted where the scheme keeps one, and
        the first strike drawn with ``now=0`` — the same RNG call
        sequence as an injected ``build_system``, which is what keeps a
        fast-forwarded trial's strike stream byte-identical to full
        replay. (Pipelines already run ``commit_replay="always"`` because
        the fault-free prefix is built with a rate-zero injector.)
        """
        system.injector = injector
        if hasattr(system, "inventory"):
            system.inventory = injector.inventory
        system._arm_next_strike(0)

    # -- accounting ---------------------------------------------------------
    def recovery_cycles(self, extra: Dict[str, float]) -> int:
        """Cycles a finished run spent recovering, from its ``extra``."""
        return int(sum(extra.get(key, 0) for key in self.recovery_extra_keys))

    def system_cost(self, tech=None):
        """Per-protected-thread silicon cost
        (:class:`~repro.hwcost.redundancy_cost.SchemeSystemCost`), or
        ``None`` when the scheme has no cost model."""
        return None


# -- registry ---------------------------------------------------------------
_REGISTRY: Dict[str, ResilienceScheme] = {}


def register(scheme: ResilienceScheme) -> ResilienceScheme:
    """Add ``scheme`` to the registry (last registration wins, so tests
    may shadow a builtin and restore it)."""
    if not scheme.name:
        raise ValueError("scheme descriptor needs a non-empty name")
    _REGISTRY[scheme.name] = scheme
    return scheme


def unregister(name: str) -> None:
    """Remove a scheme (test hygiene; unknown names are a no-op)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> ResilienceScheme:
    """The descriptor registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSchemeError(name, available()) from None


def available() -> Tuple[str, ...]:
    """All registered scheme names, in registration order."""
    return tuple(_REGISTRY)


def protected_schemes() -> Tuple[str, ...]:
    """Registered schemes a fault-injection campaign may target."""
    return tuple(name for name, s in _REGISTRY.items() if s.protected)
