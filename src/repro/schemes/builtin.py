"""The built-in scheme descriptors.

Each descriptor is a thin, import-light adapter from the
:class:`~repro.schemes.base.ResilienceScheme` seam onto the actual
simulator/cost modules; the heavy imports all live inside the hook
bodies so the registry itself stays cheap to import (campaign specs
resolve it at validation time).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.schemes.base import ResilienceScheme


class BaselineScheme(ResilienceScheme):
    """The unprotected single core — the figure-4/5/6 reference."""

    name = "baseline"
    protected = False
    n_cores = 1
    description = "unprotected single core + write buffer (no detection)"
    telemetry_tracks = ("core0.mem", "watchdog")
    metric_prefix = "baseline."
    recovery_extra_keys: Tuple[str, ...] = ()

    def build_system(self, program, config=None, **kwargs):
        from repro.redundancy.pair import BaselineSystem
        return BaselineSystem(program, config=config, **kwargs)

    def attach_injector(self, system, injector) -> None:
        raise ValueError(
            "the unprotected baseline takes no fault injection "
            "(snapshot/restore works; injector re-arming does not)")

    def system_cost(self, tech=None):
        from repro.hwcost.redundancy_cost import unprotected_cost
        from repro.hwcost.tech import TECH_65NM
        return unprotected_cost(tech or TECH_65NM)


class UnSyncScheme(ResilienceScheme):
    """The paper's architecture: un-synchronized pair, CB + EIH."""

    name = "unsync"
    protected = True
    n_cores = 2
    description = ("un-synchronized redundant pair: parity/DMR detectors, "
                   "CB store dedup, EIH always-forward recovery")
    telemetry_tracks = ("core0", "core1", "cb", "eih", "watchdog")
    metric_prefix = "unsync."

    def build_system(self, program, config=None, **kwargs):
        from repro.unsync.system import UnSyncSystem
        return UnSyncSystem(program, config=config, **kwargs)

    def detectors(self) -> Dict:
        from repro.faults.injector import UNSYNC_DETECTORS
        return dict(UNSYNC_DETECTORS)

    def uncore_blocks(self) -> Tuple:
        from repro.faults.adversarial import UNSYNC_UNCORE_BLOCKS
        return UNSYNC_UNCORE_BLOCKS

    def system_cost(self, tech=None):
        from repro.hwcost.redundancy_cost import unsync_pair_cost
        from repro.hwcost.tech import TECH_65NM
        return unsync_pair_cost(tech or TECH_65NM)


class ReunionScheme(ResilienceScheme):
    """The comparison baseline: fingerprint-compared vocal/mute pair."""

    name = "reunion"
    protected = True
    n_cores = 2
    description = ("fingerprint-compared vocal/mute pair: CRC-16 CHECK "
                   "stage, SECDED L1s, rollback recovery")
    telemetry_tracks = ("core0", "core1", "check", "watchdog")
    metric_prefix = "reunion."

    def build_system(self, program, config=None, **kwargs):
        from repro.reunion.system import ReunionSystem
        return ReunionSystem(program, config=config, **kwargs)

    def detectors(self) -> Dict:
        from repro.faults.injector import REUNION_DETECTORS
        return dict(REUNION_DETECTORS)

    def uncore_blocks(self) -> Tuple:
        from repro.faults.adversarial import REUNION_UNCORE_BLOCKS
        return REUNION_UNCORE_BLOCKS

    def system_cost(self, tech=None):
        from repro.hwcost.redundancy_cost import reunion_pair_cost
        from repro.hwcost.tech import TECH_65NM
        return reunion_pair_cost(tech or TECH_65NM)


class RepTFDScheme(ResilienceScheme):
    """Delayed-replay comparison against the leading core."""

    name = "reptfd"
    protected = True
    n_cores = 2
    description = ("delayed-replay pair: leader commit records compared "
                   "by a lagging trailer, full-value check, rollback "
                   "recovery")
    telemetry_tracks = ("core0", "core1", "replay", "watchdog")
    metric_prefix = "reptfd."

    def build_system(self, program, config=None, **kwargs):
        from repro.schemes.reptfd import RepTFDSystem
        return RepTFDSystem(program, config=config, **kwargs)

    def uncore_blocks(self) -> Tuple:
        from repro.schemes.reptfd import REPTFD_UNCORE_BLOCKS
        return REPTFD_UNCORE_BLOCKS

    def system_cost(self, tech=None):
        from repro.hwcost.redundancy_cost import reptfd_pair_cost
        from repro.hwcost.tech import TECH_65NM
        return reptfd_pair_cost(tech or TECH_65NM)


class MEEKScheme(ResilienceScheme):
    """Cheap in-order trailing checker core paired with the OoO leader."""

    name = "meek"
    protected = True
    n_cores = 2
    description = ("OoO leader + small in-order checker: bounded check "
                   "queue with stall-on-full backpressure, forwarded "
                   "loads (L1/TLB uncovered)")
    telemetry_tracks = ("core0", "checkq", "watchdog")
    metric_prefix = "meek."

    def build_system(self, program, config=None, **kwargs):
        from repro.schemes.meek import MEEKSystem
        return MEEKSystem(program, config=config, **kwargs)

    def uncore_blocks(self) -> Tuple:
        from repro.schemes.meek import MEEK_UNCORE_BLOCKS
        return MEEK_UNCORE_BLOCKS

    def system_cost(self, tech=None):
        from repro.hwcost.redundancy_cost import meek_pair_cost
        from repro.hwcost.tech import TECH_65NM
        return meek_pair_cost(tech or TECH_65NM)
