"""Analytical cache area/power model (the CACTI substitute).

Two layers:

* a **physical** layer — SRAM cells x bits x periphery — calibrated so the
  unprotected 32 KB L1 lands on Table II's 0.1934 mm² / 38.35 mW at
  300 MHz;
* a **protection** layer applying the paper's published deltas: 1-bit
  parity per 256-bit line -> +0.26% area, +0.26% power; SECDED (8 check
  bits per 64-bit chunk plus codec) -> +7.86% area, +9.91% power
  (Sec VI-A-1: "SECDED ... 22% cache area" refers to the data-array-only
  worst case from [24]; the net cache-level numbers in Table II are the
  7.85%/10% the model uses).

The physical layer also exposes the raw bit accounting so tests can check
that the direction and rough magnitude of every delta follows from the
geometry, not just from the pasted ratios.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hwcost.tech import TECH_65NM, TechNode


class Protection(enum.Enum):
    NONE = "none"
    PARITY = "parity"
    SECDED = "secded"


#: paper-derived protection multipliers (Table II ratios)
_AREA_FACTOR = {
    Protection.NONE: 1.0,
    Protection.PARITY: 0.1939 / 0.1934,   # +0.26%
    Protection.SECDED: 0.2086 / 0.1934,   # +7.86%
}
_POWER_FACTOR = {
    Protection.NONE: 1.0,
    Protection.PARITY: 38.45 / 38.35,     # +0.26%
    Protection.SECDED: 42.15 / 38.35,     # +9.91%
}

#: calibration of the physical layer against Table II's baseline L1
_PERIPHERY_FACTOR = 0.3524     # decoders, sense amps, wordline drivers
_ACCESS_ENERGY_J = 100e-12     # dynamic energy per access
_LEAKAGE_W = 8.35e-3           # static power of the 32 KB array


@dataclass(frozen=True)
class CacheModel:
    """One cache instance for costing purposes."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    tag_bits_per_line: int = 20
    tech: TechNode = TECH_65NM

    # -- bit accounting ----------------------------------------------------
    @property
    def data_bits(self) -> int:
        return self.size_bytes * 8

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def tag_bits(self) -> int:
        return self.n_lines * self.tag_bits_per_line

    def protection_bits(self, protection: Protection) -> int:
        """Extra storage bits the protection scheme adds."""
        if protection is Protection.PARITY:
            # 1 parity bit per cache line (Sec VI-A-1: "1 parity bit for a
            # 256 bit cache-line" — per line-segment; one per line here,
            # the coarsest variant the paper quotes area for)
            return self.n_lines
        if protection is Protection.SECDED:
            # (72, 64) Hamming: 8 check bits per 64 data bits
            return self.data_bits // 64 * 8
        return 0

    # -- physical layer ----------------------------------------------------
    def area_mm2(self, protection: Protection = Protection.NONE) -> float:
        """Cache area in mm² (protection applied as the paper's net ratio)."""
        base_bits = self.data_bits + self.tag_bits
        base_um2 = base_bits * self.tech.sram_cell_um2 * (1 + _PERIPHERY_FACTOR)
        return base_um2 * _AREA_FACTOR[protection] / 1e6

    def power_w(self, protection: Protection = Protection.NONE,
                accesses_per_second: float = None) -> float:
        """Cache power in W at the synthesis frequency (one access/cycle
        unless ``accesses_per_second`` is given)."""
        if accesses_per_second is None:
            accesses_per_second = self.tech.frequency_hz
        scale = self.size_bytes / (32 * 1024)  # leakage scales with size
        base = _ACCESS_ENERGY_J * accesses_per_second + _LEAKAGE_W * scale
        return base * _POWER_FACTOR[protection]

    # -- geometry sanity (used by tests) --------------------------------------
    def raw_area_delta_fraction(self, protection: Protection) -> float:
        """Pure bit-count area increase (no codec, no ratio shortcut)."""
        base = self.data_bits + self.tag_bits
        return self.protection_bits(protection) / base
