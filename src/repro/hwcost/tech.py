"""Technology-node parameters.

Only what the cost model needs: a NAND2-equivalent gate area, an SRAM
cell area, and the synthesis frequency. 65 nm matches the paper's
synthesis runs; 90 nm exists for the Table III processors fabricated at
that node (die projection scales per-core overheads, so only relative
numbers matter there).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechNode:
    name: str
    feature_nm: int
    #: area of one NAND2-equivalent gate, µm²
    gate_area_um2: float
    #: area of one 6T SRAM cell, µm²
    sram_cell_um2: float
    #: synthesis clock
    frequency_hz: float
    #: nominal placement density after PNR (paper: 0.49)
    pnr_density: float = 0.49


#: The paper's synthesis corner: 65 nm, 300 MHz, density 0.49.
TECH_65NM = TechNode(name="65nm", feature_nm=65, gate_area_um2=1.8,
                     sram_cell_um2=0.525, frequency_hz=300e6)

TECH_90NM = TechNode(name="90nm", feature_nm=90, gate_area_um2=3.2,
                     sram_cell_um2=1.0, frequency_hz=300e6)
