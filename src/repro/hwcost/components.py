"""Component library: every block the Table II roll-up charges.

Anchors published by the paper (Sec IV, VI-A) — each constant cites where
it comes from:

=====================  =========  ==========================================
constant               value      source
=====================  =========  ==========================================
REGFILE_CELL_UM2       7.80       Sec IV-3: register-file cell area
CSB_CELL_UM2           10.40      Sec IV-3: CSB cell, 1.3x RF cell (3rd
                                  read port)
CRC_GATES              238        Sec IV-2, citing Albertengo & Sisto
CHECK_STAGE_AREA_UM2   45447      Table II: Reunion core - MIPS core
EXECUTE_FRACTION       0.615      derived: CHECK = 75% of Execute area
                                  (Sec IV-1) => Execute = 45447/0.75
UNSYNC_DETECT_FRACT    0.176      Sec VI-A-1: "17.6% increased core-area"
MIPS_CORE_AREA_UM2     98558      Table II
MIPS_CORE_POWER_W      1.153      Table II
CHECK_POWER_FRACT      0.768      Sec VI-A-1: CHECK consumes 76.8% more
                                  core power
UNSYNC_DETECT_POWER    0.418      Sec VI-A-1: detection blocks ~42% (the
                                  exact ratio 1.635/1.153 - 1)
=====================  =========  ==========================================

The CB cell follows the port-count scaling the paper itself establishes:
the CSB cell is 1.3x an RF cell because of one extra read port, i.e.
~2.60 µm² per port beyond a 2-port baseline of 5.20 µm²; the CB is a plain
one-read one-write FIFO, so its cell is ~5.87 µm²/bit — which lands within
1% of Table II's 0.00387 mm² for 10 x 66-bit entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwcost.tech import TECH_65NM, TechNode

# --- published anchors (see table above) ---
REGFILE_CELL_UM2 = 7.80
CSB_CELL_UM2 = 10.40
CRC_GATES = 238
CHECK_STAGE_AREA_UM2 = 45447.0
MIPS_CORE_AREA_UM2 = 98558.0
MIPS_CORE_POWER_W = 1.153
EXECUTE_FRACTION = CHECK_STAGE_AREA_UM2 / 0.75 / MIPS_CORE_AREA_UM2
UNSYNC_DETECT_FRACTION = 0.176
CHECK_POWER_FRACTION = 0.768
UNSYNC_DETECT_POWER_FRACTION = 0.418

#: per-read-port increment of an array cell, derived from the paper's own
#: RF (3-port, 7.80) vs CSB (4-port, 10.40) data point.
PORT_INCREMENT_UM2 = CSB_CELL_UM2 - REGFILE_CELL_UM2
#: 2-port (1R1W) FIFO cell, by the same scaling.
FIFO_CELL_UM2 = REGFILE_CELL_UM2 - PORT_INCREMENT_UM2 * 0.75  # ~5.85

#: CSB entry width in bits (Sec IV-3) — shared with repro.reunion.csb.
CSB_ENTRY_BITS = 66
#: CB entry width: 32b address + 32b data + 2b tag/valid.
CB_ENTRY_BITS = 66


@dataclass(frozen=True)
class Component:
    """One synthesized block."""

    name: str
    area_um2: float
    power_w: float

    def scaled(self, factor: float) -> "Component":
        return Component(self.name, self.area_um2 * factor,
                         self.power_w * factor)


def mips_core(tech: TechNode = TECH_65NM) -> Component:
    """The baseline 5-stage MIPS core after PNR (Table II column 1)."""
    return Component("mips_core", MIPS_CORE_AREA_UM2, MIPS_CORE_POWER_W)


def crc_generator(tech: TechNode = TECH_65NM) -> Component:
    """Reunion's 2-stage parallel CRC-16 block: 238 gates.

    Power: the CRC sits mid-critical-path and toggles every cycle; charge
    it like any active combinational block of its size (proportional to
    the core's power density).
    """
    area = CRC_GATES * tech.gate_area_um2
    power = MIPS_CORE_POWER_W * (area / MIPS_CORE_AREA_UM2)
    return Component("crc_generator", area, power)


def csb_array(entries: int = 17, entry_bits: int = CSB_ENTRY_BITS) -> Component:
    """CHECK-stage buffer: 1W + 3R ported array at 10.40 µm²/bit.

    The paper's sanity check: at FI=50 the CSB alone reaches 39,125 µm² —
    91% of the whole MIPS core — which this function reproduces (tests
    pin it).
    """
    if entries <= 0:
        raise ValueError("CSB needs entries")
    area = entries * entry_bits * CSB_CELL_UM2
    # array structures burn power on every access; charge at 1.5x the
    # core's average power density (multi-ported arrays are power-hungry)
    power = MIPS_CORE_POWER_W * 1.5 * (area / MIPS_CORE_AREA_UM2)
    return Component("csb", area, power)


def cb_array(entries: int = 10, entry_bits: int = CB_ENTRY_BITS) -> Component:
    """UnSync's Communication Buffer: a plain 1R1W FIFO.

    Table II anchors: 0.00387 mm² and 0.77258 mW at 10 entries.
    """
    if entries <= 0:
        raise ValueError("CB needs entries")
    area = entries * entry_bits * FIFO_CELL_UM2
    # Table II: 0.77258 mW at 3,870 µm² -> ~0.2 µW/µm² at the CB's low
    # access rate (one push per store retirement, one drain per L2 write)
    power = 0.77258e-3 * (area / 3870.0)
    return Component("cb", area, power)


def forwarding_datapath() -> Component:
    """Reunion's register-forwarding logic + CSB<->pipeline datapaths.

    The residue of the CHECK stage once CSB and CRC are carved out; the
    paper attributes 34% extra metal wiring and the resulting load
    capacitance to it (Sec IV-4).
    """
    csb = csb_array()
    crc = crc_generator()
    area = CHECK_STAGE_AREA_UM2 - csb.area_um2 - crc.area_um2
    # the datapaths toggle every cycle and drive long wires: they carry
    # the rest of the CHECK stage's 76.8% core-power increment.
    total_check_power = MIPS_CORE_POWER_W * CHECK_POWER_FRACTION
    power = total_check_power - csb.power_w - crc.power_w
    return Component("forwarding_datapath", area, power)


def unsync_detection_blocks() -> Component:
    """UnSync's per-core detectors: DMR on per-cycle latches + parity
    trees on storage arrays (Sec III-B-1): 17.6% core area, ~42% core
    power (DMR duplicates the clocked elements, which dominate dynamic
    power; parity itself is the negligible 0.2%)."""
    area = MIPS_CORE_AREA_UM2 * UNSYNC_DETECT_FRACTION
    power = MIPS_CORE_POWER_W * UNSYNC_DETECT_POWER_FRACTION
    return Component("unsync_detection", area, power)
