"""Core-level synthesis roll-up: Table II.

Assembles the component library and the cache model into the paper's
three configurations — baseline MIPS, Reunion, UnSync — and reproduces
Table II's area/power accounting (core, L1, CB, totals, overhead %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hwcost.cacti import CacheModel, Protection
from repro.hwcost.components import (
    Component, cb_array, crc_generator, csb_array, forwarding_datapath,
    mips_core, unsync_detection_blocks,
)
from repro.hwcost.tech import TECH_65NM, TechNode
from repro.reunion.csb import csb_entries_for


@dataclass
class CoreCosts:
    """One column of Table II."""

    name: str
    core_area_um2: float
    l1_area_mm2: float
    cb_area_mm2: Optional[float]
    core_power_w: float
    l1_power_mw: float
    cb_power_mw: Optional[float]
    components: List[Component] = field(default_factory=list)

    @property
    def total_area_um2(self) -> float:
        total = self.core_area_um2 + self.l1_area_mm2 * 1e6
        if self.cb_area_mm2:
            total += self.cb_area_mm2 * 1e6
        return total

    @property
    def total_power_w(self) -> float:
        total = self.core_power_w + self.l1_power_mw / 1e3
        if self.cb_power_mw:
            total += self.cb_power_mw / 1e3
        return total

    def area_overhead_vs(self, base: "CoreCosts") -> float:
        return self.total_area_um2 / base.total_area_um2 - 1.0

    def power_overhead_vs(self, base: "CoreCosts") -> float:
        return self.total_power_w / base.total_power_w - 1.0


def synthesize(scheme: str,
               tech: TechNode = TECH_65NM,
               fingerprint_interval: int = 10,
               comparison_latency: int = 6,
               cb_entries: int = 10,
               l1: Optional[CacheModel] = None) -> CoreCosts:
    """Cost one core configuration.

    ``scheme``: ``"mips"`` (baseline), ``"reunion"``, or ``"unsync"``.
    Reunion's CSB is sized with the paper's rule
    (:func:`repro.reunion.csb.csb_entries_for`: FI + latency + 1 = 17 at
    the FI=10 / 6-cycle synthesis point).
    """
    l1 = l1 or CacheModel(tech=tech)
    base = mips_core(tech)
    if scheme == "mips":
        return CoreCosts(
            name="Basic MIPS",
            core_area_um2=base.area_um2,
            l1_area_mm2=l1.area_mm2(Protection.NONE),
            cb_area_mm2=None,
            core_power_w=base.power_w,
            l1_power_mw=l1.power_w(Protection.NONE) * 1e3,
            cb_power_mw=None,
            components=[base],
        )
    if scheme == "reunion":
        entries = csb_entries_for(fingerprint_interval, comparison_latency)
        csb = csb_array(entries=entries)
        crc = crc_generator(tech)
        fwd = forwarding_datapath()
        parts = [base, csb, crc, fwd]
        return CoreCosts(
            name="Reunion",
            core_area_um2=sum(c.area_um2 for c in parts),
            l1_area_mm2=l1.area_mm2(Protection.SECDED),
            cb_area_mm2=None,
            core_power_w=sum(c.power_w for c in parts),
            l1_power_mw=l1.power_w(Protection.SECDED) * 1e3,
            cb_power_mw=None,
            components=parts,
        )
    if scheme == "unsync":
        detect = unsync_detection_blocks()
        cb = cb_array(entries=cb_entries)
        parts = [base, detect]
        return CoreCosts(
            name="UnSync",
            core_area_um2=sum(c.area_um2 for c in parts),
            l1_area_mm2=l1.area_mm2(Protection.PARITY),
            cb_area_mm2=cb.area_um2 / 1e6,
            core_power_w=sum(c.power_w for c in parts),
            l1_power_mw=l1.power_w(Protection.PARITY) * 1e3,
            cb_power_mw=cb.power_w * 1e3,
            components=parts + [cb],
        )
    raise ValueError(f"unknown scheme {scheme!r}")


@dataclass
class SynthesisReport:
    """All three Table II columns plus the derived overhead rows."""

    mips: CoreCosts
    reunion: CoreCosts
    unsync: CoreCosts

    def rows(self) -> Dict[str, List[str]]:
        """Table II, formatted like the paper (strings, same units)."""
        def fmt_area(c: CoreCosts):
            return [f"{c.core_area_um2:.0f}",
                    f"{c.l1_area_mm2:.4f}",
                    f"{c.cb_area_mm2:.5f}" if c.cb_area_mm2 else "N/A",
                    f"{c.total_area_um2:.0f}"]

        def fmt_power(c: CoreCosts):
            return [f"{c.core_power_w:.3f}",
                    f"{c.l1_power_mw:.2f}",
                    f"{c.cb_power_mw:.5f}" if c.cb_power_mw else "N/A",
                    f"{c.total_power_w:.2f}"]

        cols = [self.mips, self.reunion, self.unsync]
        return {
            "Core (um2)": [fmt_area(c)[0] for c in cols],
            "L1 Cache (mm2)": [fmt_area(c)[1] for c in cols],
            "CB (mm2)": [fmt_area(c)[2] for c in cols],
            "Total Area (um2)": [fmt_area(c)[3] for c in cols],
            "Area Overhead (%)": ["N/A",
                                  f"{100 * self.reunion.area_overhead_vs(self.mips):.2f}",
                                  f"{100 * self.unsync.area_overhead_vs(self.mips):.2f}"],
            "Core (W)": [fmt_power(c)[0] for c in cols],
            "L1 Cache (mW)": [fmt_power(c)[1] for c in cols],
            "CB (mW)": [fmt_power(c)[2] for c in cols],
            "Total Power (W)": [fmt_power(c)[3] for c in cols],
            "Power Overhead (%)": ["N/A",
                                   f"{100 * self.reunion.power_overhead_vs(self.mips):.2f}",
                                   f"{100 * self.unsync.power_overhead_vs(self.mips):.2f}"],
        }


def table2(tech: TechNode = TECH_65NM) -> SynthesisReport:
    """The paper's exact synthesis point: 65 nm, 300 MHz, FI=10, CSB=17
    entries x 66 bits, CB=10 entries."""
    return SynthesisReport(
        mips=synthesize("mips", tech),
        reunion=synthesize("reunion", tech),
        unsync=synthesize("unsync", tech),
    )
