"""System-level cost of redundancy schemes, per protected thread.

Table II compares *single cores*; a designer choosing a scheme pays for
the whole replica group. This extension rolls Table II up to the
per-protected-thread level and adds the TMR comparator the paper cites
(detection + correction by majority vote at ~200% overhead):

* UnSync pair   = 2 x (UnSync core + parity L1) + 2 CBs
* Reunion pair  = 2 x (Reunion core + SECDED L1)
* TMR triple    = 3 x (plain MIPS core + L1) + 3 CBs + voter
* RepTFD pair   = 2 x (plain MIPS core) + replay queue + comparator
* MEEK pair     = OoO leader + small in-order checker + check queue
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hwcost.components import (
    MIPS_CORE_AREA_UM2, MIPS_CORE_POWER_W, cb_array,
)
from repro.hwcost.synthesis import CoreCosts, synthesize
from repro.hwcost.tech import TECH_65NM, TechNode

#: majority voter: ~3 gates per voted bit over a 66-bit store entry,
#: plus control — small change compared to a core.
VOTER_GATES = 3 * 66 + 40

#: RepTFD replay-queue entry: pc + result + address + value + tags.
REPLAY_ENTRY_BITS = 130

#: MEEK check-queue entry: forwarded operands/result + tags.
CHECK_ENTRY_BITS = 100

#: full-value comparator across one replay record (one XOR-reduce tree
#: per compared field plus control).
COMPARATOR_GATES = 2 * REPLAY_ENTRY_BITS + 40

#: MEEK's in-order checker core relative to the OoO leader: no rename,
#: no issue queue, no speculation — an order of magnitude simpler
#: control, dominated by the datapath and its shadow register file.
CHECKER_CORE_FRACTION = 0.3


@dataclass
class SchemeSystemCost:
    """Total silicon for one protected thread under one scheme."""

    scheme: str
    n_cores: int
    total_area_um2: float
    total_power_w: float
    #: does the scheme correct (not just detect) without pair recovery?
    self_correcting: bool

    def area_vs(self, other: "SchemeSystemCost") -> float:
        return self.total_area_um2 / other.total_area_um2 - 1.0

    def power_vs(self, other: "SchemeSystemCost") -> float:
        return self.total_power_w / other.total_power_w - 1.0


def unprotected_cost(tech: TechNode = TECH_65NM) -> SchemeSystemCost:
    c = synthesize("mips", tech)
    return SchemeSystemCost("unprotected", 1, c.total_area_um2,
                            c.total_power_w, self_correcting=False)


def unsync_pair_cost(tech: TechNode = TECH_65NM,
                     cb_entries: int = 10) -> SchemeSystemCost:
    c = synthesize("unsync", tech, cb_entries=cb_entries)
    return SchemeSystemCost("unsync", 2, 2 * c.total_area_um2,
                            2 * c.total_power_w, self_correcting=False)


def reunion_pair_cost(tech: TechNode = TECH_65NM,
                      fingerprint_interval: int = 10) -> SchemeSystemCost:
    c = synthesize("reunion", tech,
                   fingerprint_interval=fingerprint_interval)
    return SchemeSystemCost("reunion", 2, 2 * c.total_area_um2,
                            2 * c.total_power_w, self_correcting=False)


def tmr_triple_cost(tech: TechNode = TECH_65NM,
                    cb_entries: int = 10) -> SchemeSystemCost:
    base = synthesize("mips", tech)
    cb = cb_array(cb_entries)
    voter_area = VOTER_GATES * tech.gate_area_um2
    voter_power = MIPS_CORE_POWER_W * (voter_area / MIPS_CORE_AREA_UM2)
    area = 3 * (base.total_area_um2 + cb.area_um2) + voter_area
    power = 3 * (base.total_power_w + cb.power_w) + voter_power
    return SchemeSystemCost("tmr", 3, area, power, self_correcting=True)


def reptfd_pair_cost(tech: TechNode = TECH_65NM,
                     queue_entries: int = 96) -> SchemeSystemCost:
    """Two *plain* MIPS cores (no detectors, no CHECK stage) plus the
    replay queue and the full-value comparator — RepTFD's silicon story
    is that all the detection hardware is one FIFO and one comparator."""
    base = synthesize("mips", tech)
    queue = cb_array(queue_entries, entry_bits=REPLAY_ENTRY_BITS)
    cmp_area = COMPARATOR_GATES * tech.gate_area_um2
    cmp_power = MIPS_CORE_POWER_W * (cmp_area / MIPS_CORE_AREA_UM2)
    area = 2 * base.total_area_um2 + queue.area_um2 + cmp_area
    power = 2 * base.total_power_w + queue.power_w + cmp_power
    return SchemeSystemCost("reptfd", 2, area, power, self_correcting=False)


def meek_pair_cost(tech: TechNode = TECH_65NM,
                   queue_entries: int = 64) -> SchemeSystemCost:
    """One OoO leader plus the small in-order checker core plus the
    check queue — the sub-2x replication point none of the pair schemes
    can reach."""
    base = synthesize("mips", tech)
    queue = cb_array(queue_entries, entry_bits=CHECK_ENTRY_BITS)
    checker_area = base.total_area_um2 * CHECKER_CORE_FRACTION
    checker_power = base.total_power_w * CHECKER_CORE_FRACTION
    area = base.total_area_um2 + checker_area + queue.area_um2
    power = base.total_power_w + checker_power + queue.power_w
    return SchemeSystemCost("meek", 2, area, power, self_correcting=False)


def redundancy_comparison(tech: TechNode = TECH_65NM) -> List[SchemeSystemCost]:
    """Every costed option, per protected thread."""
    return [unprotected_cost(tech), unsync_pair_cost(tech),
            reunion_pair_cost(tech), tmr_triple_cost(tech),
            reptfd_pair_cost(tech), meek_pair_cost(tech)]
