"""Table III: projected die sizes of existing many-core processors.

The paper scales the per-core area overhead (CAO) of each scheme onto
three real chips: the increase in area is ``CA_inc = n x CA x CAO`` and
the projected die area ``DA = CA_inc + DA_orig``. The final row —
``DA_Reunion - DA_UnSync`` — is the design-time figure of merit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hwcost.synthesis import SynthesisReport, table2


@dataclass(frozen=True)
class ManyCore:
    """One row-target of Table III."""

    name: str
    node_nm: int
    n_cores: int
    per_core_area_mm2: float
    die_area_mm2: float


#: The three processors of Table III (die data from [37]-[40]).
TABLE3_PROCESSORS = (
    ManyCore("Intel Polaris", 65, 80, 2.5, 275.0),
    ManyCore("Tilera Tile64", 90, 64, 3.6, 330.0),
    ManyCore("NVIDIA GeForce", 90, 128, 3.0, 470.0),
)


@dataclass
class DieProjection:
    """Projected die areas of one processor under both schemes."""

    processor: ManyCore
    reunion_die_mm2: float
    unsync_die_mm2: float

    @property
    def difference_mm2(self) -> float:
        """The paper's decision metric: DA_Reunion - DA_UnSync."""
        return self.reunion_die_mm2 - self.unsync_die_mm2


def project_die(processor: ManyCore,
                reunion_cao: Optional[float] = None,
                unsync_cao: Optional[float] = None,
                report: Optional[SynthesisReport] = None) -> DieProjection:
    """Project ``processor``'s die under Reunion and UnSync.

    Core-area-overhead factors default to the Table II synthesis result
    (0.2077 and 0.0745 in the paper).
    """
    if reunion_cao is None or unsync_cao is None:
        report = report or table2()
        if reunion_cao is None:
            reunion_cao = report.reunion.area_overhead_vs(report.mips)
        if unsync_cao is None:
            unsync_cao = report.unsync.area_overhead_vs(report.mips)
    p = processor
    core_total = p.n_cores * p.per_core_area_mm2
    return DieProjection(
        processor=p,
        reunion_die_mm2=core_total * reunion_cao + p.die_area_mm2,
        unsync_die_mm2=core_total * unsync_cao + p.die_area_mm2,
    )


def table3(report: Optional[SynthesisReport] = None) -> List[DieProjection]:
    """All three Table III projections."""
    report = report or table2()
    return [project_die(p, report=report) for p in TABLE3_PROCESSORS]
