"""Hardware cost model — the Cadence Encounter + CACTI substitute.

The paper's Table II comes from RTL synthesis of a MIPS core at 65 nm /
300 MHz plus CACTI for the caches. We have no EDA tools, but the paper
publishes enough per-component anchors to rebuild its accounting:

* register-file cell 7.80 µm²/bit; CSB cell 10.40 µm²/bit (one extra read
  port); CRC generator 238 gates; CHECK stage = 75% of Execute-stage area
  and 45,447 µm² total; UnSync detection = 17.6% of core area; SECDED =
  +7.85% cache area / +10% cache power; parity = +0.2% area / +0.26%
  power; DMR ≈ 6% power per protected element but ≈ 42% at core level
  once all per-cycle latches are duplicated.

:mod:`repro.hwcost.components` encodes these anchors as a component
library; :mod:`repro.hwcost.cacti` is an analytical cache model calibrated
to the paper's L1 numbers; :mod:`repro.hwcost.synthesis` rolls everything
up into Table II; :mod:`repro.hwcost.die` projects Table III's many-core
die sizes. DESIGN.md records that the roll-up arithmetic reproduces the
paper's own accounting rather than independent synthesis.
"""

from repro.hwcost.tech import TechNode, TECH_65NM, TECH_90NM
from repro.hwcost.components import (
    Component, crc_generator, csb_array, cb_array, forwarding_datapath,
    unsync_detection_blocks, mips_core, REGFILE_CELL_UM2, CSB_CELL_UM2,
)
from repro.hwcost.cacti import CacheModel, Protection
from repro.hwcost.synthesis import (
    CoreCosts, synthesize, SynthesisReport, table2,
)
from repro.hwcost.die import DieProjection, project_die, TABLE3_PROCESSORS

__all__ = [
    "TechNode", "TECH_65NM", "TECH_90NM",
    "Component", "crc_generator", "csb_array", "cb_array",
    "forwarding_datapath", "unsync_detection_blocks", "mips_core",
    "REGFILE_CELL_UM2", "CSB_CELL_UM2",
    "CacheModel", "Protection",
    "CoreCosts", "synthesize", "SynthesisReport", "table2",
    "DieProjection", "project_die", "TABLE3_PROCESSORS",
]
