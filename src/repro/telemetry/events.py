"""Structured simulation event log.

Events are typed (module-level name constants below), timestamped in
simulation cycles, and carry a *track* — the hardware structure they
belong to (``core0``, ``cb``, ``eih``, ``check``, ``core1.mem`` ...).
One track maps to one row in the Chrome trace viewer, so a recovery
episode reads as a flame-style timeline across the core / CB / EIH rows.

Emission rules that keep exports valid:

* events on one track must be emitted in non-decreasing ``ts`` order
  (the Chrome exporter asserts this via ``validate_chrome``). Systems
  achieve it by emitting at the *current* cycle and putting any future
  completion time in ``args``;
* a span (``dur is not None``) covers ``[ts, ts + dur)``;
* the log is bounded: past ``limit`` events, new emissions are counted in
  ``dropped`` instead of stored, so a pathological run cannot eat the
  heap.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional

# -- typed event names ------------------------------------------------------
FAULT_INJECTED = "fault.injected"     #: a strike landed on a block
FAULT_DETECTED = "fault.detected"     #: a detector fired (or corrected)
FAULT_SDC = "fault.sdc"               #: a strike escaped detection
FAULT_MULTIBIT = "fault.multibit"     #: a multi-bit cluster strike landed
FAULT_DUE = "fault.due"               #: detected but unrecoverable
EIH_INTERRUPT = "eih.interrupt"       #: EIH begins pair-wide recovery
EIH_RECOVERY = "eih.recovery"         #: span: the full recovery episode
CB_GATE = "cb.gate"                   #: span: commit stalled on a full CB
CB_DRAIN = "cb.drain"                 #: CB entries drained to the L2
FP_COMPARE = "fingerprint.compare"    #: a fingerprint pair was compared
FP_MISMATCH = "fingerprint.mismatch"  #: the comparison failed
ROLLBACK = "rollback"                 #: span: Reunion rollback episode
CSB_GATE = "csb.gate"                 #: span: execute stalled on a full CSB
MEM_MISS_BURST = "mem.miss_burst"     #: span: a dense run of L1/TLB misses
RECOVERY_REENTRY = "recovery.reentry"  #: a strike landed mid-recovery
RECOVERY_ABORT = "recovery.abort"     #: recovery aborted and restarted
WATCHDOG_TRIP = "watchdog.trip"       #: the cycle-budget watchdog fired
REPLAY_COMPARE = "replay.compare"     #: a delayed-replay mismatch landed
REPLAY_GATE = "replay.gate"           #: span: commit stalled, replay Q full
CHECKQ_GATE = "checkq.gate"           #: span: commit stalled, check Q full
CHECKQ_DRAIN = "checkq.drain"         #: checker verified a queue batch

EVENT_NAMES = (
    FAULT_INJECTED, FAULT_DETECTED, FAULT_SDC, FAULT_MULTIBIT, FAULT_DUE,
    EIH_INTERRUPT, EIH_RECOVERY, CB_GATE, CB_DRAIN, FP_COMPARE, FP_MISMATCH,
    ROLLBACK, CSB_GATE, MEM_MISS_BURST, RECOVERY_REENTRY, RECOVERY_ABORT,
    WATCHDOG_TRIP, REPLAY_COMPARE, REPLAY_GATE, CHECKQ_GATE, CHECKQ_DRAIN,
)


class Event:
    """One timestamped occurrence on one track."""

    __slots__ = ("name", "ts", "track", "dur", "args")

    def __init__(self, name: str, ts: int, track: str,
                 dur: Optional[int] = None,
                 args: Optional[Dict] = None) -> None:
        self.name = name
        self.ts = ts
        self.track = track
        self.dur = dur
        self.args = args

    def to_dict(self) -> Dict:
        d: Dict = {"name": self.name, "ts": self.ts, "track": self.track}
        if self.dur is not None:
            d["dur"] = self.dur
        if self.args:
            d["args"] = self.args
        return d

    def __repr__(self) -> str:  # pragma: no cover
        dur = f" dur={self.dur}" if self.dur is not None else ""
        return f"<Event {self.name} @{self.ts} [{self.track}]{dur}>"


class EventLog:
    """Bounded in-memory event buffer."""

    def __init__(self, limit: int = 200_000) -> None:
        if limit <= 0:
            raise ValueError("event log limit must be positive")
        self.limit = limit
        self._events: List[Event] = []
        self.dropped = 0

    def emit(self, name: str, ts: int, track: str,
             dur: Optional[int] = None,
             args: Optional[Dict] = None) -> None:
        if len(self._events) >= self.limit:
            self.dropped += 1
            return
        self._events.append(Event(name, ts, track, dur, args))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def tracks(self) -> List[str]:
        """Track names in first-emission order."""
        seen: Dict[str, None] = {}
        for e in self._events:
            if e.track not in seen:
                seen[e.track] = None
        return list(seen)

    def by_name(self, name: str) -> List[Event]:
        return [e for e in self._events if e.name == name]

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for e in self._events:
                fh.write(json.dumps(e.to_dict(), sort_keys=True) + "\n")
