"""Summarisation backend of ``repro metrics summarize``.

Two input shapes, auto-detected:

* a **metrics snapshot** JSON (written by ``repro trace run --metrics``
  or ``MetricsRegistry.snapshot()``): counters/gauges/histograms for one
  run;
* a **campaign store** JSONL (``repro campaign run --store``): the
  per-trial integral metric rollups are summed per cell and in total.

Both reduce to one dict shape so the CLI renders them uniformly.
"""

from __future__ import annotations

import json
from typing import Dict


def _is_snapshot(doc: Dict) -> bool:
    return isinstance(doc, dict) and "counters" in doc


def summarize_snapshot(doc: Dict) -> Dict:
    """Normalise one run's metrics snapshot."""
    hists = {
        name: {"count": h.get("count", 0), "mean": h.get("mean", 0.0)}
        for name, h in sorted(doc.get("histograms", {}).items())}
    return {
        "kind": "snapshot",
        "counters": dict(sorted(doc.get("counters", {}).items())),
        "gauges": dict(sorted(doc.get("gauges", {}).items())),
        "histograms": hists,
    }


def summarize_store(path: str) -> Dict:
    """Sum the per-trial metric rollups of a campaign store per cell.

    Only integral counters ever enter trial records (see
    ``campaign.trial``), so sums are exact and order-independent.
    """
    from repro.campaign.store import ResultStore

    store = ResultStore(path)
    cells: Dict[str, Dict[str, int]] = {}
    trials: Dict[str, int] = {}
    totals: Dict[str, int] = {}
    n = 0
    for record in store.iter_trials():
        n += 1
        cell = record["cell"]
        trials[cell] = trials.get(cell, 0) + 1
        per_cell = cells.setdefault(cell, {})
        for name, value in record.get("metrics", {}).items():
            value = int(value)
            per_cell[name] = per_cell.get(name, 0) + value
            totals[name] = totals.get(name, 0) + value
    return {
        "kind": "campaign",
        "trials": n,
        "cells": {c: {"trials": trials[c],
                      "metrics": dict(sorted(m.items()))}
                  for c, m in sorted(cells.items())},
        "totals": dict(sorted(totals.items())),
    }


def summarize_path(path: str) -> Dict:
    """Auto-detect the input shape and summarise."""
    if path.endswith(".jsonl"):
        return summarize_store(path)
    with open(path) as fh:
        first = fh.read(1)
        fh.seek(0)
        if first == "{":
            try:
                doc = json.load(fh)
            except json.JSONDecodeError:
                doc = None
            if doc is not None and _is_snapshot(doc):
                return summarize_snapshot(doc)
    # fall back: treat as a JSONL store regardless of extension
    return summarize_store(path)
