"""Chrome trace-event JSON export (Perfetto / chrome://tracing).

The export uses the JSON-object flavour of the trace-event format: a
top-level ``traceEvents`` array plus free-form metadata keys. Each
telemetry track becomes one "thread" (``tid``), named via ``ph: "M"``
``thread_name`` metadata, so the viewer shows one row per hardware
structure. Spans map to complete events (``ph: "X"``, ``ts`` + ``dur``),
instants to ``ph: "i"`` with thread scope.

Simulation cycles are written 1:1 as trace microseconds (the viewer's
native unit), so 1 us on screen == 1 simulated cycle.

``validate_chrome`` is the acceptance check: parseable, structurally
sound, and per-track monotonic timestamps — the invariant the emission
rules in :mod:`repro.telemetry.events` exist to uphold.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Union

from repro.telemetry.events import Event

#: single simulated process id in the trace
PID = 1


def to_chrome(events: Iterable[Event]) -> Dict:
    """Convert an event stream to a Chrome trace-event JSON object."""
    trace: List[Dict] = []
    tids: Dict[str, int] = {}
    for e in events:
        tid = tids.get(e.track)
        if tid is None:
            tid = tids[e.track] = len(tids)
            trace.append({"ph": "M", "name": "thread_name", "pid": PID,
                          "tid": tid, "args": {"name": e.track}})
        rec: Dict = {"name": e.name, "cat": e.name.split(".", 1)[0],
                     "pid": PID, "tid": tid, "ts": float(e.ts)}
        if e.dur is not None:
            rec["ph"] = "X"
            rec["dur"] = float(e.dur)
        else:
            rec["ph"] = "i"
            rec["s"] = "t"
        if e.args:
            rec["args"] = dict(e.args)
        trace.append(rec)
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ns",
        "otherData": {"time_unit": "1 trace us == 1 simulated cycle"},
    }


def write_chrome(events: Iterable[Event], path: str) -> Dict:
    doc = to_chrome(events)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def validate_chrome(doc_or_path: Union[Dict, str]) -> List[str]:
    """Structural + monotonicity check; returns problems (empty = valid)."""
    if isinstance(doc_or_path, str):
        try:
            with open(doc_or_path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            return [f"unreadable trace: {exc}"]
    else:
        doc = doc_or_path
    problems: List[str] = []
    trace = doc.get("traceEvents")
    if not isinstance(trace, list):
        return ["no traceEvents array"]
    last_ts: Dict[int, float] = {}
    named: Dict[int, str] = {}
    for i, rec in enumerate(trace):
        if not isinstance(rec, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = rec.get("ph")
        if ph == "M":
            if rec.get("name") == "thread_name":
                named[rec.get("tid", -1)] = rec.get("args", {}).get(
                    "name", "?")
            continue
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in rec:
                problems.append(f"event {i}: missing {key!r}")
        tid = rec.get("tid")
        ts = rec.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: non-numeric ts {ts!r}")
            continue
        if tid not in named:
            problems.append(f"event {i}: tid {tid} has no thread_name "
                            f"metadata")
        if ph == "X" and not isinstance(rec.get("dur"), (int, float)):
            problems.append(f"event {i}: complete event without numeric dur")
        prev = last_ts.get(tid)
        if prev is not None and ts < prev:
            problems.append(
                f"event {i} ({rec.get('name')}): ts {ts} < {prev} on track "
                f"{named.get(tid, tid)!r} — timestamps must be monotonic "
                f"per track")
        last_ts[tid] = ts
    return problems
