"""Hierarchical metrics registry: counters, gauges, histograms.

Metric names are dotted paths (``unsync.cb.full_stalls``,
``core0.l1d.misses``) so summaries can roll up by prefix. Two backends
share one interface:

* :class:`MetricsRegistry` — the live backend; every instrument records.
* :class:`NullRegistry` — the disabled backend; every lookup returns a
  shared no-op singleton, so instrumented code can call
  ``metrics.counter("x").inc()`` unconditionally and pay only an empty
  method call when telemetry is off. Hot loops should prefer the
  ``if sink is not None`` idiom from ``core/pipeline.py`` instead; the
  null backend exists for warm paths (recovery episodes, drains, result
  rollups) where an extra call per *event* is irrelevant.

Everything here is plain integer/float arithmetic — deterministic and
order-independent for integral counters, which is what lets the campaign
layer merge per-trial metrics without breaking its byte-identical
serial == parallel guarantee.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: default histogram bucket upper bounds (cycles); chosen to resolve both
#: single-digit stall episodes and multi-thousand-cycle recoveries.
DEFAULT_BUCKETS: Tuple[int, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)


class Counter:
    """Monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value (occupancies, watermarks)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def track_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-boundary histogram (cumulative-style bucket counts).

    ``buckets[i]`` counts observations ``<= bounds[i]``; the final bucket
    is the implicit +inf overflow. Bounds are fixed at construction so two
    histograms of the same metric are always mergeable.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total")

    def __init__(self, name: str,
                 bounds: Optional[Iterable[float]] = None) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds) if bounds is not None \
            else DEFAULT_BUCKETS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"{name}: bucket bounds must be sorted")
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict:
        return {"count": self.count, "sum": self.total, "mean": self.mean,
                "bounds": list(self.bounds), "buckets": list(self.buckets)}


class MetricsRegistry:
    """Name -> instrument registry with dotted hierarchical names."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on first use) -------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  bounds: Optional[Iterable[float]] = None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    # -- bulk ---------------------------------------------------------------
    def merge_counters(self, flat: Dict[str, float]) -> None:
        """Add a flat name -> value dict into the counters (result rollups)."""
        for name, value in flat.items():
            self.counter(name).value += value

    def snapshot(self) -> Dict:
        """Everything, JSON-ready, sorted for deterministic serialisation."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.to_dict()
                           for n, h in sorted(self._histograms.items())},
        }

    def counters_dict(self) -> Dict[str, float]:
        return {n: c.value for n, c in sorted(self._counters.items())}


# ---------------------------------------------------------------------------
# null backend
# ---------------------------------------------------------------------------
class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def track_max(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    bounds: Tuple[float, ...] = ()
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def to_dict(self) -> Dict:
        return {"count": 0, "sum": 0.0, "mean": 0.0,
                "bounds": [], "buckets": [0]}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Disabled-telemetry backend: every instrument is a shared no-op."""

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str,
                  bounds: Optional[Iterable[float]] = None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def merge_counters(self, flat: Dict[str, float]) -> None:
        pass

    def snapshot(self) -> Dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def counters_dict(self) -> Dict[str, float]:
        return {}


#: module-wide disabled backend (stateless, safe to share)
NULL_REGISTRY = NullRegistry()
