"""repro.telemetry — unified metrics, event tracing, and profiling.

One :class:`Telemetry` object bundles the two sinks the simulators feed:

* ``telemetry.metrics`` — a hierarchical :class:`MetricsRegistry`
  (counters / gauges / histograms);
* ``telemetry.events`` — a bounded :class:`EventLog` of typed, tracked
  events exportable as JSONL or Chrome trace-event JSON.

Systems take ``telemetry=None`` (the default: disabled). Hot paths bind
``events`` once and use the ``if sink is not None`` idiom from
``core/pipeline.py``, so a disabled run pays at most a handful of
``None`` checks on already-cold branches; warm paths may instead go
through :data:`NULL` whose instruments are shared no-ops.

Usage::

    from repro.telemetry import Telemetry
    from repro.telemetry.chrome import write_chrome

    tel = Telemetry()
    res = UnSyncSystem(program, telemetry=tel,
                       injector=FaultInjector(2e-3, seed=3)).run()
    write_chrome(tel.events, "trace.json")   # open in ui.perfetto.dev
    tel.metrics.snapshot()                   # JSON-ready metric dump
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.events import EventLog
from repro.telemetry.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, NullRegistry, NULL_REGISTRY,
    DEFAULT_BUCKETS,
)


class Telemetry:
    """Live telemetry: a metrics registry plus an event log."""

    enabled = True

    def __init__(self, events_limit: int = 200_000) -> None:
        self.metrics = MetricsRegistry()
        self.events: Optional[EventLog] = EventLog(limit=events_limit)


class NullTelemetry:
    """Disabled telemetry: no-op metrics, no event log.

    ``events`` is ``None`` (not a null object) on purpose: hot paths test
    ``if events is not None`` and skip instrumentation entirely.
    """

    enabled = False

    def __init__(self) -> None:
        self.metrics = NULL_REGISTRY
        self.events: Optional[EventLog] = None


#: shared disabled-telemetry instance
NULL = NullTelemetry()

__all__ = [
    "Telemetry", "NullTelemetry", "NULL",
    "MetricsRegistry", "NullRegistry", "NULL_REGISTRY",
    "Counter", "Gauge", "Histogram", "DEFAULT_BUCKETS",
    "EventLog",
]
