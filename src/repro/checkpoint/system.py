"""CheckpointSystem: redundant pair with checkpoint-interval fingerprints.

Protocol per checkpoint interval of I committed instructions:

1. both cores accumulate a CRC-16 over their retirement streams;
2. at each interval boundary the *system* quiesces and captures a full
   (registers + memory delta) checkpoint — both cores pay the capture
   stall, the scheme's heavy-weight signature;
3. the two interval fingerprints are exchanged and compared; on a match
   the new checkpoint becomes the rollback base and the previous one
   retires; on a mismatch both cores rewind to the base — losing up to a
   whole interval of work and discovering the error up to
   ``interval + comparison latency`` cycles after it happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpoint.store import CheckpointStore
from repro.core.config import SystemConfig
from repro.core.pipeline import CommitGate
from repro.core.rob import ROBEntry
from repro.faults.events import FaultEvent, Outcome
from repro.faults.injector import BlockInventory, FaultInjector, Strike
from repro.faults.detection import NoDetector, SECDEDDetector
from repro.isa.program import Program
from repro.redundancy.pair import DualCoreSystem
from repro.redundancy.stats import WriteBuffer
from repro.reunion.fingerprint import FingerprintGenerator


@dataclass(frozen=True)
class CheckpointParams:
    """The scheme's knobs."""

    #: committed instructions per checkpoint interval (>> Reunion's FI)
    interval: int = 500
    #: cycles to exchange + compare the interval fingerprints
    comparison_latency: int = 10
    #: fixed quiesce cost of every capture, plus per-byte transfer
    capture_base_cycles: int = 20
    capture_bytes_per_cycle: int = 8
    #: restore cost on rollback, beyond re-execution
    restore_base_cycles: int = 30
    #: unverified checkpoints allowed in flight
    store_capacity: int = 2

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.comparison_latency < 0:
            raise ValueError("comparison latency cannot be negative")


class _CheckpointGate(CommitGate):
    """Accumulates the interval fingerprint; stalls commit at a boundary
    until the system has a checkpoint slot."""

    def __init__(self, system: "CheckpointSystem", core_id: int) -> None:
        self.system = system
        self.core_id = core_id
        self.fp = FingerprintGenerator()

    def can_commit(self, entry: ROBEntry, now: int) -> bool:
        # a core that reached an interval boundary commits nothing more
        # until the pair-wide capture happens (checkpoint lockstep)
        return self.core_id not in self.system.awaiting_capture

    def on_commit(self, entry: ROBEntry, now: int) -> None:
        sys_ = self.system
        if sys_.check_corrupt(self.core_id):
            result = ((entry.result or 0) ^ 0x1) & 0xFFFFFFFF
        else:
            result = entry.result
        self.fp.add(entry.pc, result,
                    entry.mem_addr if entry.is_store else None,
                    entry.store_value)
        if entry.is_store and self.core_id == 0:
            if sys_.store_queue.can_accept():
                sys_.store_queue.push(entry.seq, entry.mem_addr,
                                      entry.store_value,
                                      entry.ins.mem_width)
        committed = sys_.pipelines[self.core_id].stats.committed + 1
        if committed % sys_.params.interval == 0:
            sys_.reach_boundary(self.core_id, committed, self.fp.value, now)
            self.fp = FingerprintGenerator()


class CheckpointSystem(DualCoreSystem):
    """Checkpoint-based fingerprinting pair (related-work comparator)."""

    scheme = "checkpoint"

    def __init__(self, program: Program,
                 config: Optional[SystemConfig] = None,
                 params: Optional[CheckpointParams] = None,
                 injector: Optional[FaultInjector] = None,
                 name: Optional[str] = None,
                 **uncore) -> None:
        self.params = params or CheckpointParams()
        self.store = CheckpointStore(self.params.store_capacity)
        self.store_queue = WriteBuffer(capacity=16)
        self.injector = injector
        self.inventory = (injector.inventory if injector is not None
                          else BlockInventory())
        self.fault_events: List[FaultEvent] = []
        self._corrupt_next = [False, False]
        self._unbound_events: List[FaultEvent] = []
        #: corruption events keyed by the boundary that will reveal them
        self._events_by_boundary: Dict[int, List[FaultEvent]] = {}
        #: cores stalled at an interval boundary awaiting the pair capture
        self.awaiting_capture: Dict[int, tuple] = {}
        #: boundary seq -> {core: fp}; comparison state
        self._boundary_fp: Dict[int, Dict[int, int]] = {}
        #: boundary seq -> (verified_at_cycle, matched)
        self._verdict: Dict[int, tuple] = {}
        self.rollbacks = 0
        self.captures_stalled_cycles = 0
        self.detection_latencies: List[int] = []
        self._next_strike: Optional[Strike] = None
        super().__init__(program, config, name=name, **uncore)
        # base checkpoint: the initial state
        self.store.capture(0, 0, self.pipelines[0].committed_state)
        if self.injector is not None:
            # Injected runs must keep the commit-time image an independent
            # re-execution, never a replay of fetch-time records.
            for p in self.pipelines:
                p.commit_replay = "always"
            self._arm_next_strike(0)

    def make_gate(self, core_id: int) -> CommitGate:
        return _CheckpointGate(self, core_id)

    # -- gate callbacks ------------------------------------------------------
    def check_corrupt(self, core_id: int) -> bool:
        if self._corrupt_next[core_id]:
            self._corrupt_next[core_id] = False
            # bind the pending events to the interval this corruption was
            # hashed into: they are adjudicated when *that* boundary's
            # fingerprints are compared, not by any earlier verdict
            committed = self.pipelines[core_id].stats.committed
            boundary = (committed // self.params.interval + 1) \
                * self.params.interval
            self._events_by_boundary.setdefault(boundary, []).extend(
                self._unbound_events)
            self._unbound_events.clear()
            return True
        return False

    def reach_boundary(self, core_id: int, committed: int, fp: int,
                       now: int) -> None:
        """A core finished an interval: stall it until the pair captures."""
        self.awaiting_capture[core_id] = (committed, fp, now)

    # -- per-cycle engine -------------------------------------------------------
    def on_cycle(self, now: int) -> None:
        if self.injector is not None:
            self._process_strikes(now)
        self._try_capture(now)
        self._check_verdicts(now)
        while len(self.store_queue):
            head = self.store_queue.head()
            xfer = self.bus.transfer_cycles(self.store_queue.entry_bytes)
            if self.bus.try_request(now, xfer) < 0:
                break
            self.store_queue.pop()
            self.l2.access(head[1] + self.addr_offset, is_write=True,
                           now=now)

    def _try_capture(self, now: int) -> None:
        if len(self.awaiting_capture) < 2:
            return
        (c0, fp0, _), (c1, fp1, _) = (self.awaiting_capture[0],
                                      self.awaiting_capture[1])
        if c0 != c1:  # pragma: no cover - determinism guard
            raise RuntimeError("cores disagree on the boundary watermark")
        if not self.store.can_capture():
            return  # checkpoint pressure: both cores stay stalled
        cp = self.store.capture(c0, now, self.pipelines[0].committed_state)
        capture_cycles = (self.params.capture_base_cycles
                          + cp.delta_bytes // self.params.capture_bytes_per_cycle)
        freeze_until = now + capture_cycles
        for p in self.pipelines:
            p.frozen_until = max(p.frozen_until, freeze_until)
        self.captures_stalled_cycles += capture_cycles
        self.bus.request(now, max(1, capture_cycles // 2))
        self._boundary_fp[c0] = {0: fp0, 1: fp1}
        self._verdict[c0] = (freeze_until + self.params.comparison_latency,
                             fp0 == fp1)
        self.awaiting_capture.clear()

    def _check_verdicts(self, now: int) -> None:
        due = [b for b, (at, _) in self._verdict.items() if now >= at]
        for boundary in sorted(due):
            at, matched = self._verdict.pop(boundary)
            if matched:
                # the new checkpoint is good: the older base retires
                if len(self.store) > 1:
                    self.store.retire_oldest()
                self._resolve_events(now, boundary, detected=False)
            else:
                self._rollback(now, boundary)

    def _rollback(self, now: int, boundary: int) -> None:
        self.rollbacks += 1
        # the newest checkpoint captured the corrupt state: discard it
        while len(self.store) > 1:
            self.store._stack.pop()
        base = self.store.rollback_target()
        restore_cycles = (self.params.restore_base_cycles
                          + self.store.REG_BYTES
                          // self.params.capture_bytes_per_cycle)
        for p in self.pipelines:
            p.restore_to(base.state, base.seq)
            p.frozen_until = max(p.frozen_until, now + restore_cycles)
        for gate_core in (0, 1):
            self.pipelines[gate_core].gate.fp = FingerprintGenerator()
        self.awaiting_capture.clear()
        self._resolve_events(now, boundary, detected=True)

    def _resolve_events(self, now: int, boundary: int,
                        detected: bool) -> None:
        events = self._events_by_boundary.pop(boundary, [])
        for e in events:
            if detected:
                e.outcome = Outcome.DETECTED_RECOVERED
                e.detection_latency = now - e.cycle
                self.detection_latencies.append(e.detection_latency)
            else:
                # a matched interval with hashed corruption = CRC alias
                e.outcome = Outcome.SDC

    # -- faults --------------------------------------------------------------
    def _arm_next_strike(self, now: int) -> None:
        interval = self.injector.next_interval()
        if interval == float("inf"):
            self._next_strike = None
            return
        self._next_strike = self.injector.strike_at(now + max(1, int(interval)))

    def _process_strikes(self, now: int) -> None:
        while self._next_strike is not None and self._next_strike.cycle <= now:
            strike = self._next_strike
            core_id = strike.bit % 2
            block = self.inventory.get(strike.block)
            event = FaultEvent(cycle=now, core_id=core_id,
                               block=strike.block, bit=strike.bit)
            if block.pre_commit:
                self._corrupt_next[core_id] = True
                self._unbound_events.append(event)
            elif strike.block.startswith("l1"):
                event.outcome = Outcome.DETECTED_RECOVERED  # SECDED L1
            else:
                event.outcome = Outcome.SDC
            self.fault_events.append(event)
            self._arm_next_strike(now)

    # -- results ----------------------------------------------------------------
    def extra_stats(self) -> dict:
        mean_latency = (sum(self.detection_latencies)
                        / len(self.detection_latencies)
                        if self.detection_latencies else 0.0)
        return {
            "checkpoints": float(self.store.captures),
            "checkpoint_bytes": float(self.store.bytes_captured),
            "capture_stall_cycles": float(self.captures_stalled_cycles),
            "rollbacks": float(self.rollbacks),
            "mean_detection_latency": mean_latency,
            "checkpoint_full_stalls": float(self.store.full_stalls),
        }

    def result(self):
        res = super().result()
        res.fault_events = list(self.fault_events)
        return res
