"""Whole-system snapshot/restore for differential-replay campaigns.

A campaign cell's trials all simulate the *same* fault-free prefix up to
each trial's first strike (the simulator is deterministic by
construction), so the prefix can be executed once, snapshotted at coarse
cycle epochs, and every trial fast-forwarded from the nearest epoch at
or before its first injection cycle. This module is the serialization
layer of that scheme: :func:`capture_system` freezes any scheme system
into an immutable :class:`SystemSnapshot`, and :func:`restore_system`
thaws an independent, runnable replica.

The mechanism is a :mod:`pickle` stream with a persistent-id escape
hatch for the objects that must *not* be copied by value:

* the :class:`~repro.isa.program.Program` (and every ``Instruction`` it
  owns, which in-flight pipeline records reference) is stored by
  identity and re-bound on restore — programs are immutable and shared
  per worker;
* every :class:`~repro.isa.memory.PagedMemory` image is lifted out of
  the stream as a table of immutable ``bytes`` pages, content-interned
  in a per-worker page pool, and restored as a
  :class:`~repro.isa.memory.CowPagedMemory` — so the epochs of one
  prefix (and every restore from them) share unchanged pages instead of
  copying the memory image;
* the disabled-telemetry ``NULL_REGISTRY`` singleton keeps its identity.

Everything else — pipelines, ROBs, commit gates, CB/CSB/check-queue
structures, injector RNG streams, telemetry counters — round-trips
through the ordinary pickle machinery, which is exactly "serialize all
mutable state" without a hand-written field list per scheme.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.memory import CowPagedMemory, PagedMemory
from repro.isa.program import Program
from repro.telemetry import NULL_REGISTRY

#: content-interning pool type: canonical page ``bytes`` keyed by value
PagePool = Dict[bytes, bytes]


class SnapshotUnsupported(RuntimeError):
    """The system holds state the snapshot layer cannot serialize.

    Raised instead of a bare ``PicklingError`` so the campaign layer can
    fall back to full re-execution for exotic systems (externally
    supplied gates holding file handles, tracers, ...) without guessing
    at pickle internals.
    """


@dataclass(frozen=True)
class SystemSnapshot:
    """One frozen system state, restorable any number of times.

    ``payload`` is the pickle stream (with persistent-id holes);
    ``mems`` holds one page table per :class:`PagedMemory` the system
    owned, in encounter order, each mapping page number to an interned
    immutable ``bytes`` page. ``delta_bytes`` is the snapshot's
    *incremental* footprint: stream bytes plus only the pool pages this
    capture added (unchanged pages are shared with earlier epochs).
    """

    cycle: int
    payload: bytes
    mems: Tuple[Dict[int, bytes], ...]
    delta_bytes: int


def instruction_index(program: Program) -> Dict[int, int]:
    """``id(instruction) -> position`` for a program's instruction tuple.

    In-flight pipeline records (fetch buffer, ROB, issue queue) reference
    the program's ``Instruction`` objects; storing them by index keeps
    them out of the payload and re-bound to the shared program on
    restore. Callers should memoize this per program (the campaign cache
    does).
    """
    # simlint: off=SIM104 — the cache memoizes this per *live* program
    return {id(ins): i for i, ins in enumerate(program.instructions)}


class _SnapshotPickler(pickle.Pickler):
    """Pickler that lifts shared/immutable objects out of the stream."""

    def __init__(self, stream: io.BytesIO, program: Program,
                 ins_index: Dict[int, int], pool: PagePool,
                 mems: List[Dict[int, bytes]]) -> None:
        super().__init__(stream, protocol=pickle.HIGHEST_PROTOCOL)
        self._program = program
        self._ins_index = ins_index
        self._pool = pool
        self._mems = mems
        self._mem_ids: Dict[int, int] = {}
        self.new_pool_bytes = 0

    def _intern_page(self, page) -> bytes:
        data = bytes(page)
        canonical = self._pool.setdefault(data, data)
        if canonical is data:
            self.new_pool_bytes += len(data)
        return canonical

    def persistent_id(self, obj: Any) -> Optional[Tuple[Any, ...]]:
        if obj is self._program:
            return ("program",)
        if obj is NULL_REGISTRY:
            return ("nullreg",)
        cls = type(obj)
        if cls is Instruction:
            # every keyed object is alive for this pickling pass (the
            # pickle memo's own id-keying contract)
            index = self._ins_index.get(id(obj))  # simlint: off=SIM104
            # instructions synthesized outside the program (the fetch
            # stage's out-of-range HALT) travel by value
            return None if index is None else ("ins", index)
        if cls is PagedMemory or cls is CowPagedMemory:
            key = self._mem_ids.get(id(obj))  # simlint: off=SIM104
            if key is None:
                key = len(self._mems)
                self._mem_ids[id(obj)] = key  # simlint: off=SIM104
                self._mems.append({pno: self._intern_page(page)
                                   for pno, page in obj._pages.items()})
            return ("mem", key)
        return None


class _SnapshotUnpickler(pickle.Unpickler):
    def __init__(self, stream: io.BytesIO, program: Program,
                 mems: Tuple[Dict[int, bytes], ...]) -> None:
        super().__init__(stream)
        self._program = program
        self._mems = mems

    def persistent_load(self, pid: Tuple[Any, ...]) -> Any:
        tag = pid[0]
        if tag == "mem":
            # fresh page *table*, shared immutable pages: copy-on-write
            return CowPagedMemory(dict(self._mems[pid[1]]))
        if tag == "ins":
            return self._program.instructions[pid[1]]
        if tag == "program":
            return self._program
        if tag == "nullreg":
            return NULL_REGISTRY
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def capture_system(system: Any, program: Program,
                   pool: Optional[PagePool] = None,
                   ins_index: Optional[Dict[int, int]] = None
                   ) -> SystemSnapshot:
    """Freeze ``system`` (any scheme's) into a :class:`SystemSnapshot`.

    ``pool`` is the page-interning dict shared across the epochs of one
    prefix (and across cells of one workload); omit it for a one-off
    snapshot. ``program`` must be the program the system was built over.
    """
    if pool is None:
        pool = {}
    if ins_index is None:
        ins_index = instruction_index(program)
    mems: List[Dict[int, bytes]] = []
    stream = io.BytesIO()
    pickler = _SnapshotPickler(stream, program, ins_index, pool, mems)
    try:
        pickler.dump(system)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise SnapshotUnsupported(
            f"cannot snapshot {type(system).__name__}: {exc!r}") from exc
    payload = stream.getvalue()
    return SystemSnapshot(cycle=int(getattr(system, "now", 0)),
                          payload=payload, mems=tuple(mems),
                          delta_bytes=len(payload)
                          + pickler.new_pool_bytes)


def restore_system(snapshot: SystemSnapshot, program: Program) -> Any:
    """Thaw an independent replica of the snapshotted system.

    Restores may repeat freely: every call builds fresh mutable state,
    and memory pages stay shared (copy-on-write) until the replica
    writes them. ``program`` must be the object the capture was bound to
    (per-worker program memos guarantee that in campaign workers).
    """
    stream = io.BytesIO(snapshot.payload)
    return _SnapshotUnpickler(stream, program, snapshot.mems).load()
