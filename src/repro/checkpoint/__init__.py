"""Checkpoint-based fingerprinting (Smolens et al., IEEE Micro 2004).

The third point on the paper's related-work spectrum (Sec II):
"Fingerprinting is a checkpointing scheme designed to minimize hardware
changes ... Mismatches trigger a rollback to a known good checkpoint ...
such techniques can be implemented cheaply, however they rely on
heavy-weight checkpointing mechanisms that capture all of system state
(including memory) and increase error detection latency."

This package implements that scheme over the same substrate so the
trade-off the paper cites becomes measurable: long checkpoint intervals
amortise the (expensive, memory-inclusive) checkpoint cost but stretch
the detection latency and the rollback loss; short intervals invert it.

* :class:`~repro.checkpoint.store.CheckpointStore` — bounded set of
  architectural+memory snapshots with cost accounting;
* :class:`~repro.checkpoint.system.CheckpointSystem` — the redundant
  pair: CRC-16 fingerprints accumulated over whole checkpoint intervals,
  compared at checkpoint creation; mismatch rolls both cores back to the
  last good checkpoint.
"""

from repro.checkpoint.store import Checkpoint, CheckpointStore
from repro.checkpoint.system import CheckpointParams, CheckpointSystem

__all__ = ["Checkpoint", "CheckpointStore",
           "CheckpointParams", "CheckpointSystem"]
