"""Checkpoint storage with cost accounting.

A checkpoint captures the *full* architectural state — registers, PC,
and the memory image — which is exactly the "heavy-weight" property the
UnSync paper holds against the scheme. The capture cost model charges
for the registers plus every memory byte that changed since the previous
checkpoint (incremental checkpointing, the charitable implementation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.isa.golden import ArchState


@dataclass
class Checkpoint:
    """One captured machine state.

    ``state`` is an :class:`ArchState` for the architectural checkpoints
    the comparator scheme rolls back to, or any opaque snapshot payload
    captured through :meth:`CheckpointStore.capture_payload` (the
    campaign's differential-replay prefix cache stores whole-system
    snapshots here).
    """

    seq: int                  # committed-instruction watermark
    cycle: int                # capture time
    state: Any
    #: bytes that had to be saved (delta vs previous checkpoint)
    delta_bytes: int


class CheckpointStore:
    """Bounded LIFO of checkpoints (old ones retire as new ones verify).

    ``capacity`` bounds how many unverified checkpoints may exist; the
    scheme must stall when full (checkpoint pressure — the analogue of
    UnSync's CB back-pressure).
    """

    REG_BYTES = 32 * 4 + 4    # ARF + PC

    def __init__(self, capacity: int = 2) -> None:
        if capacity < 1:
            raise ValueError("need at least one checkpoint slot")
        self.capacity = capacity
        self._stack: List[Checkpoint] = []
        self.captures = 0
        self.bytes_captured = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._stack)

    @property
    def full(self) -> bool:
        return len(self._stack) >= self.capacity

    def can_capture(self) -> bool:
        if self.full:
            self.full_stalls += 1
            return False
        return True

    def capture(self, seq: int, cycle: int, state: ArchState) -> Checkpoint:
        """Snapshot ``state``; cost = registers + memory delta.

        The delta counts every memory byte whose *value* differs from the
        previous checkpoint (content diff over the normalised nonzero
        view — rewriting a byte with its existing value is free).
        """
        if self.full:
            raise RuntimeError("capture into full checkpoint store")
        prev_mem = self._stack[-1].state.mem if self._stack else {}
        delta = sum(1 for addr, val in state.mem.items()
                    if prev_mem.get(addr) != val)
        delta += sum(1 for addr in prev_mem if addr not in state.mem)
        cp = Checkpoint(seq=seq, cycle=cycle, state=state.clone(),
                        delta_bytes=self.REG_BYTES + delta)
        self._stack.append(cp)
        self.captures += 1
        self.bytes_captured += cp.delta_bytes
        return cp

    def capture_payload(self, seq: int, cycle: int, payload: Any,
                        delta_bytes: int) -> Checkpoint:
        """Store an opaque snapshot payload under the same capacity and
        cost accounting as :meth:`capture`.

        The caller supplies ``delta_bytes`` because only it knows the
        payload's incremental footprint (the differential-replay cache
        charges the bytes its page pool actually grew by).
        """
        if self.full:
            raise RuntimeError("capture into full checkpoint store")
        cp = Checkpoint(seq=seq, cycle=cycle, state=payload,
                        delta_bytes=delta_bytes)
        self._stack.append(cp)
        self.captures += 1
        self.bytes_captured += delta_bytes
        return cp

    def newest(self) -> Optional[Checkpoint]:
        return self._stack[-1] if self._stack else None

    def retire_oldest(self) -> Optional[Checkpoint]:
        """Free the oldest checkpoint once everything up to the next one
        has been verified."""
        return self._stack.pop(0) if self._stack else None

    def rollback_target(self) -> Optional[Checkpoint]:
        """The newest *verified* checkpoint is always the stack base."""
        return self._stack[0] if self._stack else None

    def at_or_before(self, cycle: int) -> Optional[Checkpoint]:
        """The newest checkpoint captured at or before ``cycle``.

        The differential-replay lookup: entries are appended in cycle
        order, so this is a reverse scan for the first cycle <= bound.
        """
        for cp in reversed(self._stack):
            if cp.cycle <= cycle:
                return cp
        return None

    def thin_every_other(self) -> int:
        """Drop every other checkpoint (odd positions), oldest kept.

        Ring-pressure relief for open-ended capture streams: when the
        store fills mid-run, the prefix cache halves its resolution and
        doubles its capture interval instead of stalling — coverage of
        the whole run matters more than density. Returns the drop count.
        """
        kept = self._stack[::2]
        dropped = len(self._stack) - len(kept)
        self._stack = kept
        return dropped
