"""UnSync: the paper's contribution.

Two identical cores run one thread without synchronizing. The only
coupling is the Communication Buffer pair: each core's write-through L1
spills retired stores into its CB, and an entry drains to the shared L2
only once *both* cores have produced it (one copy is written). Hardware
detectors (parity / DMR, :mod:`repro.faults.detection`) watch every
sequential element; on detection the Error Interrupt Handler freezes the
pair and the clean core's architectural state + L1 + CB are copied over
the erroneous core — *always forward*, never a rollback.

Public API:

* :class:`~repro.unsync.system.UnSyncSystem` — run a workload under UnSync.
* :class:`~repro.unsync.comm_buffer.CommBuffer` and
  :func:`~repro.unsync.comm_buffer.matched_drain` — the CB mechanism.
* :class:`~repro.unsync.eih.ErrorInterruptHandler` — detection-to-recovery
  signalling.
* :mod:`repro.unsync.recovery` — the always-forward recovery cost model.
"""

from repro.unsync.comm_buffer import CommBuffer, CBEntry, matched_drain
from repro.unsync.eih import ErrorInterruptHandler, EIHConfig
from repro.unsync.recovery import RecoveryCostModel, RecoveryPlan
from repro.unsync.system import UnSyncSystem, UnSyncConfig

__all__ = [
    "CommBuffer", "CBEntry", "matched_drain",
    "ErrorInterruptHandler", "EIHConfig",
    "RecoveryCostModel", "RecoveryPlan",
    "UnSyncSystem", "UnSyncConfig",
]
