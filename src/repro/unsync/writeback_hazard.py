"""Figure 2: why UnSync *requires* a write-through L1.

The paper's argument (Sec III-C-1): with write-back L1s, an error
detected on core A starts recovery, but the EIH signalling window is
non-zero; if a second strike lands on a *dirty* line of core B (the clean
core) before its state is copied, that line's only up-to-date copy in the
whole system is now corrupt — the pair cannot recover. With write-through
L1s every line has a valid copy in the ECC L2, so the same double-strike
merely invalidates two cache lines.

This module makes that argument executable twice over:

* :func:`simulate_double_strike` — a discrete re-enactment of Figure 2's
  timeline for one (first-strike, second-strike) pair, returning the
  outcome class under either write policy;
* :class:`HazardModel` — the closed-form exposure analysis: the
  probability that a detected error becomes unrecoverable, as a function
  of the EIH window, the strike rate, and dirty-line occupancy — plus a
  Monte-Carlo estimator the tests cross-check against it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.faults.events import Outcome
from repro.mem.cache import WritePolicy
from repro.unsync.eih import EIHConfig


@dataclass(frozen=True)
class DoubleStrikeScenario:
    """Figure 2's cast of characters."""

    #: cycle of the first (detected) strike on core A
    first_strike_cycle: int = 100
    #: cycle the second strike lands on core B (None = never)
    second_strike_cycle: Optional[int] = None
    #: does the second strike hit a *dirty* line of core B?
    second_strike_on_dirty_line: bool = True
    policy: WritePolicy = WritePolicy.WRITE_BACK
    eih: EIHConfig = EIHConfig()

    @property
    def exposure_window(self) -> int:
        """Cycles between the first strike and the pair being quiesced
        with core B's state secured (Figure 2's t1..recovery interval)."""
        return self.eih.signal_latency + self.eih.stall_latency


def simulate_double_strike(scenario: DoubleStrikeScenario) -> Outcome:
    """Re-enact Figure 2 and classify the outcome.

    Write-through: always recoverable (the ECC L2 holds every line).
    Write-back: unrecoverable iff the second strike hits a dirty line of
    the clean core within the exposure window — its only valid copy is
    gone before anyone reads it.
    """
    second = scenario.second_strike_cycle
    window_end = scenario.first_strike_cycle + scenario.exposure_window
    if second is None or not (scenario.first_strike_cycle <= second
                              <= window_end):
        return Outcome.DETECTED_RECOVERED
    if scenario.policy is WritePolicy.WRITE_THROUGH:
        # both lines invalidate; refills come from the ECC L2
        return Outcome.DETECTED_RECOVERED
    if not scenario.second_strike_on_dirty_line:
        # clean line in a write-back cache still has an L2 copy
        return Outcome.DETECTED_RECOVERED
    return Outcome.DETECTED_UNRECOVERABLE


@dataclass(frozen=True)
class HazardModel:
    """Closed-form exposure analysis of the Figure 2 hazard.

    Parameters
    ----------
    strike_rate_per_cycle:
        Per-core upset rate (strikes/cycle) over the whole inventory.
    dirty_fraction_of_bits:
        Fraction of a core's vulnerable bits that are dirty-L1-line data
        at any instant (write-back only; 0 for write-through).
    eih:
        Signalling latencies; they define the exposure window.
    """

    strike_rate_per_cycle: float = 1e-6
    dirty_fraction_of_bits: float = 0.3
    eih: EIHConfig = EIHConfig()

    def __post_init__(self) -> None:
        if not 0 <= self.dirty_fraction_of_bits <= 1:
            raise ValueError("dirty fraction must be in [0, 1]")
        if self.strike_rate_per_cycle < 0:
            raise ValueError("strike rate must be non-negative")

    @property
    def window_cycles(self) -> int:
        return self.eih.signal_latency + self.eih.stall_latency

    def p_unrecoverable_given_detection(self,
                                        policy: WritePolicy) -> float:
        """P[second strike on a dirty line of the clean core within the
        window | a first strike was detected]."""
        if policy is WritePolicy.WRITE_THROUGH:
            return 0.0
        lam = self.strike_rate_per_cycle * self.window_cycles
        p_second = 1.0 - math.exp(-lam)
        return p_second * self.dirty_fraction_of_bits

    def unrecoverable_fit_scaling(self, policy: WritePolicy) -> float:
        """Relative rate of unrecoverable events per detected error —
        the figure of merit a designer would use to justify the
        write-through requirement."""
        return self.p_unrecoverable_given_detection(policy)

    def monte_carlo(self, policy: WritePolicy, trials: int = 20_000,
                    seed: int = 0) -> float:
        """Empirical estimate of the same probability, by sampling
        second-strike arrival times and dirty/clean placement."""
        rng = random.Random(seed)
        if self.strike_rate_per_cycle == 0:
            return 0.0
        bad = 0
        for _ in range(trials):
            gap = rng.expovariate(self.strike_rate_per_cycle)
            if gap > self.window_cycles:
                continue
            on_dirty = rng.random() < self.dirty_fraction_of_bits
            scenario = DoubleStrikeScenario(
                first_strike_cycle=0,
                second_strike_cycle=int(gap),
                second_strike_on_dirty_line=on_dirty,
                policy=policy,
                eih=self.eih,
            )
            if simulate_double_strike(scenario) is Outcome.DETECTED_UNRECOVERABLE:
                bad += 1
        return bad / trials
