"""Always-forward recovery cost model (Sec III-A, "Recovery Mode").

The six recovery steps and how each is charged:

1. stop both cores                  -> EIH stall latency (eih.py)
2. flush the erroneous pipeline     -> ``pipeline_flush_cycles``
3. copy arch state + L1 contents    -> bytes / bus bandwidth via the L2
4. stop CB->L2 drains               -> in-flight transfer completes (bus)
5. overwrite the erroneous CB       -> CB entries over the pair link
6. both cores resume from the clean core's PC

The paper performs step 3 "by specific subroutines using the shared L2
cache", so the copy bandwidth is the L1<->L2 path: each transferred block
costs a bus transfer plus an L2 access. Step 6's "always forward" property
is *free* performance: the erroneous core may skip work it had not yet
done (it adopts the clean core's progress), which partially compensates
the copy cost — the model reports both numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RecoveryPlan:
    """Cycle budget of one recovery, broken down by step."""

    stall_cycles: int
    flush_cycles: int
    regfile_copy_cycles: int
    l1_copy_cycles: int
    cb_copy_cycles: int

    @property
    def total_cycles(self) -> int:
        return (self.stall_cycles + self.flush_cycles
                + self.regfile_copy_cycles + self.l1_copy_cycles
                + self.cb_copy_cycles)


@dataclass(frozen=True)
class RecoveryCostModel:
    """Parameters of the state-copy path."""

    bus_width_bytes: int = 8
    l2_access_cycles: int = 20
    pipeline_flush_cycles: int = 4
    reg_count: int = 32
    reg_bytes: int = 4
    line_bytes: int = 64
    #: blocks whose copy overlaps the L2 access pipelining: every block
    #: after the first hides its L2 latency behind the previous transfer.
    pipelined_copy: bool = True
    #: how the erroneous core's L1 is restored:
    #: * ``"copy"``       — bulk-copy the clean core's L1 contents via the
    #:   L2, exactly as Sec III-A step 3 describes (expensive, warm);
    #: * ``"invalidate"`` — flash-invalidate only. Correct because the L1
    #:   is write-through (every line has a valid copy in the ECC L2);
    #:   the cost moves to post-recovery cold misses instead of the copy.
    #:   The paper's break-even SER (1.29e-3) is only reachable with a
    #:   recovery this cheap, so both modes matter.
    l1_restore: str = "copy"

    def __post_init__(self) -> None:
        if self.l1_restore not in ("copy", "invalidate"):
            raise ValueError("l1_restore must be 'copy' or 'invalidate'")

    def _block_copy_cycles(self, n_blocks: int, block_bytes: int) -> int:
        """Cycles to push ``n_blocks`` of ``block_bytes`` through the
        core->L2->core path."""
        if n_blocks <= 0:
            return 0
        beats = max(1, -(-block_bytes // self.bus_width_bytes))
        # write to L2 then read back on the other core: 2 traversals
        per_block = 2 * beats
        total = n_blocks * per_block
        if self.pipelined_copy:
            total += 2 * self.l2_access_cycles  # fill/drain the pipe once
        else:
            total += n_blocks * 2 * self.l2_access_cycles
        return total

    def plan(self,
             stall_cycles: int,
             l1_resident_lines: int,
             cb_entries: int,
             cb_entry_bytes: int = 12) -> RecoveryPlan:
        """Compute the full recovery budget.

        ``l1_resident_lines`` counts the clean core's valid L1D lines (the
        write-through I-side needs only invalidation, which is folded into
        the flush); ``cb_entries`` is the clean CB occupancy copied in
        step 5.
        """
        regfile = self._block_copy_cycles(1, self.reg_count * self.reg_bytes
                                          + self.reg_bytes)  # + PC
        if self.l1_restore == "copy":
            l1 = self._block_copy_cycles(l1_resident_lines, self.line_bytes)
        else:
            l1 = 1  # flash invalidate
        cb = self._block_copy_cycles(cb_entries, cb_entry_bytes) if cb_entries else 0
        return RecoveryPlan(
            stall_cycles=stall_cycles,
            flush_cycles=self.pipeline_flush_cycles,
            regfile_copy_cycles=regfile,
            l1_copy_cycles=l1,
            cb_copy_cycles=cb,
        )
