"""The Communication Buffer (CB).

Sec III-A: "Data written into the L1-cache of a core, as it leaves the
core (as in a write-through cache), is written into a non-coalescing CB,
one for each core in the core-pair. In the CB, each updated entry is
tagged with its corresponding instruction address. As and when the L1-L2
data bus is free, the latest entry that has completed execution on both
the CB is selected; and one copy of all the CB entries earlier to this are
written into the L2 cache."

Because both cores retire the identical store stream in order, each CB is
a FIFO of the same sequence; the "latest entry completed on both" rule is
exactly the matched FIFO prefix, which :func:`matched_drain` computes.

A full CB back-pressures its core's commit stage — the mechanism behind
Figure 6.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple


#: Paper sizing: one entry holds address + data + instruction tag. The
#: Reunion CSB entry is 66 bits; the CB entry carries a 32-bit address,
#: 32-bit data and a tag, so we budget 12 bytes per entry when converting
#: Figure 6's KB sizes to entry counts.
ENTRY_BYTES = 12


@dataclass(frozen=True, slots=True)
class CBEntry:
    """One retired store, tagged with its dynamic sequence number (the
    simulator's stand-in for the paper's instruction-address tag)."""

    seq: int
    addr: int
    value: int
    width: int


class CommBuffer:
    """Non-coalescing FIFO of retired stores for one core."""

    def __init__(self, capacity_entries: int = 10,
                 entry_bytes: int = ENTRY_BYTES) -> None:
        if capacity_entries <= 0:
            raise ValueError("CB needs at least one entry")
        self.capacity = capacity_entries
        self.entry_bytes = entry_bytes
        self._fifo: Deque[CBEntry] = deque()
        self.pushes = 0
        self.drains = 0
        self.full_stalls = 0
        #: high-water mark (the Figure 6 sizing question, measured)
        self.max_occupancy = 0

    @classmethod
    def from_kilobytes(cls, kb: float, entry_bytes: int = ENTRY_BYTES) -> "CommBuffer":
        """Size a CB the way Figure 6's x-axis does (KB of buffer)."""
        entries = max(1, int(kb * 1024 // entry_bytes))
        return cls(capacity_entries=entries, entry_bytes=entry_bytes)

    @property
    def size_bytes(self) -> int:
        return self.capacity * self.entry_bytes

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def full(self) -> bool:
        return len(self._fifo) >= self.capacity

    def can_accept(self) -> bool:
        if self.full:
            self.full_stalls += 1
            return False
        return True

    def push(self, entry: CBEntry) -> None:
        if self.full:
            raise RuntimeError("push into full CB")
        if self._fifo and entry.seq <= self._fifo[-1].seq:
            raise ValueError("CB entries must arrive in retirement order")
        self._fifo.append(entry)
        self.pushes += 1
        if len(self._fifo) > self.max_occupancy:
            self.max_occupancy = len(self._fifo)

    def head(self) -> Optional[CBEntry]:
        return self._fifo[0] if self._fifo else None

    def pop(self) -> CBEntry:
        self.drains += 1
        return self._fifo.popleft()

    def entries(self) -> Tuple[CBEntry, ...]:
        return tuple(self._fifo)

    def overwrite_from(self, other: "CommBuffer") -> None:
        """Recovery step 5: replace contents with the clean core's CB."""
        self._fifo = deque(other._fifo)

    def clear(self) -> None:
        self._fifo.clear()


def matched_drain(cb_a: CommBuffer, cb_b: CommBuffer) -> int:
    """Sequence number up to which both CBs hold (or have already drained)
    the store stream — the drainable prefix boundary.

    Entries with ``seq <= matched`` may be written to L2. Returns -1 when
    nothing is drainable. Since both FIFOs observe the same retirement
    order, the boundary is ``min`` over the two *youngest* entries, but
    drains pop both FIFOs together so in steady state the heads agree; a
    head mismatch can only mean one core ran ahead, and only the common
    prefix drains.
    """
    if not len(cb_a) or not len(cb_b):
        return -1
    youngest_a = cb_a._fifo[-1].seq
    youngest_b = cb_b._fifo[-1].seq
    return min(youngest_a, youngest_b)
