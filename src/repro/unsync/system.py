"""UnSyncSystem: the full architecture wired together.

Composition (Figure 1): two cores with write-through L1s -> per-core
Communication Buffers -> one copy drains to the shared ECC L2 when the bus
is free; parity/DMR detectors on every sequential block -> EIH -> pair-wide
always-forward recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.pipeline import CommitGate
from repro.core.rob import ROBEntry
from repro.faults.detection import Detector, NoDetector
from repro.faults.events import FaultEvent, Outcome
from repro.faults.injector import (
    BlockInventory, FaultInjector, Strike, UNSYNC_DETECTORS,
)
from repro.isa.program import Program
from repro.mem.cache import WritePolicy
from repro.redundancy.pair import DualCoreSystem
from repro.telemetry import Telemetry
from repro.telemetry.events import (
    CB_DRAIN, CB_GATE, EIH_INTERRUPT, EIH_RECOVERY, FAULT_DETECTED,
    FAULT_INJECTED, FAULT_SDC,
)
from repro.unsync.comm_buffer import CBEntry, CommBuffer
from repro.unsync.eih import EIHConfig, ErrorInterruptHandler
from repro.unsync.recovery import RecoveryCostModel


@dataclass(frozen=True)
class UnSyncConfig:
    """UnSync-specific knobs on top of the Table I system."""

    #: CB entries per core. The default is the 2 KB operating point —
    #: Figure 6's knee, where CB back-pressure vanishes; the paper's
    #: hardware synthesis point (10 entries, Table II) is what
    #: ``repro.hwcost`` charges, and Figure 6 sweeps the full range via
    #: :meth:`CommBuffer.from_kilobytes`.
    cb_entries: int = 170
    cb_entry_bytes: int = 12
    #: bytes actually moved per drain: the 32-bit data + address pair
    #: packs into one 64-bit bus beat.
    drain_payload_bytes: int = 8
    eih: EIHConfig = field(default_factory=EIHConfig)
    recovery: RecoveryCostModel = field(default_factory=RecoveryCostModel)


class _UnSyncGate(CommitGate):
    """Per-core commit gate: stores need a CB slot to retire."""

    def __init__(self, system: "UnSyncSystem", core_id: int) -> None:
        self.system = system
        self.core_id = core_id
        #: this core's CB, bound once (the CommBuffer object is stable;
        #: recovery mutates its contents, never replaces it)
        self._cb = system.cbs[core_id]
        #: telemetry event sink (None when disabled) and the open
        #: commit-stall episode, reported as one cb.gate span per episode
        #: rather than one event per stalled cycle
        self._ev = system._ev
        self._ev_track = f"core{core_id}.cb"
        self._stall_start: Optional[int] = None

    def can_commit(self, entry: ROBEntry, now: int) -> bool:
        if entry.ins.is_store:
            if self._cb.can_accept():
                if self._stall_start is not None:
                    self._ev.emit(CB_GATE, self._stall_start, self._ev_track,
                                  dur=now - self._stall_start)
                    self._stall_start = None
                return True
            if self._ev is not None and self._stall_start is None:
                self._stall_start = now
            return False
        return True

    def on_commit(self, entry: ROBEntry, now: int) -> None:
        if entry.ins.is_store:
            self._cb.push(CBEntry(
                seq=entry.seq, addr=entry.mem_addr,
                value=entry.store_value, width=entry.ins.mem_width))


class UnSyncSystem(DualCoreSystem):
    """Two un-synchronized redundant cores with CB + EIH recovery."""

    scheme = "unsync"

    def __init__(self, program: Program,
                 config: Optional[SystemConfig] = None,
                 unsync: Optional[UnSyncConfig] = None,
                 injector: Optional[FaultInjector] = None,
                 detectors: Optional[Dict[str, Detector]] = None,
                 name: Optional[str] = None,
                 telemetry: Optional[Telemetry] = None,
                 **uncore) -> None:
        self.unsync = unsync or UnSyncConfig()
        self.cbs: List[CommBuffer] = [
            CommBuffer(self.unsync.cb_entries, self.unsync.cb_entry_bytes)
            for _ in range(2)]
        self.eih = ErrorInterruptHandler(self.unsync.eih)
        self.injector = injector
        self.detectors = detectors if detectors is not None else dict(UNSYNC_DETECTORS)
        self.fault_events: List[FaultEvent] = []
        self.recovery_cycles_total = 0
        self._recovering_until = 0
        self._next_strike: Optional[Strike] = None
        # UnSync *requires* write-through L1s (Sec III-C-1)
        cfg = config or SystemConfig.table1()
        if cfg.dcache.policy is not WritePolicy.WRITE_THROUGH:
            raise ValueError(
                "UnSync requires a write-through L1 D-cache (see Figure 2's "
                "unrecoverable write-back scenario)")
        super().__init__(program, cfg, name=name, telemetry=telemetry,
                         **uncore)
        if self.injector is not None:
            # Injected runs must keep the commit-time image an independent
            # re-execution, never a replay of fetch-time records.
            for p in self.pipelines:
                p.commit_replay = "always"
            self._arm_next_strike(0)

    # -- construction hooks --------------------------------------------------
    def make_gate(self, core_id: int) -> CommitGate:
        return _UnSyncGate(self, core_id)

    # -- per-cycle engine ------------------------------------------------------
    def on_cycle(self, now: int) -> None:
        if self.injector is not None:
            self._process_strikes(now)
        if self.eih._pending:
            pending = self.eih.poll(now)
            if pending is not None:
                self._recover(now, *pending)
        if now >= self._recovering_until:
            self._drain(now)

    def _drain(self, now: int) -> None:
        cb0, cb1 = self.cbs
        f0 = cb0._fifo
        f1 = cb1._fifo
        drained = 0
        while f0 and f1:
            h0 = f0[0]
            h1 = f1[0]
            if h0.seq != h1.seq:
                # one core is mid-recovery resync; only the common prefix
                # is drainable and the heads disagree — wait.
                break
            xfer = self.bus.transfer_cycles(self.unsync.drain_payload_bytes)
            if self.bus.try_request(now, xfer) < 0:
                break
            cb0.pop()
            cb1.pop()
            drained += 1
            # one copy of the data goes to the ECC L2
            self.l2.access(h0.addr + self.addr_offset, is_write=True, now=now)
        if drained and self._ev is not None:
            self._ev.emit(CB_DRAIN, now, "cb",
                          args={"n": drained, "left": len(f0)})

    # -- faults ---------------------------------------------------------------
    def _arm_next_strike(self, now: int) -> None:
        interval = self.injector.next_interval()
        if interval == float("inf"):
            self._next_strike = None
            return
        cycle = now + max(1, int(interval))
        strike = self.injector.strike_at(cycle)
        self._next_strike = strike

    def _process_strikes(self, now: int) -> None:
        while self._next_strike is not None and self._next_strike.cycle <= now:
            strike = self._next_strike
            core_id = strike.bit % 2  # strikes land on either core uniformly
            detector = self.detectors.get(strike.block, NoDetector())
            result = detector.check(1)
            event = FaultEvent(cycle=now, core_id=core_id,
                               block=strike.block, bit=strike.bit)
            if self._ev is not None:
                self._ev.emit(FAULT_INJECTED, now, f"core{core_id}",
                              args={"block": strike.block,
                                    "bit": strike.bit})
            if result.detected or result.corrected:
                if result.corrected:
                    # e.g. SECDED on a block: fixed in place, no recovery
                    event.outcome = Outcome.DETECTED_RECOVERED
                    event.detection_latency = result.latency_cycles
                else:
                    event.detection_latency = result.latency_cycles
                    self.eih.raise_interrupt(now + result.latency_cycles,
                                             core_id, strike.block)
                    event.outcome = Outcome.DETECTED_RECOVERED
                if self._ev is not None:
                    self._ev.emit(FAULT_DETECTED, now, f"core{core_id}",
                                  args={"block": strike.block,
                                        "latency": result.latency_cycles,
                                        "corrected": result.corrected})
                self._met.histogram("unsync.detection.latency").observe(
                    result.latency_cycles)
            else:
                event.outcome = Outcome.SDC
                if self._ev is not None:
                    self._ev.emit(FAULT_SDC, now, f"core{core_id}",
                                  args={"block": strike.block})
            self.fault_events.append(event)
            self._arm_next_strike(now)

    def _recover(self, now: int, bad_core: int, block: str,
                 stall_complete: int) -> None:
        """Execute the six-step always-forward recovery."""
        good_core = 1 - bad_core
        good = self.pipelines[good_core]
        bad = self.pipelines[bad_core]
        plan = self.unsync.recovery.plan(
            stall_cycles=max(0, stall_complete - now),
            l1_resident_lines=self.ports[good_core].dcache.resident_count(),
            cb_entries=len(self.cbs[good_core]),
            cb_entry_bytes=self.unsync.cb_entry_bytes,
        )
        freeze_until = now + plan.total_cycles
        for p in self.pipelines:
            p.frozen_until = max(p.frozen_until, freeze_until)
        self._recovering_until = freeze_until
        self.recovery_cycles_total += plan.total_cycles
        if self._ev is not None:
            # emitted at `now` (poll time), keeping the eih track monotonic
            # even though the interrupt was *raised* detection-latency ago
            self._ev.emit(EIH_INTERRUPT, now, "eih",
                          args={"core": bad_core, "block": block})
            self._ev.emit(EIH_RECOVERY, now, "eih", dur=plan.total_cycles,
                          args={"core": bad_core, "block": block,
                                "stall": plan.stall_cycles,
                                "flush": plan.flush_cycles,
                                "regfile_copy": plan.regfile_copy_cycles,
                                "l1_copy": plan.l1_copy_cycles,
                                "cb_copy": plan.cb_copy_cycles})
        self._met.histogram("unsync.recovery.duration").observe(
            plan.total_cycles)

        # steps 2-3: flush the erroneous pipeline, adopt the clean state
        bad.flush_pipeline()
        bad.adopt_state(good)
        bad_port, good_port = self.ports[bad_core], self.ports[good_core]
        if self.unsync.recovery.l1_restore == "copy":
            # the copied L1 arrives warm: mirror the clean core's tags
            bad_port.dcache._sets = {
                idx: [replace_line(l) for l in ways]
                for idx, ways in good_port.dcache._sets.items()}
        else:
            # write-through L1: invalidation is sufficient, refills come
            # from the ECC L2 (cost shows up as post-recovery misses)
            bad_port.dcache.invalidate_all()
        bad_port.icache.invalidate_all()
        # step 5: overwrite the erroneous CB
        self.cbs[bad_core].overwrite_from(self.cbs[good_core])
        # the copy traffic owns the bus for its duration
        self.bus.request(now, max(1, plan.total_cycles - plan.stall_cycles))
        if self.fault_events:
            self.fault_events[-1].recovery_cycles = plan.total_cycles

    # -- results ------------------------------------------------------------
    #: legacy `extra` keys, derived from the named telemetry counters
    LEGACY_EXTRA = {
        "cb_full_stalls": "unsync.cb.full_stalls",
        "cb_pushes": "unsync.cb.pushes",
        "cb_drains": "unsync.cb.drains",
        "recoveries": "unsync.eih.recoveries",
        "recovery_cycles": "unsync.recovery.cycles",
    }

    def scheme_metrics(self) -> Dict[str, float]:
        return {
            "unsync.cb.pushes": float(self.cbs[0].pushes),
            "unsync.cb.drains": float(self.cbs[0].drains),
            "unsync.cb.full_stalls": float(
                sum(cb.full_stalls for cb in self.cbs)),
            "unsync.cb.max_occupancy": float(
                max(cb.max_occupancy for cb in self.cbs)),
            "unsync.eih.interrupts": float(self.eih.interrupts_received),
            "unsync.eih.recoveries": float(self.eih.recoveries_signalled),
            "unsync.recovery.cycles": float(self.recovery_cycles_total),
        }

    def result(self):
        res = super().result()
        res.fault_events = list(self.fault_events)
        return res


def replace_line(line):
    """Copy one cache line's metadata (used by the recovery L1 mirror)."""
    from repro.mem.cache import Line
    return Line(tag=line.tag, valid=line.valid, dirty=line.dirty,
                last_use=line.last_use)
