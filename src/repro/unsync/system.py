"""UnSyncSystem: the full architecture wired together.

Composition (Figure 1): two cores with write-through L1s -> per-core
Communication Buffers -> one copy drains to the shared ECC L2 when the bus
is free; parity/DMR detectors on every sequential block -> EIH -> pair-wide
always-forward recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.pipeline import CommitGate
from repro.core.rob import ROBEntry
from repro.faults.detection import Detector, NoDetector
from repro.faults.events import FaultEvent, Outcome
from repro.faults.injector import (
    BlockInventory, FaultInjector, Strike, UNSYNC_DETECTORS,
)
from repro.isa.program import Program
from repro.mem.cache import WritePolicy
from repro.redundancy.pair import DualCoreSystem
from repro.telemetry import Telemetry
from repro.telemetry.events import (
    CB_DRAIN, CB_GATE, EIH_INTERRUPT, EIH_RECOVERY, FAULT_DETECTED,
    FAULT_DUE, FAULT_INJECTED, FAULT_MULTIBIT, FAULT_SDC, RECOVERY_ABORT,
    RECOVERY_REENTRY,
)
from repro.unsync.comm_buffer import CBEntry, CommBuffer
from repro.unsync.eih import EIHConfig, ErrorInterruptHandler
from repro.unsync.recovery import RecoveryCostModel


@dataclass(frozen=True)
class UnSyncConfig:
    """UnSync-specific knobs on top of the Table I system."""

    #: CB entries per core. The default is the 2 KB operating point —
    #: Figure 6's knee, where CB back-pressure vanishes; the paper's
    #: hardware synthesis point (10 entries, Table II) is what
    #: ``repro.hwcost`` charges, and Figure 6 sweeps the full range via
    #: :meth:`CommBuffer.from_kilobytes`.
    cb_entries: int = 170
    cb_entry_bytes: int = 12
    #: bytes actually moved per drain: the 32-bit data + address pair
    #: packs into one 64-bit bus beat.
    drain_payload_bytes: int = 8
    eih: EIHConfig = field(default_factory=EIHConfig)
    recovery: RecoveryCostModel = field(default_factory=RecoveryCostModel)
    #: how many times an in-progress recovery may abort-and-restart when
    #: a new strike lands inside its window before the pair degrades to a
    #: detected-unrecoverable (DUE) outcome
    recovery_retry_budget: int = 2
    #: paired-strike vulnerability window: a detected strike on the clean
    #: core within this many cycles of a recovery makes the copy source
    #: suspect -> DUE. ``None`` derives signal + stall latency (the EIH's
    #: own detection-to-quiesce window).
    pair_due_window: Optional[int] = None

    def due_window(self) -> int:
        if self.pair_due_window is not None:
            return self.pair_due_window
        return self.eih.signal_latency + self.eih.stall_latency


class _UnSyncGate(CommitGate):
    """Per-core commit gate: stores need a CB slot to retire."""

    def __init__(self, system: "UnSyncSystem", core_id: int) -> None:
        self.system = system
        self.core_id = core_id
        #: this core's CB, bound once (the CommBuffer object is stable;
        #: recovery mutates its contents, never replaces it)
        self._cb = system.cbs[core_id]
        #: telemetry event sink (None when disabled) and the open
        #: commit-stall episode, reported as one cb.gate span per episode
        #: rather than one event per stalled cycle
        self._ev = system._ev
        self._ev_track = f"core{core_id}.cb"
        self._stall_start: Optional[int] = None

    def can_commit(self, entry: ROBEntry, now: int) -> bool:
        if entry.ins.is_store:
            if self._cb.can_accept():
                if self._stall_start is not None:
                    self._ev.emit(CB_GATE, self._stall_start, self._ev_track,
                                  dur=now - self._stall_start)
                    self._stall_start = None
                return True
            if self._ev is not None and self._stall_start is None:
                self._stall_start = now
            return False
        return True

    def on_commit(self, entry: ROBEntry, now: int) -> None:
        if entry.ins.is_store:
            self._cb.push(CBEntry(
                seq=entry.seq, addr=entry.mem_addr,
                value=entry.store_value, width=entry.ins.mem_width))


class UnSyncSystem(DualCoreSystem):
    """Two un-synchronized redundant cores with CB + EIH recovery."""

    scheme = "unsync"

    def __init__(self, program: Program,
                 config: Optional[SystemConfig] = None,
                 unsync: Optional[UnSyncConfig] = None,
                 injector: Optional[FaultInjector] = None,
                 detectors: Optional[Dict[str, Detector]] = None,
                 name: Optional[str] = None,
                 telemetry: Optional[Telemetry] = None,
                 **uncore) -> None:
        self.unsync = unsync or UnSyncConfig()
        self.cbs: List[CommBuffer] = [
            CommBuffer(self.unsync.cb_entries, self.unsync.cb_entry_bytes)
            for _ in range(2)]
        self.eih = ErrorInterruptHandler(self.unsync.eih)
        self.injector = injector
        self.detectors = detectors if detectors is not None else dict(UNSYNC_DETECTORS)
        self.fault_events: List[FaultEvent] = []
        self.recovery_cycles_total = 0
        self.due_count = 0
        self.recovery_reentries = 0
        self.recovery_aborts = 0
        self._recovering_until = 0
        self._recovery_retries_left = self.unsync.recovery_retry_budget
        #: cycle of the last *detected* strike per core (paired-strike
        #: DUE window checks; -inf sentinel keeps arithmetic branchless)
        self._last_detected_strike = [-(10 ** 9), -(10 ** 9)]
        self._next_strike: Optional[Strike] = None
        # UnSync *requires* write-through L1s (Sec III-C-1)
        cfg = config or SystemConfig.table1()
        if cfg.dcache.policy is not WritePolicy.WRITE_THROUGH:
            raise ValueError(
                "UnSync requires a write-through L1 D-cache (see Figure 2's "
                "unrecoverable write-back scenario)")
        super().__init__(program, cfg, name=name, telemetry=telemetry,
                         **uncore)
        if self.injector is not None:
            # Injected runs must keep the commit-time image an independent
            # re-execution, never a replay of fetch-time records.
            for p in self.pipelines:
                p.commit_replay = "always"
            self._arm_next_strike(0)

    # -- construction hooks --------------------------------------------------
    def make_gate(self, core_id: int) -> CommitGate:
        return _UnSyncGate(self, core_id)

    # -- per-cycle engine ------------------------------------------------------
    def on_cycle(self, now: int) -> None:
        if self.injector is not None:
            self._process_strikes(now)
        if self.eih._pending:
            pending = self.eih.poll(now)
            if pending is not None:
                event = self.eih.last_popped.token
                if now < self._recovering_until:
                    self._reenter_recovery(now, *pending, event=event)
                else:
                    self._recovery_retries_left = \
                        self.unsync.recovery_retry_budget
                    self._recover(now, *pending, event=event)
        if now >= self._recovering_until:
            self._drain(now)

    def _drain(self, now: int) -> None:
        cb0, cb1 = self.cbs
        f0 = cb0._fifo
        f1 = cb1._fifo
        drained = 0
        while f0 and f1:
            h0 = f0[0]
            h1 = f1[0]
            if h0.seq != h1.seq:
                # one core is mid-recovery resync; only the common prefix
                # is drainable and the heads disagree — wait.
                break
            xfer = self.bus.transfer_cycles(self.unsync.drain_payload_bytes)
            if self.bus.try_request(now, xfer) < 0:
                break
            cb0.pop()
            cb1.pop()
            drained += 1
            # one copy of the data goes to the ECC L2
            self.l2.access(h0.addr + self.addr_offset, is_write=True, now=now)
        if drained and self._ev is not None:
            self._ev.emit(CB_DRAIN, now, "cb",
                          args={"n": drained, "left": len(f0)})

    # -- faults ---------------------------------------------------------------
    def _arm_next_strike(self, now: int) -> None:
        self._next_strike = self.injector.next_strike(now)

    def _process_strikes(self, now: int) -> None:
        while self._next_strike is not None and self._next_strike.cycle <= now:
            strike = self._next_strike
            core_id = strike.core_id()
            event = FaultEvent(cycle=now, core_id=core_id,
                               block=strike.block, bit=strike.bit)
            if self._ev is not None:
                self._ev.emit(FAULT_INJECTED, now, f"core{core_id}",
                              args={"block": strike.block,
                                    "bit": strike.bit,
                                    "flipped": strike.flipped_bits})
                if strike.flipped_bits > 1:
                    self._ev.emit(FAULT_MULTIBIT, now, f"core{core_id}",
                                  args={"block": strike.block,
                                        "flipped": strike.flipped_bits})
            if strike.block == "eih_pending":
                self._strike_eih_queue(now, event)
            elif strike.block == "recovery_copy":
                self._strike_recovery_copy(now, core_id, event)
            else:
                self._strike_block(now, core_id, strike, event)
            self.fault_events.append(event)
            self._arm_next_strike(now)

    def _strike_block(self, now: int, core_id: int, strike: Strike,
                      event: FaultEvent) -> None:
        """The standard detector-adjudicated path (any inventory block)."""
        detector = self.detectors.get(strike.block, NoDetector())
        result = detector.check(strike.flipped_bits)
        if result.detected or result.corrected:
            event.detection_latency = result.latency_cycles
            event.outcome = Outcome.DETECTED_RECOVERED
            if not result.corrected:
                # corrected (e.g. SECDED) is fixed in place, no recovery;
                # detected-only raises the pair-wide recovery interrupt
                self._last_detected_strike[core_id] = now
                self.eih.raise_interrupt(now + result.latency_cycles,
                                         core_id, strike.block, token=event)
            if self._ev is not None:
                self._ev.emit(FAULT_DETECTED, now, f"core{core_id}",
                              args={"block": strike.block,
                                    "latency": result.latency_cycles,
                                    "corrected": result.corrected})
            self._met.histogram("unsync.detection.latency").observe(
                result.latency_cycles)
        else:
            # even-weight clusters defeat 1-bit parity: a true SDC
            event.outcome = Outcome.SDC
            if self._ev is not None:
                self._ev.emit(FAULT_SDC, now, f"core{core_id}",
                              args={"block": strike.block,
                                    "flipped": strike.flipped_bits})

    def _strike_eih_queue(self, now: int, event: FaultEvent) -> None:
        """A strike on the EIH pending queue destroys a queued interrupt.

        The destroyed interrupt's fault *was* detected, but its recovery
        signal is gone — that error is now detected-unrecoverable. The
        queue strike itself corrupts only bookkeeping state: masked.
        """
        event.outcome = Outcome.MASKED
        dropped = self.eih.drop_latest_pending()
        if dropped is None:
            return
        lost: Optional[FaultEvent] = dropped.token
        if lost is not None:
            lost.outcome = Outcome.DETECTED_UNRECOVERABLE
        self.due_count += 1
        if self._ev is not None:
            self._ev.emit(FAULT_DUE, now, "eih",
                          args={"block": dropped.block,
                                "core": dropped.core_id,
                                "reason": "interrupt-lost"})

    def _strike_recovery_copy(self, now: int, core_id: int,
                              event: FaultEvent) -> None:
        """A strike on the in-flight recovery copy.

        Outside a recovery window there is no copy in flight (masked);
        inside one, the copy engine's DMR catches the corruption and the
        recovery must abort and restart.
        """
        if now >= self._recovering_until:
            event.outcome = Outcome.MASKED
            return
        event.outcome = Outcome.DETECTED_RECOVERED
        self._last_detected_strike[core_id] = now
        self.eih.raise_interrupt(now, core_id, "recovery_copy", token=event)
        if self._ev is not None:
            self._ev.emit(FAULT_DETECTED, now, f"core{core_id}",
                          args={"block": "recovery_copy", "latency": 0,
                                "corrected": False})

    def _reenter_recovery(self, now: int, bad_core: int, block: str,
                          stall_complete: int,
                          event: Optional[FaultEvent]) -> None:
        """A new detection landed while a recovery was already running.

        With retry budget left the in-progress copy is abandoned and the
        whole recovery restarts (its cycles are sunk cost); once the
        budget is exhausted the pair gives up: detected, unrecoverable.
        """
        self.recovery_reentries += 1
        if self._ev is not None:
            self._ev.emit(RECOVERY_REENTRY, now, "eih",
                          args={"core": bad_core, "block": block,
                                "retries_left": self._recovery_retries_left})
        if self._recovery_retries_left > 0:
            self._recovery_retries_left -= 1
            self.recovery_aborts += 1
            if self._ev is not None:
                self._ev.emit(RECOVERY_ABORT, now, "eih",
                              args={"core": bad_core, "block": block})
            self._recover(now, bad_core, block, stall_complete, event=event)
        else:
            self._declare_due(now, bad_core, block, event,
                              reason="retry-budget-exhausted")

    def _declare_due(self, now: int, bad_core: int, block: str,
                     event: Optional[FaultEvent], reason: str) -> None:
        """Graceful degradation: a detected error the pair cannot repair."""
        if event is not None:
            event.outcome = Outcome.DETECTED_UNRECOVERABLE
        self.due_count += 1
        if self._ev is not None:
            self._ev.emit(FAULT_DUE, now, "eih",
                          args={"core": bad_core, "block": block,
                                "reason": reason})

    def _recover(self, now: int, bad_core: int, block: str,
                 stall_complete: int,
                 event: Optional[FaultEvent] = None) -> None:
        """Execute the six-step always-forward recovery."""
        good_core = 1 - bad_core
        # the paper's unrecoverable case: the copy *source* was itself
        # struck inside the detection window (or its own interrupt is
        # still in flight) — there is no clean core to go forward from
        window = self.unsync.due_window()
        if (self.eih.pending_for(good_core)
                or now - self._last_detected_strike[good_core] <= window):
            self._declare_due(now, bad_core, block, event,
                              reason="paired-strike")
            return
        good = self.pipelines[good_core]
        bad = self.pipelines[bad_core]
        plan = self.unsync.recovery.plan(
            stall_cycles=max(0, stall_complete - now),
            l1_resident_lines=self.ports[good_core].dcache.resident_count(),
            cb_entries=len(self.cbs[good_core]),
            cb_entry_bytes=self.unsync.cb_entry_bytes,
        )
        freeze_until = now + plan.total_cycles
        for p in self.pipelines:
            p.frozen_until = max(p.frozen_until, freeze_until)
        self._recovering_until = max(self._recovering_until, freeze_until)
        self.recovery_cycles_total += plan.total_cycles
        if self.injector is not None:
            # adversarial injectors may chase the recovery window; any
            # strike queued just now must preempt the pre-drawn one
            self.injector.on_recovery(now, plan.total_cycles)
            self._next_strike = self.injector.preempt(self._next_strike)
        if self._ev is not None:
            # emitted at `now` (poll time), keeping the eih track monotonic
            # even though the interrupt was *raised* detection-latency ago
            self._ev.emit(EIH_INTERRUPT, now, "eih",
                          args={"core": bad_core, "block": block})
            self._ev.emit(EIH_RECOVERY, now, "eih", dur=plan.total_cycles,
                          args={"core": bad_core, "block": block,
                                "stall": plan.stall_cycles,
                                "flush": plan.flush_cycles,
                                "regfile_copy": plan.regfile_copy_cycles,
                                "l1_copy": plan.l1_copy_cycles,
                                "cb_copy": plan.cb_copy_cycles})
        self._met.histogram("unsync.recovery.duration").observe(
            plan.total_cycles)

        # steps 2-3: flush the erroneous pipeline, adopt the clean state
        bad.flush_pipeline()
        bad.adopt_state(good)
        bad_port, good_port = self.ports[bad_core], self.ports[good_core]
        if self.unsync.recovery.l1_restore == "copy":
            # the copied L1 arrives warm: mirror the clean core's tags
            bad_port.dcache._sets = {
                idx: [replace_line(l) for l in ways]
                for idx, ways in good_port.dcache._sets.items()}
        else:
            # write-through L1: invalidation is sufficient, refills come
            # from the ECC L2 (cost shows up as post-recovery misses)
            bad_port.dcache.invalidate_all()
        bad_port.icache.invalidate_all()
        # step 5: overwrite the erroneous CB
        self.cbs[bad_core].overwrite_from(self.cbs[good_core])
        # the copy traffic owns the bus for its duration
        self.bus.request(now, max(1, plan.total_cycles - plan.stall_cycles))
        if self.fault_events:
            self.fault_events[-1].recovery_cycles = plan.total_cycles

    # -- results ------------------------------------------------------------
    #: legacy `extra` keys, derived from the named telemetry counters
    LEGACY_EXTRA = {
        "cb_full_stalls": "unsync.cb.full_stalls",
        "cb_pushes": "unsync.cb.pushes",
        "cb_drains": "unsync.cb.drains",
        "recoveries": "unsync.eih.recoveries",
        "recovery_cycles": "unsync.recovery.cycles",
    }

    def scheme_metrics(self) -> Dict[str, float]:
        return {
            "unsync.cb.pushes": float(self.cbs[0].pushes),
            "unsync.cb.drains": float(self.cbs[0].drains),
            "unsync.cb.full_stalls": float(
                sum(cb.full_stalls for cb in self.cbs)),
            "unsync.cb.max_occupancy": float(
                max(cb.max_occupancy for cb in self.cbs)),
            "unsync.eih.interrupts": float(self.eih.interrupts_received),
            "unsync.eih.recoveries": float(self.eih.recoveries_signalled),
            "unsync.eih.dropped_interrupts": float(
                self.eih.interrupts_dropped),
            "unsync.recovery.cycles": float(self.recovery_cycles_total),
            "unsync.recovery.reentries": float(self.recovery_reentries),
            "unsync.recovery.aborts": float(self.recovery_aborts),
            "unsync.due.count": float(self.due_count),
        }

    def result(self):
        res = super().result()
        res.fault_events = list(self.fault_events)
        return res


def replace_line(line):
    """Copy one cache line's metadata (used by the recovery L1 mirror)."""
    from repro.mem.cache import Line
    return Line(tag=line.tag, valid=line.valid, dirty=line.dirty,
                last_use=line.last_use)
