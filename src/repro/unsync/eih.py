"""Error Interrupt Handler (EIH).

One EIH serves each core-pair. Detection blocks raise an interrupt to the
EIH; the EIH broadcasts RECOVERY to both cores and the CB. The paper's
Figure 2 discussion is explicit that this signalling takes "a non-zero
number of cycles" — that window is where the write-back-cache
unrecoverability argument lives, so the latency is a first-class knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class EIHConfig:
    """Latency parameters of the detection-to-recovery path."""

    #: cycles from a detector firing to the EIH receiving the interrupt
    signal_latency: int = 2
    #: cycles from EIH broadcast to both pipelines being fully stalled
    stall_latency: int = 3


@dataclass
class _PendingInterrupt:
    raise_cycle: int
    core_id: int
    block: str


class ErrorInterruptHandler:
    """Collects error interrupts and schedules pair-wide recovery."""

    def __init__(self, config: Optional[EIHConfig] = None) -> None:
        self.config = config or EIHConfig()
        self._pending: List[_PendingInterrupt] = []
        self.interrupts_received = 0
        self.recoveries_signalled = 0

    def raise_interrupt(self, now: int, core_id: int, block: str) -> None:
        """A detector on ``core_id`` fired at cycle ``now``."""
        self._pending.append(_PendingInterrupt(now, core_id, block))
        self.interrupts_received += 1

    def poll(self, now: int) -> Optional[Tuple[int, str, int]]:
        """The recovery the pair must begin at cycle ``now``, if any.

        Returns ``(erroneous_core_id, block, stall_complete_cycle)`` once
        ``signal_latency`` has elapsed since the interrupt;
        ``stall_complete_cycle`` is when both pipelines are quiesced and
        state copying may begin.
        """
        for i, intr in enumerate(self._pending):
            if now >= intr.raise_cycle + self.config.signal_latency:
                self._pending.pop(i)
                self.recoveries_signalled += 1
                return (intr.core_id, intr.block,
                        now + self.config.stall_latency)
        return None

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)
