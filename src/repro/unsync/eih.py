"""Error Interrupt Handler (EIH).

One EIH serves each core-pair. Detection blocks raise an interrupt to the
EIH; the EIH broadcasts RECOVERY to both cores and the CB. The paper's
Figure 2 discussion is explicit that this signalling takes "a non-zero
number of cycles" — that window is where the write-back-cache
unrecoverability argument lives, so the latency is a first-class knob.

Ordering contract: when several interrupts are deliverable at the same
poll, they pop in ``(raise_cycle, core_id, block)`` order *regardless of
the order they were raised in* — simultaneous detections on both cores
must produce the same recovery sequence (and therefore byte-identical
campaign JSONL) on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class EIHConfig:
    """Latency parameters of the detection-to-recovery path."""

    #: cycles from a detector firing to the EIH receiving the interrupt
    signal_latency: int = 2
    #: cycles from EIH broadcast to both pipelines being fully stalled
    stall_latency: int = 3


@dataclass(slots=True)
class _PendingInterrupt:
    raise_cycle: int
    core_id: int
    block: str
    #: opaque caller payload (UnSync attaches the FaultEvent so a dropped
    #: or unrecoverable interrupt can be re-adjudicated)
    token: Any = None

    def order_key(self) -> Tuple[int, int, str]:
        return (self.raise_cycle, self.core_id, self.block)


class ErrorInterruptHandler:
    """Collects error interrupts and schedules pair-wide recovery."""

    def __init__(self, config: Optional[EIHConfig] = None) -> None:
        self.config = config or EIHConfig()
        self._pending: List[_PendingInterrupt] = []
        self.interrupts_received = 0
        self.recoveries_signalled = 0
        self.interrupts_dropped = 0
        #: the interrupt most recently returned by :meth:`poll` (the
        #: system reads its ``token`` — poll's tuple shape is frozen API)
        self.last_popped: Optional[_PendingInterrupt] = None

    def raise_interrupt(self, now: int, core_id: int, block: str,
                        token: Any = None) -> None:
        """A detector on ``core_id`` fired at cycle ``now``."""
        self._pending.append(_PendingInterrupt(now, core_id, block, token))
        self.interrupts_received += 1

    def poll(self, now: int) -> Optional[Tuple[int, str, int]]:
        """The recovery the pair must begin at cycle ``now``, if any.

        Returns ``(erroneous_core_id, block, stall_complete_cycle)`` once
        ``signal_latency`` has elapsed since the interrupt;
        ``stall_complete_cycle`` is when both pipelines are quiesced and
        state copying may begin. Deliverable interrupts pop in
        ``(raise_cycle, core_id, block)`` order, independent of raise
        order.
        """
        ready = [intr for intr in self._pending
                 if now >= intr.raise_cycle + self.config.signal_latency]
        if not ready:
            return None
        intr = min(ready, key=_PendingInterrupt.order_key)
        self._pending.remove(intr)
        self.recoveries_signalled += 1
        self.last_popped = intr
        return (intr.core_id, intr.block, now + self.config.stall_latency)

    def drop_latest_pending(self) -> Optional[_PendingInterrupt]:
        """A strike on the pending queue destroys its youngest record.

        Returns the dropped interrupt (deterministically the max
        ``(raise_cycle, core_id, block)``) so the caller can re-adjudicate
        the fault it carried, or ``None`` when the queue is empty.
        """
        if not self._pending:
            return None
        intr = max(self._pending, key=_PendingInterrupt.order_key)
        self._pending.remove(intr)
        self.interrupts_dropped += 1
        return intr

    def pending_for(self, core_id: int) -> bool:
        """Whether an undelivered interrupt from ``core_id`` is queued."""
        return any(intr.core_id == core_id for intr in self._pending)

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)
