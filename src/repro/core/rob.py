"""Re-order buffer.

The ROB is the central bookkeeping structure of the pipeline and the
structure whose *occupancy* Reunion's CHECK stage inflates (Fig 5): an
instruction's entry lives from dispatch until commit, and commit may be
delayed by a redundancy gate long after execution completes.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterator, Optional

from repro.isa.instructions import Instruction


class EntryState(enum.Enum):
    DISPATCHED = "dispatched"   # in ROB + IQ, waiting for operands/FU
    ISSUED = "issued"           # executing on an FU
    COMPLETED = "completed"     # result broadcast; waiting to commit


@dataclass(slots=True, eq=False)
class ROBEntry:
    """One in-flight instruction.

    ``slots=True``: one of these is allocated per dynamic instruction and
    threaded through IQ/LSQ/ROB/writeback, so the per-instance dict is
    measurable overhead at campaign scale. ``eq=False``: entries are
    compared (and removed from the IQ/LSQ) by identity — two distinct
    in-flight instructions are never "equal", and field-wise comparison
    made ``list.remove`` a hot spot.
    """

    seq: int                    # global dynamic sequence number
    ins: Instruction
    pc: int
    state: EntryState = EntryState.DISPATCHED
    #: cycle at which execution finishes (set at issue)
    complete_cycle: int = -1
    #: wake-up bookkeeping: number of producers that have not issued yet
    #: (decremented by the producer when it issues), and the earliest
    #: cycle by which every issued producer has broadcast its result.
    #: The entry may issue once ``pending == 0 and ready_at <= now``.
    pending: int = 0
    ready_at: int = 0
    #: consumers to notify when this entry issues (lazily allocated;
    #: entries of one pipeline only, so a flush drops both sides at once)
    waiters: Optional[list] = None
    #: functional results, filled at dispatch (eager execution)
    result: Optional[int] = None
    mem_addr: Optional[int] = None
    store_value: Optional[int] = None
    branch_taken: bool = False
    branch_target: int = 0
    mispredicted: bool = False
    #: Reunion: index of the fingerprint group this entry belongs to
    fp_group: int = -1

    @property
    def is_store(self) -> bool:
        return self.ins.is_store

    @property
    def is_load(self) -> bool:
        return self.ins.is_load


class ROB:
    """Bounded FIFO of :class:`ROBEntry`."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("ROB capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[ROBEntry] = deque()
        # occupancy statistics (for the Fig 5 discussion)
        self.occupancy_samples = 0
        self.occupancy_sum = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ROBEntry]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def head(self) -> Optional[ROBEntry]:
        return self._entries[0] if self._entries else None

    def push(self, entry: ROBEntry) -> None:
        if self.full:
            raise RuntimeError("dispatch into full ROB")
        self._entries.append(entry)

    def pop(self) -> ROBEntry:
        return self._entries.popleft()

    def flush(self) -> int:
        """Drop every in-flight entry (recovery); returns count dropped."""
        n = len(self._entries)
        self._entries.clear()
        return n

    def sample_occupancy(self) -> None:
        self.occupancy_samples += 1
        self.occupancy_sum += len(self._entries)

    def mean_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_sum / self.occupancy_samples
