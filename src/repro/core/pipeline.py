"""The cycle-stepped out-of-order pipeline.

One :class:`Pipeline` models one core. Each call to :meth:`Pipeline.step`
advances one clock through, in order: commit -> writeback -> issue ->
dispatch -> fetch (reverse pipeline order, the standard trick so that a
slot freed this cycle is usable next cycle, not this one).

Functional execution is *eager*: an oracle interpreter runs at fetch,
attaching exact results, addresses and branch outcomes to each fetched
instruction. A second architectural image advances at commit. In a
fault-free run both images and the golden executor agree bit-for-bit
(tests enforce this); fault experiments corrupt one of the images
deliberately.

Redundancy schemes attach at three points through a :class:`CommitGate`:

* ``dispatch_allowed``   — Reunion's serializing-instruction drain;
* ``on_complete``        — Reunion's CHECK-stage buffer admission
  (a full CSB holds instructions in the execute stage);
* ``can_commit``/``on_commit`` — fingerprint verification (Reunion) and
  Communication Buffer admission (UnSync).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.core.branch import BimodalPredictor
from repro.core.config import CoreConfig
from repro.core.iq import IssueQueue
from repro.core.lsq import LSQ
from repro.core.rob import ROB, ROBEntry, EntryState
from repro.isa.golden import ArchState, StepInfo, step_state
from repro.isa.instructions import InstrClass, Instruction, Opcode
from repro.isa.program import Program
from repro.mem.hierarchy import MemPort


class CommitGate:
    """Hook interface for redundancy schemes. The default gates nothing."""

    def dispatch_allowed(self, now: int) -> bool:
        """False while the front end must stall (serializing drains)."""
        return True

    def on_dispatch(self, entry: ROBEntry, now: int) -> None:
        """Observe a dispatch (fingerprint-group assignment lives here)."""

    def on_complete(self, entry: ROBEntry, now: int) -> bool:
        """Admit a finishing instruction into the post-execute buffer.

        Returning False leaves the instruction in the execute stage; the
        pipeline retries every cycle (Reunion: CSB full).
        """
        return True

    def can_commit(self, entry: ROBEntry, now: int) -> bool:
        """May the ROB head retire this cycle?"""
        return True

    def on_commit(self, entry: ROBEntry, now: int) -> None:
        """Observe retirement (stores are handed downstream here)."""


class NullGate(CommitGate):
    """Explicit no-op gate for the unprotected baseline."""


@dataclass
class PipelineStats:
    """Per-core run statistics."""

    cycles: int = 0
    committed: int = 0
    dispatch_stall_gate: int = 0
    dispatch_stall_rob: int = 0
    dispatch_stall_iq: int = 0
    dispatch_stall_lsq: int = 0
    commit_stall_gate: int = 0
    writeback_stall_gate: int = 0
    fetch_redirects: int = 0
    serializing_committed: int = 0
    stores_committed: int = 0
    loads_committed: int = 0

    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


@dataclass
class _Fetched:
    """Fetch-buffer slot: a fetched instruction plus its oracle record."""

    seq: int
    info: StepInfo
    fetch_done: int


class Pipeline:
    """One out-of-order core executing one :class:`Program`."""

    def __init__(self,
                 program: Program,
                 config: CoreConfig,
                 memport: MemPort,
                 gate: Optional[CommitGate] = None,
                 name: str = "core0") -> None:
        self.program = program
        self.config = config
        self.mem = memport
        self.gate = gate or NullGate()
        self.name = name

        # oracle (fetch-time) and architectural (commit-time) state
        self.oracle = ArchState()
        self.oracle.load_data(program)
        self.oracle.pc = program.entry_pc
        self.committed_state = ArchState()
        self.committed_state.load_data(program)
        self.committed_state.pc = program.entry_pc

        self.rob = ROB(config.rob_entries)
        self.iq = IssueQueue(config.iq_entries)
        self.lsq = LSQ(config.lsq_entries)
        self.predictor = BimodalPredictor(config.predictor_entries)

        self._fetch_buffer: Deque[_Fetched] = deque()
        self._fetch_buffer_cap = 2 * config.fetch_width
        self._fetch_ready_at = 0
        #: seq of the mispredicted branch fetch is blocked on (or None)
        self._fetch_blocked_on: Optional[int] = None
        self._next_seq = 0
        self._halt_fetched = False
        self._halt_seq: Optional[int] = None
        #: seq -> in-flight ROB entry, for wake-up and redirect checks
        self._inflight: Dict[int, ROBEntry] = {}
        #: architectural register -> seq of last in-flight producer
        self._reg_producer: Dict[int, int] = {}
        #: divider busy-until cycle (unpipelined unit)
        self._div_free_at = 0
        #: external stall (recovery freeze): no stage runs before this cycle
        self.frozen_until = 0
        #: optional PipelineTracer (see repro.core.trace); None = no cost
        self.tracer = None

        self.stats = PipelineStats()
        self.done = False

    # ------------------------------------------------------------------
    # public stepping
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        """Advance one clock cycle (cycle number ``now``)."""
        if self.done:
            return
        self.stats.cycles += 1
        self.rob.sample_occupancy()
        self.iq.sample_occupancy()
        self.lsq.sample_occupancy()
        if now < self.frozen_until:
            return
        self._commit(now)
        self._writeback(now)
        self._issue(now)
        self._dispatch(now)
        self._fetch(now)

    # ------------------------------------------------------------------
    # stages (reverse order)
    # ------------------------------------------------------------------
    def _commit(self, now: int) -> None:
        width = self.config.commit_width
        for _ in range(width):
            head = self.rob.head()
            if head is None:
                return
            if head.state is not EntryState.COMPLETED or head.complete_cycle >= now:
                return
            if not self.gate.can_commit(head, now):
                self.stats.commit_stall_gate += 1
                return
            self.rob.pop()
            if self.tracer is not None:
                self.tracer.commit(head.seq, now)
            del self._inflight[head.seq]
            if self._reg_producer.get(head.ins.rd) == head.seq:
                # producer leaves flight; later readers find the ARF value
                del self._reg_producer[head.ins.rd]
            # architectural replay (exact semantics, second image)
            ins = head.ins
            if ins.op is Opcode.HALT:
                self.done = True
                self.gate.on_commit(head, now)
                return
            info = step_state(self.committed_state, ins)
            if head.is_store:
                # write-through L1 write at retirement; latency is absorbed
                # by the store path (write buffer / CB), not commit.
                self.mem.store_latency(info.mem_addr, now)
                self.stats.stores_committed += 1
            if head.is_load:
                self.stats.loads_committed += 1
            if ins.is_serializing:
                self.stats.serializing_committed += 1
            if head.is_load or head.is_store:
                self.lsq.remove(head)
            self.stats.committed += 1
            self.gate.on_commit(head, now)

    def _writeback(self, now: int) -> None:
        # transition finished executions to COMPLETED, subject to the
        # gate's post-execute buffer (CSB) admission.
        for entry in self.rob:
            if entry.state is EntryState.ISSUED and entry.complete_cycle <= now:
                if self.gate.on_complete(entry, now):
                    entry.state = EntryState.COMPLETED
                    if self.tracer is not None:
                        self.tracer.complete(entry.seq, entry.complete_cycle)
                else:
                    self.stats.writeback_stall_gate += 1

    def _ready(self, entry: ROBEntry, now: int) -> bool:
        for dep_seq in entry.deps:
            producer = self._inflight.get(dep_seq)
            if producer is None:
                continue  # already committed
            if producer.complete_cycle < 0 or producer.complete_cycle > now:
                return False
            if producer.state is EntryState.DISPATCHED:
                return False
        return True

    def _issue(self, now: int) -> None:
        cfg = self.config
        alu_left = cfg.n_alu
        mul_left = cfg.n_mul
        mem_left = cfg.n_mem_ports
        width_left = cfg.issue_width
        issued: List[ROBEntry] = []
        for entry in self.iq:
            if width_left == 0:
                break
            if not self._ready(entry, now):
                continue
            ins = entry.ins
            cls = ins.iclass
            latency: Optional[int] = None
            if cls is InstrClass.ALU or cls in (InstrClass.NOP, InstrClass.HALT,
                                                InstrClass.BRANCH, InstrClass.JUMP):
                if alu_left == 0:
                    continue
                alu_left -= 1
                latency = cfg.alu_latency
            elif cls is InstrClass.MUL:
                if mul_left == 0:
                    continue
                mul_left -= 1
                latency = cfg.mul_latency
            elif cls is InstrClass.DIV:
                if self._div_free_at > now:
                    continue
                latency = cfg.div_latency
                self._div_free_at = now + latency
            elif cls is InstrClass.LOAD:
                if mem_left == 0:
                    continue
                mem_left -= 1
                fwd = self.lsq.forwarding_store(entry)
                if fwd is not None:
                    latency = 1
                else:
                    latency = self.mem.load_latency(entry.mem_addr, now)
            elif cls is InstrClass.STORE:
                # address generation only; the write happens at commit
                if mem_left == 0:
                    continue
                mem_left -= 1
                latency = 1
            elif cls is InstrClass.SERIALIZING:
                # Traps/barriers execute as cheap ops here; their *cost* is
                # scheme-defined (Reunion blocks dispatch until the group
                # containing them verifies; UnSync charges nothing), which
                # is exactly the Figure 4 comparison.
                if ins.op is Opcode.SWAP:
                    if mem_left == 0:
                        continue
                    mem_left -= 1
                    latency = self.mem.load_latency(entry.mem_addr, now)
                else:
                    latency = cfg.alu_latency
            else:  # pragma: no cover - exhaustive
                raise AssertionError(f"unhandled class {cls}")

            entry.state = EntryState.ISSUED
            entry.complete_cycle = now + latency
            if self.tracer is not None:
                self.tracer.issue(entry.seq, now)
            issued.append(entry)
            width_left -= 1
        for entry in issued:
            self.iq.remove(entry)

    def _dispatch(self, now: int) -> None:
        for _ in range(self.config.dispatch_width):
            if not self._fetch_buffer:
                return
            slot = self._fetch_buffer[0]
            if slot.fetch_done > now:
                return
            if not self.gate.dispatch_allowed(now):
                self.stats.dispatch_stall_gate += 1
                return
            ins = slot.info.ins
            if self.rob.full:
                self.stats.dispatch_stall_rob += 1
                return
            if self.iq.full:
                self.stats.dispatch_stall_iq += 1
                return
            is_mem = ins.is_mem
            if is_mem and self.lsq.full:
                self.stats.dispatch_stall_lsq += 1
                return
            self._fetch_buffer.popleft()

            entry = ROBEntry(seq=slot.seq, ins=ins, pc=slot.info.pc)
            entry.result = slot.info.result
            entry.mem_addr = slot.info.mem_addr
            entry.store_value = slot.info.store_value
            entry.branch_taken = slot.info.taken
            entry.branch_target = slot.info.next_pc
            entry.deps = tuple(
                self._reg_producer[r] for r in ins.src_regs()
                if r != 0 and r in self._reg_producer)
            self.rob.push(entry)
            if self.tracer is not None:
                self.tracer.dispatch(entry.seq, now)
            self._inflight[entry.seq] = entry
            self.iq.push(entry)
            if is_mem:
                self.lsq.push(entry)
            if ins.writes_reg and ins.rd != 0:
                self._reg_producer[ins.rd] = entry.seq
            self.gate.on_dispatch(entry, now)

    def _fetch(self, now: int) -> None:
        if self._halt_fetched or now < self._fetch_ready_at:
            return
        if self._fetch_blocked_on is not None:
            branch = self._inflight.get(self._fetch_blocked_on)
            if branch is None:
                if any(f.seq == self._fetch_blocked_on
                       for f in self._fetch_buffer):
                    return  # branch not even dispatched yet
                # branch already committed; redirect cost already absorbed
                self._fetch_blocked_on = None
            elif 0 <= branch.complete_cycle <= now:
                self._fetch_ready_at = (branch.complete_cycle
                                        + self.config.branch_mispredict_penalty)
                self._fetch_blocked_on = None
                self.stats.fetch_redirects += 1
                return
            else:
                return
        if len(self._fetch_buffer) + self.config.fetch_width > self._fetch_buffer_cap:
            return

        pc = self.oracle.pc
        latency = self.mem.ifetch_latency(pc, now)
        fetch_done = now + latency
        # pipelined fetch: the next group may start next cycle on a hit,
        # or after the miss resolves.
        hit = self.mem.icache.config.hit_latency
        self._fetch_ready_at = now + 1 + max(0, latency - hit)

        for _ in range(self.config.fetch_width):
            ins = self.program.fetch(self.oracle.pc)
            if ins is None:
                ins = Instruction(Opcode.HALT)
            if ins.op is Opcode.HALT:
                info = StepInfo(ins=ins, pc=self.oracle.pc,
                                next_pc=self.oracle.pc, is_halt=True)
                self._fetch_buffer.append(
                    _Fetched(self._next_seq, info, fetch_done))
                self._halt_seq = self._next_seq
                self._next_seq += 1
                self._halt_fetched = True
                return
            seq = self._next_seq
            self._next_seq += 1
            info = step_state(self.oracle, ins)
            if self.tracer is not None:
                self.tracer.fetch(seq, info.pc, ins, fetch_done)
            self._fetch_buffer.append(_Fetched(seq, info, fetch_done))
            if ins.is_branch:
                if not self._handle_branch_fetch(seq, info, fetch_done):
                    return  # fetch group ends; possibly blocked
            # group also ends when the next pc leaves this line
            if (info.next_pc // self.mem.icache.config.line_bytes
                    != pc // self.mem.icache.config.line_bytes):
                return

    def _handle_branch_fetch(self, seq: int, info: StepInfo,
                             fetch_done: int) -> bool:
        """Predict a just-fetched branch; returns True when fetch may
        continue within the same group (correctly-predicted not-taken)."""
        ins = info.ins
        actual_taken = info.taken
        actual_target = info.next_pc
        if ins.iclass is InstrClass.BRANCH:
            predicted_taken = self.predictor.predict(info.pc)
            btb_target = self.predictor.predict_target(info.pc)
            self.predictor.update(info.pc, actual_taken, actual_target)
            if predicted_taken != actual_taken or (
                    actual_taken and btb_target != actual_target):
                self.predictor.record_mispredict()
                self._fetch_blocked_on = seq
                return False
            # correct prediction: taken branch still ends the fetch group
            return not actual_taken
        if ins.op in (Opcode.J, Opcode.JAL):
            if ins.op is Opcode.JAL:
                self.predictor.push_return(info.pc + 4)
            # direct target, known at decode: one-cycle bubble only
            self._fetch_ready_at = max(self._fetch_ready_at, fetch_done)
            return False
        # JR: indirect target; the return-address stack (or, failing
        # that, a BTB hit with the right target) avoids the resolution
        # stall.
        predicted = self.predictor.pop_return()
        if predicted is None:
            predicted = self.predictor.predict_target(info.pc)
        self.predictor.update(info.pc, True, actual_target)
        if predicted != actual_target:
            self.predictor.record_mispredict()
            self._fetch_blocked_on = seq
        return False

    # ------------------------------------------------------------------
    # recovery support
    # ------------------------------------------------------------------
    def flush_pipeline(self) -> int:
        """Squash all in-flight work (recovery step 2); returns count."""
        n = self.rob.flush()
        self.iq.flush()
        self.lsq.flush()
        self._fetch_buffer.clear()
        self._inflight.clear()
        self._reg_producer.clear()
        self._fetch_blocked_on = None
        self._halt_fetched = False
        self._halt_seq = None
        # restart the oracle from the committed point; sequence numbers
        # restart there too (commit is in-order, so the next instruction's
        # seq equals the committed count), keeping replays seq-identical.
        self.oracle = _copy_state(self.committed_state)
        self._next_seq = self.stats.committed
        return n

    def adopt_state(self, other: "Pipeline") -> None:
        """Copy the architectural state of ``other``'s committed point onto
        this core (recovery step 3); the caller charges the cycle cost."""
        self.committed_state = _copy_state(other.committed_state)
        self.oracle = _copy_state(other.committed_state)
        self.stats.committed = other.stats.committed
        # commit is in-order, so the next instruction at the adopted point
        # carries seq == committed count — keeping the two cores' store
        # streams seq-aligned for CB matching.
        self._next_seq = other.stats.committed
        self.done = other.done

    def restore_to(self, state: ArchState, committed: int) -> None:
        """Rewind the *committed* point itself to an earlier snapshot
        (checkpoint rollback — unlike :meth:`adopt_state`, this may move
        backwards past work this core already retired)."""
        self.flush_pipeline()
        self.committed_state = _copy_state(state)
        self.oracle = _copy_state(state)
        self.stats.committed = committed
        self._next_seq = committed
        self.done = False

    @property
    def arch_state(self) -> ArchState:
        """The committed architectural state (recovery source/target)."""
        return self.committed_state


def _copy_state(state: ArchState) -> ArchState:
    new = ArchState()
    new.regs = list(state.regs)
    new.mem = dict(state.mem)
    new.pc = state.pc
    return new
