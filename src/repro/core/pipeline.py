"""The cycle-stepped out-of-order pipeline.

One :class:`Pipeline` models one core. Each call to :meth:`Pipeline.step`
advances one clock through, in order: commit -> writeback -> issue ->
dispatch -> fetch (reverse pipeline order, the standard trick so that a
slot freed this cycle is usable next cycle, not this one).

Functional execution is *eager*: an oracle interpreter runs at fetch,
attaching exact results, addresses and branch outcomes to each fetched
instruction. A second architectural image advances at commit. In a
fault-free run both images and the golden executor agree bit-for-bit
(tests enforce this); fault experiments corrupt one of the images
deliberately.

Redundancy schemes attach at three points through a :class:`CommitGate`:

* ``dispatch_allowed``   — Reunion's serializing-instruction drain;
* ``on_complete``        — Reunion's CHECK-stage buffer admission
  (a full CSB holds instructions in the execute stage);
* ``can_commit``/``on_commit`` — fingerprint verification (Reunion) and
  Communication Buffer admission (UnSync).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from operator import attrgetter
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.branch import BimodalPredictor
from repro.core.config import CoreConfig
from repro.core.iq import IssueQueue
from repro.core.lsq import LSQ
from repro.core.rob import ROB, ROBEntry, EntryState
from repro.isa.golden import ArchState, STEP_DISPATCH, StepInfo, step_state
from repro.isa.instructions import InstrClass, Instruction, Opcode
from repro.isa.program import Program
from repro.mem.hierarchy import MemPort


class CommitGate:
    """Hook interface for redundancy schemes. The default gates nothing."""

    def dispatch_allowed(self, now: int) -> bool:
        """False while the front end must stall (serializing drains)."""
        return True

    def on_dispatch(self, entry: ROBEntry, now: int) -> None:
        """Observe a dispatch (fingerprint-group assignment lives here)."""

    def on_complete(self, entry: ROBEntry, now: int) -> bool:
        """Admit a finishing instruction into the post-execute buffer.

        Returning False leaves the instruction in the execute stage; the
        pipeline retries every cycle (Reunion: CSB full).
        """
        return True

    def can_commit(self, entry: ROBEntry, now: int) -> bool:
        """May the ROB head retire this cycle?"""
        return True

    def on_commit(self, entry: ROBEntry, now: int) -> None:
        """Observe retirement (stores are handed downstream here)."""


class NullGate(CommitGate):
    """Explicit no-op gate for the unprotected baseline."""


@dataclass
class PipelineStats:
    """Per-core run statistics."""

    cycles: int = 0
    committed: int = 0
    dispatch_stall_gate: int = 0
    dispatch_stall_rob: int = 0
    dispatch_stall_iq: int = 0
    dispatch_stall_lsq: int = 0
    commit_stall_gate: int = 0
    writeback_stall_gate: int = 0
    fetch_redirects: int = 0
    serializing_committed: int = 0
    stores_committed: int = 0
    loads_committed: int = 0

    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    def metric_counters(self, prefix: str = "") -> Dict[str, float]:
        """Flat telemetry-counter view (``prefix`` is the dotted
        namespace, e.g. ``core0.pipeline.``). Driven off the dataclass
        fields so new counters are picked up automatically."""
        from dataclasses import asdict
        return {prefix + k: float(v) for k, v in asdict(self).items()}


@dataclass(slots=True)
class _Fetched:
    """Fetch-buffer slot: a fetched instruction plus its oracle record."""

    seq: int
    info: StepInfo
    fetch_done: int


_seq_key = attrgetter("seq")


class Pipeline:
    """One out-of-order core executing one :class:`Program`."""

    def __init__(self,
                 program: Program,
                 config: CoreConfig,
                 memport: MemPort,
                 gate: Optional[CommitGate] = None,
                 name: str = "core0",
                 commit_replay: str = "reuse",
                 crosscheck_interval: int = 64) -> None:
        self.program = program
        self.config = config
        self.mem = memport
        self.gate = gate or NullGate()
        self.name = name
        #: "reuse" applies the fetch-time oracle record at commit (with a
        #: periodic full re-execution cross-check); "always" re-executes
        #: every instruction at commit — mandatory under fault injection,
        #: where the two images must stay independent.
        self.commit_replay = commit_replay
        self.crosscheck_interval = crosscheck_interval
        self._crosscheck_countdown = crosscheck_interval
        # Bind overridden gate hooks once; None means "default no-op" and
        # lets the per-instruction stage loops skip the call entirely
        # (the baseline/UnSync gates override only the commit hooks).
        gcls = type(self.gate)
        g = self.gate
        self._g_dispatch_allowed = (
            g.dispatch_allowed
            if gcls.dispatch_allowed is not CommitGate.dispatch_allowed
            else None)
        self._g_on_dispatch = (
            g.on_dispatch
            if gcls.on_dispatch is not CommitGate.on_dispatch else None)
        self._g_on_complete = (
            g.on_complete
            if gcls.on_complete is not CommitGate.on_complete else None)

        # oracle (fetch-time) and architectural (commit-time) state
        self.oracle = ArchState()
        self.oracle.load_data(program)
        self.oracle.pc = program.entry_pc
        self.committed_state = ArchState()
        self.committed_state.load_data(program)
        self.committed_state.pc = program.entry_pc

        self.rob = ROB(config.rob_entries)
        self.iq = IssueQueue(config.iq_entries)
        self.lsq = LSQ(config.lsq_entries)
        self.predictor = BimodalPredictor(config.predictor_entries)

        self._fetch_buffer: Deque[_Fetched] = deque()
        self._fetch_buffer_cap = 2 * config.fetch_width
        self._fetch_ready_at = 0
        #: seq of the mispredicted branch fetch is blocked on (or None)
        self._fetch_blocked_on: Optional[int] = None
        self._next_seq = 0
        self._halt_fetched = False
        self._halt_seq: Optional[int] = None
        #: seq -> in-flight ROB entry, for wake-up and redirect checks
        self._inflight: Dict[int, ROBEntry] = {}
        #: architectural register -> seq of last in-flight producer
        self._reg_producer: Dict[int, int] = {}
        #: divider busy-until cycle (unpipelined unit)
        self._div_free_at = 0
        #: issued entries awaiting writeback, keyed by completion cycle
        self._wb_heap: List[Tuple[int, int, ROBEntry]] = []
        #: completed-execution entries the gate has not yet admitted,
        #: kept in seq (= ROB age) order
        self._wb_ready: List[ROBEntry] = []
        #: external stall (recovery freeze): no stage runs before this cycle
        self.frozen_until = 0
        #: optional PipelineTracer (see repro.core.trace); None = no cost
        self.tracer = None

        # fetch-group geometry and core widths, hoisted out of the
        # per-cycle loops (both configs are immutable after construction)
        self._iline_bytes = self.mem.icache.config.line_bytes
        self._ifetch_hit = self.mem.icache.config.hit_latency
        self._fetch_width = config.fetch_width
        self._dispatch_width = config.dispatch_width
        self._issue_width = config.issue_width
        self._commit_width = config.commit_width

        self.stats = PipelineStats()
        self.done = False

    @property
    def commit_replay(self) -> str:
        return "always" if self._replay_always else "reuse"

    @commit_replay.setter
    def commit_replay(self, mode: str) -> None:
        if mode not in ("reuse", "always"):
            raise ValueError(
                f"commit_replay must be 'reuse' or 'always', got {mode!r}")
        self._replay_always = mode == "always"

    # ------------------------------------------------------------------
    # public stepping
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        """Advance one clock cycle (cycle number ``now``)."""
        if self.done:
            return
        self.stats.cycles += 1
        # inlined {rob,iq,lsq}.sample_occupancy() — this runs every cycle
        # of every core, so the three method calls are worth eliding
        rob = self.rob
        rob.occupancy_samples += 1
        rob.occupancy_sum += len(rob._entries)
        iq = self.iq
        iq.occupancy_samples += 1
        iq.occupancy_sum += len(iq._entries)
        lsq = self.lsq
        lsq.occupancy_samples += 1
        lsq.occupancy_sum += len(lsq._entries)
        if now < self.frozen_until:
            return
        self._commit(now)
        self._writeback(now)
        self._issue(now)
        self._dispatch(now)
        self._fetch(now)

    # ------------------------------------------------------------------
    # stages (reverse order)
    # ------------------------------------------------------------------
    def _commit(self, now: int) -> None:
        # cheap head probe before any local binding: most cycles nothing
        # is ready to retire and this stage must cost almost nothing.
        entries = self.rob._entries
        if not entries:
            return
        COMPLETED = EntryState.COMPLETED
        head = entries[0]
        if head.state is not COMPLETED or head.complete_cycle >= now:
            return
        gate = self.gate
        stats = self.stats
        tracer = self.tracer
        inflight = self._inflight
        reg_producer = self._reg_producer
        lsq = self.lsq
        store_latency = self.mem.store_latency
        for _ in range(self._commit_width):
            if not gate.can_commit(head, now):
                stats.commit_stall_gate += 1
                return
            entries.popleft()
            if tracer is not None:
                tracer.commit(head.seq, now)
            del inflight[head.seq]
            ins = head.ins
            if reg_producer.get(ins.rd) == head.seq:
                # producer leaves flight; later readers find the ARF value
                del reg_producer[ins.rd]
            # architectural replay (exact semantics, second image)
            if ins.op is Opcode.HALT:
                self.done = True
                gate.on_commit(head, now)
                return
            if self._replay_always:
                mem_addr = step_state(self.committed_state, ins).mem_addr
            else:
                self._crosscheck_countdown -= 1
                if self._crosscheck_countdown <= 0:
                    self._crosscheck_countdown = self.crosscheck_interval
                    info = step_state(self.committed_state, ins)
                    self._crosscheck(head, info)
                    mem_addr = info.mem_addr
                else:
                    mem_addr = self._apply_recorded(head)
            is_store = ins.is_store
            is_load = ins.is_load
            if is_store:
                # write-through L1 write at retirement; latency is absorbed
                # by the store path (write buffer / CB), not commit.
                store_latency(mem_addr, now)
                stats.stores_committed += 1
            if is_load:
                stats.loads_committed += 1
            if ins.is_serializing:
                stats.serializing_committed += 1
            if is_load or is_store:
                lsq.remove(head)
            stats.committed += 1
            gate.on_commit(head, now)
            if not entries:
                return
            head = entries[0]
            if head.state is not COMPLETED or head.complete_cycle >= now:
                return

    def _apply_recorded(self, entry: ROBEntry) -> Optional[int]:
        """Advance the architectural image from the oracle record captured
        at fetch, instead of re-executing the instruction.

        Valid only while the two images are known-identical; any system
        that arms a fault injector forces ``commit_replay="always"`` so
        the commit-time image stays an independent re-execution.
        """
        st = self.committed_state
        ins = entry.ins
        if entry.result is not None:
            rd = ins.rd
            if rd:
                st.regs[rd] = entry.result
        if entry.store_value is not None:
            st.mem.write(entry.mem_addr, entry.store_value, ins.mem_width)
        st.pc = entry.branch_target
        return entry.mem_addr

    def _crosscheck(self, entry: ROBEntry, info: StepInfo) -> None:
        """Compare a commit-time re-execution against the fetch-time
        record (periodic safety net for the ``reuse`` fast path)."""
        if (info.result != entry.result
                or info.mem_addr != entry.mem_addr
                or info.store_value != entry.store_value
                or info.next_pc != entry.branch_target
                or info.taken != entry.branch_taken):
            raise RuntimeError(
                f"{self.name}: commit replay diverged from fetch-time "
                f"oracle at seq={entry.seq} pc={entry.pc:#x} ({entry.ins})")

    def _writeback(self, now: int) -> None:
        # transition finished executions to COMPLETED, subject to the
        # gate's post-execute buffer (CSB) admission. The ready set is
        # maintained incrementally (heap keyed on completion cycle) so
        # this stage is O(entries completing) rather than a full ROB scan
        # every cycle; gate-refused entries stay in _wb_ready and retry.
        heap = self._wb_heap
        ready = self._wb_ready
        if heap and heap[0][0] <= now:
            while heap and heap[0][0] <= now:
                ready.append(heappop(heap)[2])
            if len(ready) > 1:
                ready.sort(key=_seq_key)  # preserve ROB-age order
        if not ready:
            return
        on_complete = self._g_on_complete
        tracer = self.tracer
        COMPLETED = EntryState.COMPLETED
        if on_complete is None:
            # no gate: everything ready completes this cycle
            for entry in ready:
                entry.state = COMPLETED
                if tracer is not None:
                    tracer.complete(entry.seq, entry.complete_cycle)
            ready.clear()
            return
        still: List[ROBEntry] = []
        for entry in ready:
            if on_complete(entry, now):
                entry.state = COMPLETED
                if tracer is not None:
                    tracer.complete(entry.seq, entry.complete_cycle)
            else:
                self.stats.writeback_stall_gate += 1
                still.append(entry)
        self._wb_ready = still

    def _issue(self, now: int) -> None:
        iq_entries = self.iq._entries
        if not iq_entries:
            return
        cfg = self.config
        alu_left = cfg.n_alu
        mul_left = cfg.n_mul
        mem_left = cfg.n_mem_ports
        width_left = self._issue_width
        tracer = self.tracer
        wb_heap = self._wb_heap
        forwarding_store = self.lsq.forwarding_store
        mem_load_latency = self.mem.load_latency
        ISSUED = EntryState.ISSUED
        issued: List[ROBEntry] = []
        for entry in iq_entries:
            if width_left == 0:
                break
            # event-driven wake-up: pending counts producers that have not
            # issued (they decrement it when they do), ready_at is the
            # latest producer broadcast cycle folded in at dispatch/wake.
            if entry.pending or entry.ready_at > now:
                continue
            ins = entry.ins
            cls = ins.iclass
            latency: Optional[int] = None
            if cls is InstrClass.ALU or cls in (InstrClass.NOP, InstrClass.HALT,
                                                InstrClass.BRANCH, InstrClass.JUMP):
                if alu_left == 0:
                    continue
                alu_left -= 1
                latency = cfg.alu_latency
            elif cls is InstrClass.MUL:
                if mul_left == 0:
                    continue
                mul_left -= 1
                latency = cfg.mul_latency
            elif cls is InstrClass.DIV:
                if self._div_free_at > now:
                    continue
                latency = cfg.div_latency
                self._div_free_at = now + latency
            elif cls is InstrClass.LOAD:
                if mem_left == 0:
                    continue
                mem_left -= 1
                fwd = forwarding_store(entry)
                if fwd is not None:
                    latency = 1
                else:
                    latency = mem_load_latency(entry.mem_addr, now)
            elif cls is InstrClass.STORE:
                # address generation only; the write happens at commit
                if mem_left == 0:
                    continue
                mem_left -= 1
                latency = 1
            elif cls is InstrClass.SERIALIZING:
                # Traps/barriers execute as cheap ops here; their *cost* is
                # scheme-defined (Reunion blocks dispatch until the group
                # containing them verifies; UnSync charges nothing), which
                # is exactly the Figure 4 comparison.
                if ins.op is Opcode.SWAP:
                    if mem_left == 0:
                        continue
                    mem_left -= 1
                    latency = mem_load_latency(entry.mem_addr, now)
                else:
                    latency = cfg.alu_latency
            else:  # pragma: no cover - exhaustive
                raise AssertionError(f"unhandled class {cls}")

            entry.state = ISSUED
            cc = now + latency
            entry.complete_cycle = cc
            waiters = entry.waiters
            if waiters is not None:
                for dep in waiters:
                    dep.pending -= 1
                    if cc > dep.ready_at:
                        dep.ready_at = cc
                entry.waiters = None
            heappush(wb_heap, (cc, entry.seq, entry))
            if tracer is not None:
                tracer.issue(entry.seq, now)
            issued.append(entry)
            width_left -= 1
        for entry in issued:
            iq_entries.remove(entry)

    def _dispatch(self, now: int) -> None:
        buf = self._fetch_buffer
        if not buf or buf[0].fetch_done > now:
            return
        rob = self.rob
        iq = self.iq
        lsq = self.lsq
        rob_entries = rob._entries
        rob_cap = rob.capacity
        iq_entries = iq._entries
        iq_cap = iq.capacity
        lsq_entries = lsq._entries
        lsq_cap = lsq.capacity
        stats = self.stats
        tracer = self.tracer
        inflight = self._inflight
        reg_producer = self._reg_producer
        dispatch_allowed = self._g_dispatch_allowed
        on_dispatch = self._g_on_dispatch
        for _ in range(self._dispatch_width):
            if not buf:
                return
            slot = buf[0]
            if slot.fetch_done > now:
                return
            if dispatch_allowed is not None and not dispatch_allowed(now):
                stats.dispatch_stall_gate += 1
                return
            info = slot.info
            ins = info.ins
            if len(rob_entries) >= rob_cap:
                stats.dispatch_stall_rob += 1
                return
            if len(iq_entries) >= iq_cap:
                stats.dispatch_stall_iq += 1
                return
            is_mem = ins.is_mem
            if is_mem and len(lsq_entries) >= lsq_cap:
                stats.dispatch_stall_lsq += 1
                return
            buf.popleft()

            entry = ROBEntry(slot.seq, ins, info.pc,
                             result=info.result,
                             mem_addr=info.mem_addr,
                             store_value=info.store_value,
                             branch_taken=info.taken,
                             branch_target=info.next_pc)
            srcs = ins.srcs
            if srcs:
                # register the entry with each in-flight producer: not-yet-
                # issued producers get a waiter link (they wake us when they
                # issue); already-issued producers just contribute their
                # broadcast cycle. reg_producer never maps r0 and drops
                # committed producers, so every hit is live in _inflight.
                ready_at = 0
                for r in srcs:
                    prod_seq = reg_producer.get(r)
                    if prod_seq is None:
                        continue
                    producer = inflight[prod_seq]
                    cc = producer.complete_cycle
                    if cc < 0:
                        entry.pending += 1
                        w = producer.waiters
                        if w is None:
                            producer.waiters = [entry]
                        else:
                            w.append(entry)
                    elif cc > ready_at:
                        ready_at = cc
                entry.ready_at = ready_at
            rob_entries.append(entry)
            if tracer is not None:
                tracer.dispatch(entry.seq, now)
            inflight[entry.seq] = entry
            iq_entries.append(entry)
            if is_mem:
                lsq_entries.append(entry)
            if ins.writes_reg and ins.rd != 0:
                reg_producer[ins.rd] = entry.seq
            if on_dispatch is not None:
                on_dispatch(entry, now)

    def _fetch(self, now: int) -> None:
        if self._halt_fetched or now < self._fetch_ready_at:
            return
        if self._fetch_blocked_on is not None:
            branch = self._inflight.get(self._fetch_blocked_on)
            if branch is None:
                if any(f.seq == self._fetch_blocked_on
                       for f in self._fetch_buffer):
                    return  # branch not even dispatched yet
                # branch already committed; redirect cost already absorbed
                self._fetch_blocked_on = None
            elif 0 <= branch.complete_cycle <= now:
                self._fetch_ready_at = (branch.complete_cycle
                                        + self.config.branch_mispredict_penalty)
                self._fetch_blocked_on = None
                self.stats.fetch_redirects += 1
                return
            else:
                return
        if len(self._fetch_buffer) + self._fetch_width > self._fetch_buffer_cap:
            return

        oracle = self.oracle
        pc = oracle.pc
        latency = self.mem.ifetch_latency(pc, now)
        fetch_done = now + latency
        # pipelined fetch: the next group may start next cycle on a hit,
        # or after the miss resolves.
        self._fetch_ready_at = now + 1 + max(0, latency - self._ifetch_hit)

        buf = self._fetch_buffer
        instrs = self.program.instructions
        n_instr = len(instrs)
        step_dispatch = STEP_DISPATCH
        tracer = self.tracer
        line_bytes = self._iline_bytes
        group_line = pc // line_bytes
        for _ in range(self._fetch_width):
            idx = oracle.pc >> 2
            ins = instrs[idx] if 0 <= idx < n_instr else None
            if ins is None:
                ins = Instruction(Opcode.HALT)
            if ins.op is Opcode.HALT:
                info = StepInfo(ins=ins, pc=oracle.pc,
                                next_pc=oracle.pc, is_halt=True)
                buf.append(_Fetched(self._next_seq, info, fetch_done))
                self._halt_seq = self._next_seq
                self._next_seq += 1
                self._halt_fetched = True
                return
            seq = self._next_seq
            self._next_seq += 1
            info = step_dispatch[ins.op](oracle, ins)
            if tracer is not None:
                tracer.fetch(seq, info.pc, ins, fetch_done)
            buf.append(_Fetched(seq, info, fetch_done))
            if ins.is_branch:
                if not self._handle_branch_fetch(seq, info, fetch_done):
                    return  # fetch group ends; possibly blocked
            # group also ends when the next pc leaves this line
            if info.next_pc // line_bytes != group_line:
                return

    def _handle_branch_fetch(self, seq: int, info: StepInfo,
                             fetch_done: int) -> bool:
        """Predict a just-fetched branch; returns True when fetch may
        continue within the same group (correctly-predicted not-taken)."""
        ins = info.ins
        actual_taken = info.taken
        actual_target = info.next_pc
        if ins.iclass is InstrClass.BRANCH:
            predicted_taken = self.predictor.predict(info.pc)
            btb_target = self.predictor.predict_target(info.pc)
            self.predictor.update(info.pc, actual_taken, actual_target)
            if predicted_taken != actual_taken or (
                    actual_taken and btb_target != actual_target):
                self.predictor.record_mispredict()
                self._fetch_blocked_on = seq
                return False
            # correct prediction: taken branch still ends the fetch group
            return not actual_taken
        if ins.op in (Opcode.J, Opcode.JAL):
            if ins.op is Opcode.JAL:
                self.predictor.push_return(info.pc + 4)
            # direct target, known at decode: one-cycle bubble only
            self._fetch_ready_at = max(self._fetch_ready_at, fetch_done)
            return False
        # JR: indirect target; the return-address stack (or, failing
        # that, a BTB hit with the right target) avoids the resolution
        # stall.
        predicted = self.predictor.pop_return()
        if predicted is None:
            predicted = self.predictor.predict_target(info.pc)
        self.predictor.update(info.pc, True, actual_target)
        if predicted != actual_target:
            self.predictor.record_mispredict()
            self._fetch_blocked_on = seq
        return False

    # ------------------------------------------------------------------
    # recovery support
    # ------------------------------------------------------------------
    def flush_pipeline(self) -> int:
        """Squash all in-flight work (recovery step 2); returns count."""
        n = self.rob.flush()
        self.iq.flush()
        self.lsq.flush()
        self._wb_heap.clear()
        self._wb_ready.clear()
        self._fetch_buffer.clear()
        self._inflight.clear()
        self._reg_producer.clear()
        self._fetch_blocked_on = None
        self._halt_fetched = False
        self._halt_seq = None
        # restart the oracle from the committed point; sequence numbers
        # restart there too (commit is in-order, so the next instruction's
        # seq equals the committed count), keeping replays seq-identical.
        self.oracle = self.committed_state.clone()
        self._next_seq = self.stats.committed
        return n

    def adopt_state(self, other: "Pipeline") -> None:
        """Copy the architectural state of ``other``'s committed point onto
        this core (recovery step 3); the caller charges the cycle cost."""
        self.committed_state = other.committed_state.clone()
        self.oracle = other.committed_state.clone()
        self.stats.committed = other.stats.committed
        # commit is in-order, so the next instruction at the adopted point
        # carries seq == committed count — keeping the two cores' store
        # streams seq-aligned for CB matching.
        self._next_seq = other.stats.committed
        self.done = other.done

    def restore_to(self, state: ArchState, committed: int) -> None:
        """Rewind the *committed* point itself to an earlier snapshot
        (checkpoint rollback — unlike :meth:`adopt_state`, this may move
        backwards past work this core already retired)."""
        self.flush_pipeline()
        self.committed_state = state.clone()
        self.oracle = state.clone()
        self.stats.committed = committed
        self._next_seq = committed
        self.done = False

    @property
    def arch_state(self) -> ArchState:
        """The committed architectural state (recovery source/target)."""
        return self.committed_state

