"""Issue queue.

Holds dispatched-but-not-issued entries in age order; the issue stage
scans oldest-first each cycle (Table I: 64 entries, 4-wide issue). An
entry leaves at issue, so IQ pressure — unlike ROB pressure — is *not*
inflated by Reunion's deferred commit; keeping the two structures separate
is what lets the model show Reunion hurting via the ROB specifically.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.core.rob import ROBEntry


class IssueQueue:
    """Bounded age-ordered queue of waiting instructions."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("IQ capacity must be positive")
        self.capacity = capacity
        self._entries: List[ROBEntry] = []
        self.full_stalls = 0
        self.occupancy_samples = 0
        self.occupancy_sum = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ROBEntry]:
        """Oldest-first iteration (dispatch order)."""
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def push(self, entry: ROBEntry) -> None:
        if self.full:
            raise RuntimeError("dispatch into full IQ")
        self._entries.append(entry)

    def remove(self, entry: ROBEntry) -> None:
        self._entries.remove(entry)

    def flush(self) -> int:
        n = len(self._entries)
        self._entries.clear()
        return n

    def sample_occupancy(self) -> None:
        self.occupancy_samples += 1
        self.occupancy_sum += len(self._entries)

    def mean_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_sum / self.occupancy_samples
