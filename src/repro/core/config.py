"""Core and system configuration (the paper's Table I).

All geometric parameters of the simulated machines live here so that every
experiment names its configuration explicitly and the Table I defaults are
written down exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.mem.cache import CacheConfig, WritePolicy
from repro.mem.tlb import TLBConfig


@dataclass(frozen=True)
class CoreConfig:
    """One out-of-order core.

    Defaults follow Table I (Alpha 21264-class, 2 GHz, out-of-order,
    4-wide fetch/issue/commit, 64-entry issue queue) plus conventional
    21264-scale values for the structures Table I leaves implicit (ROB,
    LSQ, functional-unit latencies, mispredict penalty).
    """

    fetch_width: int = 4
    dispatch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    iq_entries: int = 64
    rob_entries: int = 80          # Alpha 21264 in-flight window
    lsq_entries: int = 32
    n_alu: int = 4
    n_mul: int = 1
    n_div: int = 1
    n_mem_ports: int = 2
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12
    branch_mispredict_penalty: int = 3
    #: bimodal predictor table entries
    predictor_entries: int = 2048
    frequency_mhz: int = 2000

    def scaled(self, **overrides) -> "CoreConfig":
        """A copy with selected fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class SystemConfig:
    """Whole simulated CMP (Table I)."""

    core: CoreConfig = field(default_factory=CoreConfig)
    n_cores: int = 4
    icache: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, assoc=2, line_bytes=64, hit_latency=2,
        policy=WritePolicy.WRITE_THROUGH))
    dcache: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, assoc=2, line_bytes=64, hit_latency=2,
        policy=WritePolicy.WRITE_THROUGH))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=4 * 1024 * 1024, assoc=8, line_bytes=64, hit_latency=20,
        policy=WritePolicy.WRITE_BACK))
    itlb: TLBConfig = field(default_factory=lambda: TLBConfig(entries=48, assoc=2))
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig(entries=64, assoc=2))
    l1_mshrs: int = 10
    l2_mshrs: int = 20
    dram_latency: int = 400
    bus_width_bytes: int = 8

    @classmethod
    def table1(cls) -> "SystemConfig":
        """The exact baseline configuration of Table I."""
        return cls()

    def describe(self) -> Dict[str, str]:
        """Human-readable parameter dump mirroring Table I's rows."""
        c = self.core
        return {
            "Processor Cores": (
                f"{self.n_cores} logical cores, Alpha 21264-class, "
                f"{c.frequency_mhz / 1000:g}GHz, out-of-order, "
                f"{c.fetch_width}-wide fetch/issue/commit"),
            "Issue Queue": str(c.iq_entries),
            "L1 Cache": (
                f"{self.icache.size_bytes // 1024}KB split I/D, "
                f"{self.icache.assoc}-way, {self.l1_mshrs} MSHRs, "
                f"{self.icache.hit_latency} cycle access latency, "
                f"{self.icache.line_bytes}-byte/line"),
            "Shared L2 Cache": (
                f"{self.l2.size_bytes // (1024 * 1024)}MB, {self.l2.assoc}-way, "
                f"{self.l2.line_bytes}-byte/line, "
                f"{self.l2.hit_latency}-cycle access latency, "
                f"{self.l2_mshrs} MSHRs"),
            "I-TLB": f"{self.itlb.entries} entries, {self.itlb.assoc}-way",
            "D-TLB": f"{self.dtlb.entries} entries, {self.dtlb.assoc}-way",
            "Memory": (f"3GB, {self.bus_width_bytes * 8}-bit wide, "
                       f"{self.dram_latency} cycles access latency"),
        }
