"""Cycle-level out-of-order core model (the M5/Alpha-21264 substitute).

The model is cycle-stepped: :meth:`~repro.core.pipeline.Pipeline.step`
advances one clock, moving instructions through fetch -> dispatch ->
issue -> execute -> writeback -> commit under the structural constraints
of Table I (4-wide everywhere, 64-entry issue queue, ROB, LSQ, MSHRs,
bimodal branch prediction, split L1s behind a shared bus + L2).

Functional semantics are evaluated eagerly at dispatch against a private
architectural image (no wrong-path *data* effects exist in the model;
branch mispredictions cost fetch-redirect cycles only). This keeps every
simulated run bit-exact with the golden executor while the timing side
reproduces the queueing behaviour the paper's evaluation hinges on: ROB
occupancy under deferred commit (Reunion, Fig 5), serializing-instruction
drains (Fig 4), and commit back-pressure from a full Communication Buffer
(UnSync, Fig 6).

Redundancy schemes plug in through :class:`~repro.core.pipeline.CommitGate`
— UnSync and Reunion install gates that may hold an instruction at the
commit point (and observe commits), which is exactly where both papers'
mechanisms live architecturally.
"""

from repro.core.config import CoreConfig, SystemConfig
from repro.core.branch import BimodalPredictor
from repro.core.rob import ROB, ROBEntry, EntryState
from repro.core.pipeline import Pipeline, CommitGate, NullGate, PipelineStats
from repro.core.core import Core, CoreResult

__all__ = [
    "CoreConfig", "SystemConfig",
    "BimodalPredictor",
    "ROB", "ROBEntry", "EntryState",
    "Pipeline", "CommitGate", "NullGate", "PipelineStats",
    "Core", "CoreResult",
]
