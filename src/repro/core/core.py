"""Core facade: a single simulated core with its private memory port.

:class:`Core` is the unit the redundant systems compose in pairs; it also
runs standalone as the *unprotected baseline* configuration that Figures
4-6 normalise against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import CoreConfig, SystemConfig
from repro.core.pipeline import CommitGate, Pipeline, PipelineStats
from repro.isa.golden import ArchState
from repro.isa.program import Program
from repro.mem.bus import Bus
from repro.mem.hierarchy import MemPort
from repro.mem.l2 import SharedL2
from repro.mem.prewarm import prewarm_l2


@dataclass
class CoreResult:
    """Outcome of running one core to completion."""

    cycles: int
    instructions: int
    state: ArchState
    stats: PipelineStats
    mispredict_rate: float = 0.0
    l1d_miss_rate: float = 0.0
    rob_mean_occupancy: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class Core:
    """One core = pipeline + memory port, steppable from outside."""

    def __init__(self,
                 program: Program,
                 config: Optional[SystemConfig] = None,
                 memport: Optional[MemPort] = None,
                 gate: Optional[CommitGate] = None,
                 name: str = "core0") -> None:
        self.config = config or SystemConfig.table1()
        if memport is None:
            bus = Bus(width_bytes=self.config.bus_width_bytes)
            l2 = SharedL2(config=self.config.l2, mshrs=self.config.l2_mshrs)
            prewarm_l2(l2, program)
            memport = MemPort(bus, l2,
                              icache_cfg=self.config.icache,
                              dcache_cfg=self.config.dcache,
                              itlb_cfg=self.config.itlb,
                              dtlb_cfg=self.config.dtlb,
                              l1_mshrs=self.config.l1_mshrs,
                              name=name)
        self.mem = memport
        self.pipeline = Pipeline(program, self.config.core, memport,
                                 gate=gate, name=name)
        self.name = name

    @property
    def done(self) -> bool:
        return self.pipeline.done

    def step(self, now: int) -> None:
        self.pipeline.step(now)

    def run(self, max_cycles: int = 2_000_000) -> CoreResult:
        """Run to HALT (single-core use); raises on cycle-budget overrun."""
        now = 0
        while not self.pipeline.done:
            if now >= max_cycles:
                raise RuntimeError(
                    f"{self.name}: exceeded {max_cycles} cycles "
                    f"({self.pipeline.stats.committed} committed)")
            self.pipeline.step(now)
            now += 1
        return self.result()

    def result(self) -> CoreResult:
        p = self.pipeline
        return CoreResult(
            cycles=p.stats.cycles,
            instructions=p.stats.committed,
            state=p.committed_state,
            stats=p.stats,
            mispredict_rate=p.predictor.mispredict_rate(),
            l1d_miss_rate=self.mem.dcache.miss_rate(),
            rob_mean_occupancy=p.rob.mean_occupancy(),
        )
