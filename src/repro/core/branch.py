"""Branch prediction: bimodal 2-bit counters plus a direct-mapped BTB.

The paper inherits M5's default front end; a bimodal predictor is the
appropriate fidelity here — Figure 4-6 trends depend on mispredict *rates*
only through their effect on ROB drain, and the synthetic workloads'
branchiness is a controlled knob.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class BimodalPredictor:
    """2-bit saturating-counter table + BTB.

    Counters start weakly-taken (2) which favours loop branches, as
    hardware tables effectively do after warm-up.
    """

    def __init__(self, entries: int = 2048, btb_entries: int = 512,
                 ras_entries: int = 16) -> None:
        if entries & (entries - 1):
            raise ValueError("predictor entries must be a power of two")
        self.entries = entries
        self.btb_entries = btb_entries
        self._table: List[int] = [2] * entries
        self._btb: Dict[int, int] = {}
        #: return-address stack (JAL pushes, JR pops) — without it every
        #: return from a multiply-called subroutine mispredicts, since
        #: the BTB can only remember one return target per JR
        self._ras: List[int] = []
        self.ras_entries = ras_entries
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        self.lookups += 1
        return self._table[self._index(pc)] >= 2

    def predict_target(self, pc: int) -> Optional[int]:
        """BTB target, or None on BTB miss (costs a redirect even when the
        direction was right). The BTB is modelled as a small
        fully-associative table with FIFO replacement."""
        return self._btb.get(pc)

    def update(self, pc: int, taken: bool, target: int) -> None:
        i = self._index(pc)
        counter = self._table[i]
        if taken:
            self._table[i] = min(3, counter + 1)
        else:
            self._table[i] = max(0, counter - 1)
        if taken:
            if len(self._btb) >= self.btb_entries and pc not in self._btb:
                # evict an arbitrary entry (dict order = insertion order)
                self._btb.pop(next(iter(self._btb)))
            self._btb[pc] = target

    def push_return(self, return_pc: int) -> None:
        """JAL fetched: remember its return address."""
        if len(self._ras) >= self.ras_entries:
            self._ras.pop(0)
        self._ras.append(return_pc)

    def pop_return(self) -> Optional[int]:
        """JR fetched: the predicted return target (None if RAS empty)."""
        return self._ras.pop() if self._ras else None

    def record_mispredict(self) -> None:
        self.mispredicts += 1

    def mispredict_rate(self) -> float:
        return self.mispredicts / self.lookups if self.lookups else 0.0
