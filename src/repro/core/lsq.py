"""Load-store queue.

Memory instructions hold an LSQ slot from dispatch to commit. The LSQ also
answers store-to-load forwarding queries: a load whose address overlaps an
older in-flight store receives the value over the bypass network in one
cycle instead of accessing the D-cache. (Addresses are exact — the model
executes eagerly at fetch — so there is no speculative disambiguation to
get wrong.)

The LSQ is one of UnSync's parity-protected storage blocks (Sec III-B-1).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.core.rob import ROBEntry


class LSQ:
    """Bounded age-ordered queue of in-flight memory instructions."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("LSQ capacity must be positive")
        self.capacity = capacity
        self._entries: List[ROBEntry] = []
        self.full_stalls = 0
        self.forwards = 0
        self.occupancy_samples = 0
        self.occupancy_sum = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ROBEntry]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def push(self, entry: ROBEntry) -> None:
        if self.full:
            raise RuntimeError("dispatch into full LSQ")
        self._entries.append(entry)

    def remove(self, entry: ROBEntry) -> None:
        self._entries.remove(entry)

    def flush(self) -> int:
        n = len(self._entries)
        self._entries.clear()
        return n

    def sample_occupancy(self) -> None:
        self.occupancy_samples += 1
        self.occupancy_sum += len(self._entries)

    def mean_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_sum / self.occupancy_samples

    def forwarding_store(self, load: ROBEntry) -> Optional[ROBEntry]:
        """Youngest older store whose access overlaps ``load``'s bytes."""
        lo = load.mem_addr
        if lo is None:
            return None
        hi = lo + load.ins.mem_width
        load_seq = load.seq
        best: Optional[ROBEntry] = None
        best_seq = -1
        for e in self._entries:
            seq = e.seq
            if seq >= load_seq or seq <= best_seq:
                continue
            ins = e.ins
            if not ins.is_store:
                continue
            s_lo = e.mem_addr
            if s_lo is None:
                continue
            if s_lo < hi and lo < s_lo + ins.mem_width:
                best = e
                best_seq = seq
        if best is not None:
            self.forwards += 1
        return best
