"""SystemConfig <-> JSON.

Lets experiment configurations live in version-controlled files::

    python -m repro config-dump > table1.json
    python -m repro run bzip2 --config my_machine.json

Unknown keys are rejected loudly (a typo'd field silently falling back
to a default is the classic way a simulation study goes wrong).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.config import CoreConfig, SystemConfig
from repro.mem.cache import CacheConfig, WritePolicy
from repro.mem.tlb import TLBConfig


def _cache_to_dict(c: CacheConfig) -> Dict[str, Any]:
    d = dataclasses.asdict(c)
    d["policy"] = c.policy.value
    return d


def _cache_from_dict(d: Dict[str, Any]) -> CacheConfig:
    d = dict(d)
    if "policy" in d:
        d["policy"] = WritePolicy(d["policy"])
    _check_fields(CacheConfig, d)
    return CacheConfig(**d)


def _check_fields(cls, d: Dict[str, Any]) -> None:
    valid = {f.name for f in dataclasses.fields(cls)}
    unknown = set(d) - valid
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s): {', '.join(sorted(unknown))} "
            f"(valid: {', '.join(sorted(valid))})")


def to_dict(config: SystemConfig) -> Dict[str, Any]:
    """Serialize to plain JSON-able structures."""
    return {
        "core": dataclasses.asdict(config.core),
        "n_cores": config.n_cores,
        "icache": _cache_to_dict(config.icache),
        "dcache": _cache_to_dict(config.dcache),
        "l2": _cache_to_dict(config.l2),
        "itlb": dataclasses.asdict(config.itlb),
        "dtlb": dataclasses.asdict(config.dtlb),
        "l1_mshrs": config.l1_mshrs,
        "l2_mshrs": config.l2_mshrs,
        "dram_latency": config.dram_latency,
        "bus_width_bytes": config.bus_width_bytes,
    }


def from_dict(data: Dict[str, Any]) -> SystemConfig:
    """Build a SystemConfig; missing sections fall back to Table I,
    unknown keys raise."""
    _check_fields(SystemConfig, data)
    kwargs: Dict[str, Any] = {}
    if "core" in data:
        _check_fields(CoreConfig, data["core"])
        kwargs["core"] = CoreConfig(**data["core"])
    for cache_key in ("icache", "dcache", "l2"):
        if cache_key in data:
            kwargs[cache_key] = _cache_from_dict(data[cache_key])
    for tlb_key in ("itlb", "dtlb"):
        if tlb_key in data:
            _check_fields(TLBConfig, data[tlb_key])
            kwargs[tlb_key] = TLBConfig(**data[tlb_key])
    for scalar in ("n_cores", "l1_mshrs", "l2_mshrs", "dram_latency",
                   "bus_width_bytes"):
        if scalar in data:
            kwargs[scalar] = data[scalar]
    return SystemConfig(**kwargs)


def save(config: SystemConfig, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(to_dict(config), indent=2) + "\n")


def load(path: Union[str, Path]) -> SystemConfig:
    return from_dict(json.loads(Path(path).read_text()))
