"""Per-instruction pipeline tracing and text visualization.

Attach a :class:`PipelineTracer` to a pipeline before running and every
instruction's journey is recorded: fetch, dispatch, issue, completion,
retirement cycles. :func:`render_timeline` draws the classic textbook
pipeline diagram::

    seq  pc      instruction           0         10        20
    0    0x0000  lui r1, 0             F--D-I=C------------------R
    1    0x0004  ori r1, r1, 100       F--D--I=C-----------------R

(F fetch done, D dispatch, I issue, = executing, C complete, - waiting,
R retire.) Invaluable when a gate (CB full, unverified fingerprint)
holds the commit point: the diagram shows exactly which stage work piles
up in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.instructions import Instruction


@dataclass(slots=True)
class TraceRecord:
    """One instruction's lifecycle."""

    seq: int
    pc: int
    ins: Instruction
    fetch_cycle: int = -1
    dispatch_cycle: int = -1
    issue_cycle: int = -1
    complete_cycle: int = -1
    commit_cycle: int = -1

    @property
    def total_latency(self) -> Optional[int]:
        if self.commit_cycle < 0 or self.fetch_cycle < 0:
            return None
        return self.commit_cycle - self.fetch_cycle

    @property
    def commit_wait(self) -> Optional[int]:
        """Cycles spent completed-but-not-retired — where redundancy
        gates (CB back-pressure, fingerprint verification) show up."""
        if self.commit_cycle < 0 or self.complete_cycle < 0:
            return None
        return self.commit_cycle - self.complete_cycle


class PipelineTracer:
    """Collects :class:`TraceRecord` per dynamic instruction.

    ``limit`` bounds memory on long runs (records past the limit are
    dropped, counters still advance).
    """

    def __init__(self, limit: int = 10_000) -> None:
        self.limit = limit
        self.records: Dict[int, TraceRecord] = {}
        self.dropped = 0

    def fetch(self, seq: int, pc: int, ins: Instruction, now: int) -> None:
        if len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records[seq] = TraceRecord(seq=seq, pc=pc, ins=ins,
                                        fetch_cycle=now)

    def _get(self, seq: int) -> Optional[TraceRecord]:
        return self.records.get(seq)

    def dispatch(self, seq: int, now: int) -> None:
        r = self._get(seq)
        if r:
            r.dispatch_cycle = now

    def issue(self, seq: int, now: int) -> None:
        r = self._get(seq)
        if r:
            r.issue_cycle = now

    def complete(self, seq: int, now: int) -> None:
        r = self._get(seq)
        if r and r.complete_cycle < 0:
            r.complete_cycle = now

    def commit(self, seq: int, now: int) -> None:
        r = self._get(seq)
        if r:
            r.commit_cycle = now

    # -- analysis ------------------------------------------------------------
    def committed_records(self) -> List[TraceRecord]:
        return sorted((r for r in self.records.values()
                       if r.commit_cycle >= 0), key=lambda r: r.seq)

    def mean_commit_wait(self) -> float:
        waits = [r.commit_wait for r in self.committed_records()
                 if r.commit_wait is not None]
        return sum(waits) / len(waits) if waits else 0.0


def render_timeline(tracer: PipelineTracer,
                    first_seq: int = 0,
                    count: int = 20,
                    max_width: int = 100) -> str:
    """Draw the pipeline diagram for ``count`` instructions from
    ``first_seq``."""
    records = [r for r in tracer.committed_records()
               if r.seq >= first_seq][:count]
    if not records:
        return "(no committed instructions in trace window)"
    t0 = min(r.fetch_cycle for r in records)
    t1 = max(r.commit_cycle for r in records)
    span = t1 - t0 + 1
    scale = 1 if span <= max_width else (span + max_width - 1) // max_width
    width = (span + scale - 1) // scale

    def col(cycle: int) -> int:
        return (cycle - t0) // scale

    header = f"{'seq':>5} {'pc':>8}  {'instruction':24} cycle {t0}..{t1}" \
             + (f" (1 char = {scale} cyc)" if scale > 1 else "")
    lines = [header]
    for r in records:
        lane = [" "] * width
        for a, b in ((col(r.fetch_cycle), col(r.dispatch_cycle)),
                     (col(r.dispatch_cycle), col(r.issue_cycle))):
            for i in range(max(0, a), max(0, b)):
                lane[i] = "-"
        if r.issue_cycle >= 0 and r.complete_cycle >= 0:
            for i in range(col(r.issue_cycle), col(r.complete_cycle)):
                lane[i] = "="
        if r.complete_cycle >= 0:
            for i in range(col(r.complete_cycle), col(r.commit_cycle)):
                lane[i] = "-"
        if r.fetch_cycle >= 0:
            lane[col(r.fetch_cycle)] = "F"
        if r.dispatch_cycle >= 0:
            lane[col(r.dispatch_cycle)] = "D"
        if r.issue_cycle >= 0:
            lane[col(r.issue_cycle)] = "I"
        if r.complete_cycle >= 0:
            lane[col(r.complete_cycle)] = "C"
        lane[col(r.commit_cycle)] = "R"
        lines.append(f"{r.seq:>5} {r.pc:#8x}  {str(r.ins):24} "
                     + "".join(lane))
    return "\n".join(lines)
