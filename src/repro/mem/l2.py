"""Shared ECC-protected L2.

Table I: 4 MB, 8-way, 64-byte lines, 20-cycle access, 20 MSHRs. Both
cores of a redundant pair (and, in the 4-core configuration, both pairs)
share it. The L2 is SECDED-protected in *both* architectures, so it sits
outside every region-of-error-coverage comparison; its role here is purely
latency and MSHR-bounded concurrency.
"""

from __future__ import annotations

from typing import Optional

from repro.mem.cache import Cache, CacheConfig, WritePolicy
from repro.mem.dram import DRAM
from repro.mem.mshr import MSHRFile


class SharedL2:
    """L2 + its MSHRs + the DRAM behind it."""

    def __init__(self,
                 config: Optional[CacheConfig] = None,
                 mshrs: int = 20,
                 dram: Optional[DRAM] = None) -> None:
        self.config = config or CacheConfig(
            size_bytes=4 * 1024 * 1024, assoc=8, line_bytes=64,
            hit_latency=20, policy=WritePolicy.WRITE_BACK)
        self.cache = Cache(self.config, name="L2")
        self.mshrs = MSHRFile(mshrs)
        self.dram = dram or DRAM()

    def access(self, addr: int, is_write: bool, now: int) -> int:
        """Service a request arriving at cycle ``now``; returns total latency.

        On a miss the DRAM fill latency is added; concurrent misses to the
        same line merge in the MSHRs; a full MSHR file serialises behind
        the oldest outstanding miss (modelled as waiting for the earliest
        ready entry).
        """
        self.mshrs.expire(now)
        line = self.cache.line_addr(addr)
        if self.mshrs.pending(line):
            # merge: ready when the in-flight fill lands, plus the hit time
            # to read it out.
            wait = max(0, self.mshrs.ready_cycle(line) - now)
            self.mshrs.allocate(line, self.mshrs.ready_cycle(line))
            return wait + self.config.hit_latency

        result = self.cache.access(addr, is_write)
        if result.hit:
            return result.latency

        fill_latency = self.config.hit_latency + self.dram.access(addr)
        ready = now + fill_latency
        if not self.mshrs.allocate(line, ready):
            # structural stall: wait for the earliest outstanding entry,
            # then retry-cost is folded into one extra hit latency.
            earliest = min(e.ready_cycle for e in self.mshrs._entries.values())
            stall = max(0, earliest - now)
            self.mshrs.expire(earliest)
            self.mshrs.allocate(line, earliest + fill_latency)
            return stall + fill_latency
        return fill_latency

    def reset_stats(self) -> None:
        self.cache.reset_stats()
        self.dram.accesses = 0
