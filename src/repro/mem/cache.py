"""Set-associative cache timing model.

Tracks tags, LRU recency, and dirty bits; data lives elsewhere (see the
package docstring). Supports write-through (UnSync's L1 requirement,
Sec III-C-1) and write-back (used to demonstrate the unrecoverable-error
scenario of Figure 2), and exposes the line inventory so the fault injector
can target resident lines and the recovery model can count the lines that
must be copied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


class WritePolicy(enum.Enum):
    WRITE_THROUGH = "write-through"
    WRITE_BACK = "write-back"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache.

    Defaults are the paper's L1: 32 KB, 2-way, 64-byte lines, 2-cycle hits.
    """

    size_bytes: int = 32 * 1024
    assoc: int = 2
    line_bytes: int = 64
    hit_latency: int = 2
    policy: WritePolicy = WritePolicy.WRITE_THROUGH
    #: write-allocate on store miss (we follow M5's default: allocate for
    #: write-back, no-allocate for write-through).
    write_allocate: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("size must be a multiple of assoc*line_bytes")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)

    @property
    def allocates_on_write(self) -> bool:
        if self.write_allocate is not None:
            return self.write_allocate
        return self.policy is WritePolicy.WRITE_BACK


@dataclass(slots=True)
class Line:
    """One cache line's metadata."""

    tag: int
    valid: bool = True
    dirty: bool = False
    #: LRU timestamp (monotone access counter).
    last_use: int = 0


@dataclass(slots=True)
class AccessResult:
    """Outcome of a timing access.

    Consumers only read the fields, so the frequent hit / no-allocate-miss
    outcomes are served from per-cache preallocated instances.
    """

    hit: bool
    latency: int
    #: line address (addr with offset bits cleared) of any evicted dirty
    #: line (write-back policy only) that must be written downstream.
    writeback_line: Optional[int] = None
    #: True when a miss allocated a line.
    allocated: bool = False


class Cache:
    """One cache instance.

    The dict-of-sets layout keeps sparse programs cheap: a set is only
    materialised once touched.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._sets: Dict[int, List[Line]] = {}
        self._clock = 0
        # statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        # geometry/policy hoisted out of the per-access path (config is
        # frozen), plus shared results for the allocation-free outcomes
        self._line_bytes = config.line_bytes
        self._n_sets = config.n_sets
        self._assoc = config.assoc
        self._hit_latency = config.hit_latency
        self._write_back = config.policy is WritePolicy.WRITE_BACK
        self._allocates_on_write = config.allocates_on_write
        self._hit_result = AccessResult(hit=True, latency=config.hit_latency)
        self._miss_no_alloc = AccessResult(hit=False,
                                           latency=config.hit_latency)

    # -- address helpers -------------------------------------------------
    def _index_tag(self, addr: int) -> Tuple[int, int]:
        line = addr // self._line_bytes
        return line % self._n_sets, line // self._n_sets

    def line_addr(self, addr: int) -> int:
        return addr - (addr % self.config.line_bytes)

    def _addr_of(self, index: int, tag: int) -> int:
        return (tag * self.config.n_sets + index) * self.config.line_bytes

    # -- lookup -----------------------------------------------------------
    def probe(self, addr: int) -> bool:
        """Non-destructive presence test (no stats, no LRU update)."""
        index, tag = self._index_tag(addr)
        return any(l.valid and l.tag == tag for l in self._sets.get(index, ()))

    def access(self, addr: int, is_write: bool) -> AccessResult:
        """Perform a timing access; allocates/evicts per policy.

        The returned latency covers only this cache's hit time; miss
        latency is composed by the hierarchy (L2, bus, DRAM).
        """
        clock = self._clock + 1
        self._clock = clock
        line_no = addr // self._line_bytes
        n_sets = self._n_sets
        index = line_no % n_sets
        tag = line_no // n_sets
        ways = self._sets.get(index)
        if ways is None:
            ways = self._sets[index] = []
        for line in ways:
            if line.valid and line.tag == tag:
                self.hits += 1
                line.last_use = clock
                if is_write and self._write_back:
                    line.dirty = True
                return self._hit_result

        self.misses += 1
        if is_write and not self._allocates_on_write:
            # write-through no-allocate: the store goes downstream, no fill.
            return self._miss_no_alloc

        writeback: Optional[int] = None
        if len(ways) >= self._assoc:
            victim = min(ways, key=lambda l: l.last_use)
            self.evictions += 1
            if victim.dirty:
                self.writebacks += 1
                writeback = self._addr_of(index, victim.tag)
            ways.remove(victim)
        new_line = Line(tag=tag, last_use=clock,
                        dirty=is_write and self._write_back)
        ways.append(new_line)
        return AccessResult(hit=False, latency=self._hit_latency,
                            writeback_line=writeback, allocated=True)

    # -- inventory --------------------------------------------------------
    def resident_lines(self) -> Iterator[int]:
        """Byte addresses of all valid resident lines."""
        for index, ways in self._sets.items():
            for line in ways:
                if line.valid:
                    yield self._addr_of(index, line.tag)

    def dirty_lines(self) -> Iterator[int]:
        for index, ways in self._sets.items():
            for line in ways:
                if line.valid and line.dirty:
                    yield self._addr_of(index, line.tag)

    def resident_count(self) -> int:
        return sum(1 for _ in self.resident_lines())

    def invalidate(self, addr: int) -> bool:
        """Invalidate the line containing ``addr``; True if it was present."""
        index, tag = self._index_tag(addr)
        for line in self._sets.get(index, ()):
            if line.valid and line.tag == tag:
                line.valid = False
                return True
        return False

    def invalidate_all(self) -> int:
        """Flash-invalidate; returns the number of lines dropped."""
        n = 0
        for ways in self._sets.values():
            for line in ways:
                if line.valid:
                    line.valid = False
                    n += 1
        return n

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = self.writebacks = 0
