"""Instruction/data TLB timing model.

Table I gives a 48-entry 2-way I-TLB and a 64-entry 2-way D-TLB. A TLB
miss costs a fixed page-walk penalty. Like the caches, the TLB is a
tag-only structure; it is also one of the parity-protected storage blocks
in UnSync's detection inventory (Sec III-B-1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class TLBConfig:
    entries: int = 64
    assoc: int = 2
    page_bytes: int = 4096
    miss_penalty: int = 30

    def __post_init__(self) -> None:
        if self.entries % self.assoc:
            raise ValueError("entries must be a multiple of assoc")
        if self.page_bytes & (self.page_bytes - 1):
            raise ValueError("page size must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.entries // self.assoc


class TLB:
    """Set-associative TLB with LRU replacement."""

    def __init__(self, config: TLBConfig, name: str = "tlb") -> None:
        self.config = config
        self.name = name
        self._sets: Dict[int, List[Tuple[int, int]]] = {}  # index -> [(tag, last_use)]
        self._clock = 0
        self.hits = 0
        self.misses = 0
        # geometry hoisted out of the per-access path (config is frozen)
        self._page_bytes = config.page_bytes
        self._n_sets = config.n_sets
        self._assoc = config.assoc
        self._miss_penalty = config.miss_penalty

    def _index_tag(self, addr: int) -> Tuple[int, int]:
        vpn = addr // self._page_bytes
        return vpn % self._n_sets, vpn // self._n_sets

    def translate(self, addr: int) -> int:
        """Access the TLB for ``addr``; returns added latency (0 on hit)."""
        clock = self._clock + 1
        self._clock = clock
        vpn = addr // self._page_bytes
        n_sets = self._n_sets
        index = vpn % n_sets
        tag = vpn // n_sets
        ways = self._sets.get(index)
        if ways is None:
            ways = self._sets[index] = []
        for i, (t, _) in enumerate(ways):
            if t == tag:
                self.hits += 1
                ways[i] = (t, clock)
                return 0
        self.misses += 1
        if len(ways) >= self._assoc:
            victim = min(range(len(ways)), key=lambda i: ways[i][1])
            ways.pop(victim)
        ways.append((tag, clock))
        return self._miss_penalty

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def resident_count(self) -> int:
        return sum(len(w) for w in self._sets.values())

    def flush(self) -> None:
        self._sets.clear()
