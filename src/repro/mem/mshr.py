"""Miss-status holding registers.

An MSHR file bounds the number of outstanding misses a cache can sustain
(Table I: 10 for L1, 20 for L2). Requests to an already-pending line merge
into the existing entry instead of consuming a new one, as in real MSHRs.
When the file is full the requester must stall — the pipeline models this
as a structural hazard on the memory unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(slots=True)
class _Entry:
    line_addr: int
    ready_cycle: int
    #: number of merged requests (statistics only)
    merged: int = 0


class MSHRFile:
    """Fixed-capacity set of outstanding line misses."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, _Entry] = {}
        # statistics
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0

    def expire(self, now: int) -> None:
        """Retire entries whose fill has arrived by cycle ``now``."""
        if not self._entries:
            return
        done = [a for a, e in self._entries.items() if e.ready_cycle <= now]
        for a in done:
            del self._entries[a]

    def pending(self, line_addr: int) -> bool:
        return line_addr in self._entries

    def ready_cycle(self, line_addr: int) -> int:
        return self._entries[line_addr].ready_cycle

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self, line_addr: int, ready_cycle: int) -> bool:
        """Track a new miss; returns False (stall) when full.

        Merging into an existing entry always succeeds and never consumes
        capacity.
        """
        entry = self._entries.get(line_addr)
        if entry is not None:
            entry.merged += 1
            self.merges += 1
            return True
        if self.full:
            self.full_stalls += 1
            return False
        self._entries[line_addr] = _Entry(line_addr, ready_cycle)
        self.allocations += 1
        return True

    def clear(self) -> None:
        self._entries.clear()
