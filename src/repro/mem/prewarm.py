"""L2 pre-warming.

The paper's M5 runs measure steady-state windows of SPEC/MiBench with
warm caches; our kernels are short, so without warming every first touch
would be a 400-cycle DRAM miss and cold-start effects would swamp the
scheme-vs-scheme ratios the figures compare. Pre-warming installs the
program's code and data footprint into the *L2 only* — L1s start cold, so
L1 dynamics (the part the schemes actually differ on) are fully modelled.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.mem.l2 import SharedL2


def prewarm_l2(l2: SharedL2, program: Program, addr_offset: int = 0) -> int:
    """Install ``program``'s footprint in the L2; returns lines warmed.

    The footprint is the code region plus the full data-segment extent
    (``Program.data_end`` includes ``.space`` reservations).
    ``addr_offset`` matches the owning pair's L2 address offset in
    multi-pair systems.
    """
    line = l2.config.line_bytes
    lines = set()
    # code region: PCs 0 .. 4*len
    for pc in range(0, 4 * len(program.instructions), line):
        lines.add(pc)
    # data region, including zero-initialised reservations
    if program.data_end > program.data_base:
        start = program.data_base - program.data_base % line
        for a in range(start, program.data_end + line, line):
            lines.add(a)
    for a in sorted(lines):
        l2.cache.access(a + addr_offset, is_write=False)
    l2.reset_stats()
    return len(lines)
