"""Per-core memory port and full hierarchy wiring.

A :class:`MemPort` gives one core its split I/D L1s, I/D TLBs and L1 MSHR
files, all funnelling into the shared bus + :class:`SharedL2`. The
hierarchy computes end-to-end latencies; what happens to *store data*
downstream of the L1 (Communication Buffer, write buffer, direct L2 write)
is the redundancy layer's business and is deliberately not decided here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mem.bus import Bus
from repro.mem.cache import Cache, CacheConfig, WritePolicy
from repro.mem.dram import DRAM
from repro.mem.l2 import SharedL2
from repro.mem.mshr import MSHRFile
from repro.mem.tlb import TLB, TLBConfig


@dataclass
class MemPortStats:
    ifetches: int = 0
    loads: int = 0
    stores: int = 0
    l1i_miss: int = 0
    l1d_miss: int = 0
    mshr_stall_cycles: int = 0


class MemPort:
    """One core's view of the memory system."""

    def __init__(self,
                 bus: Bus,
                 l2: SharedL2,
                 icache_cfg: Optional[CacheConfig] = None,
                 dcache_cfg: Optional[CacheConfig] = None,
                 itlb_cfg: Optional[TLBConfig] = None,
                 dtlb_cfg: Optional[TLBConfig] = None,
                 l1_mshrs: int = 10,
                 name: str = "core0",
                 addr_offset: int = 0) -> None:
        self.bus = bus
        self.l2 = l2
        #: offset applied to L2-side addresses only. In a multi-pair CMP
        #: each pair runs its own program in the same virtual layout; the
        #: offset keeps their footprints distinct in the shared physical
        #: L2, as distinct page mappings would.
        self.addr_offset = addr_offset
        self.icache = Cache(icache_cfg or CacheConfig(), name=f"{name}.L1I")
        self.dcache = Cache(dcache_cfg or CacheConfig(), name=f"{name}.L1D")
        self.itlb = TLB(itlb_cfg or TLBConfig(entries=48), name=f"{name}.ITLB")
        self.dtlb = TLB(dtlb_cfg or TLBConfig(entries=64), name=f"{name}.DTLB")
        self.mshrs = MSHRFile(l1_mshrs)
        self.name = name
        self.stats = MemPortStats()
        # telemetry (disabled unless attach_events is called): miss-burst
        # detection state. `_events is None` is checked only inside the
        # miss branches, so the hit path is untouched.
        self._events = None
        self._ev_track = f"{name}.mem"
        self._burst_gap = 16
        self._burst_min = 4
        self._burst_start: Optional[int] = None
        self._burst_last: Optional[int] = None
        self._burst_n = 0
        self._burst_tlb0 = 0

    # -- telemetry ---------------------------------------------------------
    def attach_events(self, events, track: Optional[str] = None,
                      gap: int = 16, min_burst: int = 4) -> None:
        """Enable miss-burst event emission into ``events``.

        L1 misses closer than ``gap`` cycles apart coalesce into one
        burst; a burst of at least ``min_burst`` misses is emitted as a
        span on ``track`` (with the TLB misses that fell inside it in the
        args). Emission happens when a burst *closes*, i.e. in burst-start
        order, which keeps per-track timestamps monotonic.
        """
        self._events = events
        if track is not None:
            self._ev_track = track
        self._burst_gap = gap
        self._burst_min = min_burst

    def _note_miss(self, now: int) -> None:
        if (self._burst_last is not None
                and now - self._burst_last <= self._burst_gap):
            self._burst_last = now
            self._burst_n += 1
            return
        self.flush_miss_bursts()
        self._burst_start = self._burst_last = now
        self._burst_n = 1
        self._burst_tlb0 = self.itlb.misses + self.dtlb.misses

    def flush_miss_bursts(self) -> None:
        """Emit the in-progress burst, if any (also called at run end)."""
        if self._burst_start is not None and self._burst_n >= self._burst_min:
            from repro.telemetry.events import MEM_MISS_BURST
            tlb = self.itlb.misses + self.dtlb.misses - self._burst_tlb0
            self._events.emit(
                MEM_MISS_BURST, self._burst_start, self._ev_track,
                dur=max(1, self._burst_last - self._burst_start),
                args={"misses": self._burst_n, "tlb_misses": tlb})
        self._burst_start = self._burst_last = None
        self._burst_n = 0

    def metric_counters(self, prefix: str = "") -> Dict[str, float]:
        """Flat telemetry-counter rollup of the whole port (L1s, TLBs,
        MSHRs) under ``prefix`` (e.g. ``core0.``)."""
        s = self.stats
        return {
            prefix + "mem.ifetches": float(s.ifetches),
            prefix + "mem.loads": float(s.loads),
            prefix + "mem.stores": float(s.stores),
            prefix + "mem.mshr_stall_cycles": float(s.mshr_stall_cycles),
            prefix + "l1i.hits": float(self.icache.hits),
            prefix + "l1i.misses": float(self.icache.misses),
            prefix + "l1d.hits": float(self.dcache.hits),
            prefix + "l1d.misses": float(self.dcache.misses),
            prefix + "l1d.evictions": float(self.dcache.evictions),
            prefix + "l1d.writebacks": float(self.dcache.writebacks),
            prefix + "itlb.hits": float(self.itlb.hits),
            prefix + "itlb.misses": float(self.itlb.misses),
            prefix + "dtlb.hits": float(self.dtlb.hits),
            prefix + "dtlb.misses": float(self.dtlb.misses),
            prefix + "mshr.allocations": float(self.mshrs.allocations),
            prefix + "mshr.merges": float(self.mshrs.merges),
            prefix + "mshr.full_stalls": float(self.mshrs.full_stalls),
        }

    # -- internals --------------------------------------------------------
    def _refill(self, cache: Cache, addr: int, now: int, is_write: bool) -> int:
        """Latency of a line fill from L2 (and beyond) including the bus."""
        self.mshrs.expire(now)
        line = cache.line_addr(addr)
        if self.mshrs.pending(line):
            # secondary miss: piggyback on the in-flight fill.
            self.mshrs.allocate(line, self.mshrs.ready_cycle(line))
            return max(0, self.mshrs.ready_cycle(line) - now)
        xfer = self.bus.transfer_cycles(cache.config.line_bytes)
        done = self.bus.request(now, xfer)
        bus_part = done - now
        l2_latency = self.l2.access(addr + self.addr_offset, is_write,
                                    now + bus_part)
        total = bus_part + l2_latency
        if not self.mshrs.allocate(line, now + total):
            # L1 MSHR file full: stall until the earliest fill returns.
            earliest = min(e.ready_cycle
                           for e in self.mshrs._entries.values())
            stall = max(0, earliest - now)
            self.stats.mshr_stall_cycles += stall
            self.mshrs.expire(earliest)
            self.mshrs.allocate(line, now + stall + total)
            total += stall
        return total

    def _fill_wait(self, cache: Cache, addr: int, now: int) -> int:
        """Extra wait when the line 'hits' but its fill is still in
        flight (the tag array allocates at miss time; data arrives when
        the MSHR entry matures)."""
        line = cache.line_addr(addr)
        if self.mshrs.pending(line):
            return max(0, self.mshrs.ready_cycle(line) - now)
        return 0

    # -- public accesses ----------------------------------------------------
    def ifetch_latency(self, pc: int, now: int) -> int:
        """Instruction fetch of the line containing ``pc``."""
        self.stats.ifetches += 1
        latency = self.itlb.translate(pc)
        result = self.icache.access(pc, is_write=False)
        latency += result.latency
        if not result.hit:
            self.stats.l1i_miss += 1
            if self._events is not None:
                self._note_miss(now)
            latency += self._refill(self.icache, pc, now + latency,
                                    is_write=False)
        elif self.mshrs._entries:
            # only probe for an in-flight fill when one could exist
            self.mshrs.expire(now)
            latency += self._fill_wait(self.icache, pc, now + latency)
        return latency

    def load_latency(self, addr: int, now: int) -> int:
        """Data load latency."""
        self.stats.loads += 1
        latency = self.dtlb.translate(addr)
        result = self.dcache.access(addr, is_write=False)
        latency += result.latency
        if not result.hit:
            self.stats.l1d_miss += 1
            if self._events is not None:
                self._note_miss(now)
            latency += self._refill(self.dcache, addr, now + latency,
                                    is_write=False)
        elif self.mshrs._entries:
            self.mshrs.expire(now)
            latency += self._fill_wait(self.dcache, addr, now + latency)
        return latency

    def store_latency(self, addr: int, now: int) -> int:
        """Data store latency *into the L1 only*.

        Write-through stores also leave the core; routing that copy (CB,
        write buffer, direct L2) and any resulting back-pressure is done by
        the system model that owns this port.
        """
        self.stats.stores += 1
        latency = self.dtlb.translate(addr)
        result = self.dcache.access(addr, is_write=True)
        latency += result.latency
        if not result.hit and self.dcache.config.allocates_on_write:
            self.stats.l1d_miss += 1
            if self._events is not None:
                self._note_miss(now)
            latency += self._refill(self.dcache, addr, now + latency,
                                    is_write=True)
            if result.writeback_line is not None:
                # dirty eviction travels over the bus too
                xfer = self.bus.transfer_cycles(self.dcache.config.line_bytes)
                self.bus.request(now + latency, xfer)
        return latency


class MemoryHierarchy:
    """Bus + L2 + one MemPort per core."""

    def __init__(self, n_cores: int = 2,
                 icache_cfg: Optional[CacheConfig] = None,
                 dcache_cfg: Optional[CacheConfig] = None,
                 l2: Optional[SharedL2] = None,
                 bus: Optional[Bus] = None,
                 l1_mshrs: int = 10) -> None:
        self.bus = bus or Bus(width_bytes=8)
        self.l2 = l2 or SharedL2()
        self.ports: List[MemPort] = [
            MemPort(self.bus, self.l2,
                    icache_cfg=icache_cfg, dcache_cfg=dcache_cfg,
                    l1_mshrs=l1_mshrs, name=f"core{i}")
            for i in range(n_cores)
        ]

    def port(self, core_id: int) -> MemPort:
        return self.ports[core_id]
