"""Memory-hierarchy substrate.

The paper's Table I hierarchy: per-core 32 KB split I/D L1 (2-way, 64 B
lines, 2-cycle, 10 MSHRs, write-through in UnSync), shared 4 MB 8-way ECC
L2 (20-cycle, 20 MSHRs), 2-way I/D TLBs, 400-cycle DRAM, and a shared
L1<->L2 bus whose occupancy gates both refills and Communication Buffer
drains.

These are *timing* models: they track tags, recency, MSHR slots and bus
busy-cycles, while functional data lives in each core's architectural
memory image (see ``repro.isa.golden.ArchState``). This split is what lets
the redundant-pair simulators stay exact about program semantics while the
hierarchy stays exact about latency and contention, which is all the
paper's Figures 4-6 depend on.
"""

from repro.mem.cache import Cache, CacheConfig, WritePolicy, AccessResult
from repro.mem.mshr import MSHRFile
from repro.mem.bus import Bus
from repro.mem.tlb import TLB, TLBConfig
from repro.mem.dram import DRAM
from repro.mem.l2 import SharedL2
from repro.mem.hierarchy import MemoryHierarchy, MemPort

__all__ = [
    "Cache", "CacheConfig", "WritePolicy", "AccessResult",
    "MSHRFile", "Bus", "TLB", "TLBConfig", "DRAM", "SharedL2",
    "MemoryHierarchy", "MemPort",
]
