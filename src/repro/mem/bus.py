"""Shared L1<->L2 bus.

A single-transaction-at-a-time bus with first-come-first-served
arbitration, shared by: L1 refills of both cores of a pair, Communication
Buffer drains (UnSync), fingerprint exchanges (Reunion, when modelled on
the data bus), and recovery-time state copies. The paper explicitly models
"the stalls caused when the CB is full and the bus is busy" (Sec V), so bus
occupancy is load-bearing for Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BusStats:
    transactions: int = 0
    busy_cycles: int = 0
    wait_cycles: int = 0


class Bus:
    """Occupancy-based bus model.

    ``request(now, duration)`` returns the cycle at which the transaction
    *completes*; the bus is then busy until that cycle. Requests issued
    while busy queue behind the current holder (FCFS): their start time is
    the current free time.
    """

    def __init__(self, width_bytes: int = 8, cycles_per_beat: int = 1) -> None:
        #: bytes moved per beat; Table I's memory bus is 64-bit wide.
        self.width_bytes = width_bytes
        self.cycles_per_beat = cycles_per_beat
        self._free_at = 0
        self.stats = BusStats()

    def transfer_cycles(self, n_bytes: int) -> int:
        """Cycles to move ``n_bytes`` over the bus (at least one beat)."""
        beats = max(1, -(-n_bytes // self.width_bytes))
        return beats * self.cycles_per_beat

    def busy(self, now: int) -> bool:
        return now < self._free_at

    def free_at(self) -> int:
        return self._free_at

    def request(self, now: int, duration: int) -> int:
        """Acquire the bus for ``duration`` cycles; returns completion cycle."""
        if duration <= 0:
            raise ValueError("bus transaction needs positive duration")
        start = max(now, self._free_at)
        self.stats.wait_cycles += start - now
        self._free_at = start + duration
        self.stats.transactions += 1
        self.stats.busy_cycles += duration
        return self._free_at

    def try_request(self, now: int, duration: int) -> int:
        """Acquire only if idle at ``now``; returns completion cycle or -1.

        Used by the CB drain engine, which the paper describes as draining
        "as and when the L1-L2 data bus is free".
        """
        if self.busy(now):
            return -1
        return self.request(now, duration)

    def reset(self) -> None:
        self._free_at = 0
        self.stats = BusStats()
