"""DRAM timing model.

Table I: 3 GB, 64-bit wide, 400-cycle access latency. A flat-latency model
is sufficient — the paper's evaluation never exercises DRAM bandwidth
limits, only the L1/L2/bus path.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DRAM:
    """Flat-latency main memory."""

    access_latency: int = 400
    width_bytes: int = 8
    size_bytes: int = 3 * 1024 ** 3

    accesses: int = 0

    def access(self, addr: int) -> int:
        """Latency of one line fill from DRAM."""
        if not 0 <= addr < self.size_bytes:
            # Kernels place data at 0x1000_0000 (256 MiB), well inside 3 GB;
            # an out-of-range address signals a corrupted pointer, which we
            # still service (wrap) because a fault may legitimately produce
            # one and the simulation must continue to observe the outcome.
            addr %= self.size_bytes
        self.accesses += 1
        return self.access_latency
