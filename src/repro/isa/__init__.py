"""Mini-ISA substrate: a MIPS-like instruction set for the UnSync reproduction.

The paper evaluates on SPEC2000/MiBench binaries running on Alpha-like cores
inside M5. We cannot ship those binaries, so all workloads are written in (or
generated into) this small MIPS-flavoured ISA. The ISA is deliberately simple
but complete enough to express real kernels: 32 general registers, loads and
stores of several widths, the usual ALU/branch repertoire, and the three
families of *serializing* instructions that drive the paper's Figure 4
(traps, memory barriers, and non-idempotent atomics).

Public entry points:

* :class:`~repro.isa.instructions.Instruction` — one decoded instruction.
* :class:`~repro.isa.instructions.Opcode` / :class:`~repro.isa.instructions.InstrClass`
* :func:`~repro.isa.assembler.assemble` — assembly text to :class:`Program`.
* :class:`~repro.isa.program.Program` — code + data image.
* :func:`~repro.isa.encoding.encode` / :func:`~repro.isa.encoding.decode`
  — 32-bit binary form, used by the fault injector to flip instruction bits.
"""

from repro.isa.instructions import (
    Instruction,
    InstrClass,
    Opcode,
    OPCODE_CLASS,
    REG_COUNT,
    is_serializing,
)
from repro.isa.program import Program, DataSegment
from repro.isa.assembler import assemble, AssemblerError
from repro.isa.encoding import encode, decode, EncodingError

__all__ = [
    "Instruction",
    "InstrClass",
    "Opcode",
    "OPCODE_CLASS",
    "REG_COUNT",
    "is_serializing",
    "Program",
    "DataSegment",
    "assemble",
    "AssemblerError",
    "encode",
    "decode",
    "EncodingError",
]
