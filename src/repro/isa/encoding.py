"""32-bit binary encoding of the mini-ISA.

The pipeline itself works on decoded :class:`Instruction` objects, but the
fault injector needs a bit-level representation so that a particle strike on
a pipeline latch holding an instruction word can flip a *specific bit* and
produce either a different-but-valid instruction or a decode fault. The
format is deliberately simple:

=======  ======  ============================================
bits     field   meaning
=======  ======  ============================================
31..26   opcode  index into :data:`OPCODE_ORDER` (6 bits)
25..21   rd
20..16   rs1
15..11   rs2
15..0    imm     signed 16-bit (imm-form ops; overlaps rs2)
=======  ======  ============================================

Opcodes with large immediates (``j``/``jal``/branch targets) store the
instruction index, which fits comfortably for our kernel-scale programs; an
:class:`EncodingError` is raised otherwise.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instructions import Instruction, Opcode


class EncodingError(ValueError):
    """Raised when a field does not fit its encoding slot."""


#: Fixed opcode numbering (order matters: it defines the binary format).
OPCODE_ORDER = [
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOR,
    Opcode.SLT, Opcode.SLTU, Opcode.SLL, Opcode.SRL, Opcode.SRA,
    Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLTI,
    Opcode.SLLI, Opcode.SRLI, Opcode.SRAI, Opcode.LUI,
    Opcode.LW, Opcode.LH, Opcode.LB, Opcode.SW, Opcode.SH, Opcode.SB,
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
    Opcode.J, Opcode.JAL, Opcode.JR,
    Opcode.TRAP, Opcode.MEMBAR, Opcode.SWAP,
    Opcode.NOP, Opcode.HALT,
]

_OP_TO_NUM = {op: i for i, op in enumerate(OPCODE_ORDER)}
_NUM_TO_OP = {i: op for i, op in enumerate(OPCODE_ORDER)}

#: Ops whose 16-bit field is an immediate rather than rs2.
_IMM_FORM = {
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLTI,
    Opcode.SLLI, Opcode.SRLI, Opcode.SRAI, Opcode.LUI,
    Opcode.LW, Opcode.LH, Opcode.LB, Opcode.SW, Opcode.SH, Opcode.SB,
    Opcode.SWAP, Opcode.J, Opcode.JAL, Opcode.TRAP,
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
}


def _fit_imm16(value: int) -> int:
    """Wrap a signed immediate into 16 bits, raising if out of range."""
    if not -0x8000 <= value <= 0xFFFF:
        raise EncodingError(f"immediate {value} does not fit 16 bits")
    return value & 0xFFFF


def encode(ins: Instruction) -> int:
    """Encode ``ins`` into a 32-bit word."""
    opnum = _OP_TO_NUM.get(ins.op)
    if opnum is None:  # pragma: no cover - all opcodes are numbered
        raise EncodingError(f"unencodable opcode {ins.op}")
    word = opnum << 26
    word |= (ins.rd or 0) << 21
    word |= (ins.rs1 or 0) << 16
    if ins.op in _IMM_FORM:
        # branches keep rs2 in bits 25..21? no -- branches have no rd, so we
        # pack rs2 into the rd slot for branch encodings.
        if ins.op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            word = opnum << 26
            word |= (ins.rs2 or 0) << 21
            word |= (ins.rs1 or 0) << 16
        word |= _fit_imm16(ins.imm)
    else:
        word |= (ins.rs2 or 0) << 11
    return word


def decode(word: int) -> Optional[Instruction]:
    """Decode a 32-bit word; returns None for an invalid opcode number.

    A ``None`` result models a decode fault: the pipeline treats it as an
    illegal-instruction event (which parity/DMR detection would catch in
    hardware, and which the golden-run comparison classifies as an SDC
    otherwise).
    """
    opnum = (word >> 26) & 0x3F
    op = _NUM_TO_OP.get(opnum)
    if op is None:
        return None
    f_rd = (word >> 21) & 0x1F
    f_rs1 = (word >> 16) & 0x1F
    f_rs2 = (word >> 11) & 0x1F
    imm16 = word & 0xFFFF
    imm_signed = imm16 - 0x10000 if imm16 & 0x8000 else imm16

    if op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        return Instruction(op, rs1=f_rs1, rs2=f_rd, imm=imm16)
    if op in (Opcode.J,):
        return Instruction(op, imm=imm16)
    if op is Opcode.JAL:
        return Instruction(op, rd=f_rd, imm=imm16)
    if op is Opcode.JR:
        return Instruction(op, rs1=f_rs1)
    if op in (Opcode.TRAP, Opcode.MEMBAR, Opcode.NOP, Opcode.HALT):
        return Instruction(op, imm=imm16 if op is Opcode.TRAP else 0)
    if op is Opcode.LUI:
        return Instruction(op, rd=f_rd, imm=imm16)
    if op in _IMM_FORM:
        return Instruction(op, rd=f_rd, rs1=f_rs1, imm=imm_signed)
    return Instruction(op, rd=f_rd, rs1=f_rs1, rs2=f_rs2)


def roundtrips(ins: Instruction) -> bool:
    """True when ``ins`` survives encode->decode unchanged.

    Immediate sign/width quirks (e.g. branch targets stored unsigned) mean a
    handful of extreme immediates cannot round-trip; tests use this
    predicate to scope property-based checks.
    """
    try:
        word = encode(ins)
    except EncodingError:
        return False
    back = decode(word)
    if back is None:
        return False
    return (back.op is ins.op and (back.rd or 0) == (ins.rd or 0)
            and (back.rs1 or 0) == (ins.rs1 or 0)
            and (back.rs2 or 0) == (ins.rs2 or 0))
