"""Sparse memory backends for :class:`repro.isa.golden.ArchState`.

The simulated address space is 4 GiB but kernels touch a few KiB, so
memory must stay sparse. Two interchangeable backends implement the same
protocol (``read``/``write``/``items``/``copy``/equality):

* :class:`PagedMemory` — the production backend: a dict of 4 KiB
  ``bytearray`` pages. Aligned accesses are one slice + ``int.from_bytes``
  instead of the per-byte dict walk the simulator started with, which is
  what makes the cycle-stepped hot path fast.
* :class:`DictMemory` — the original per-byte dict, kept as the
  reference implementation the property tests compare against.

Content semantics are *normalised*: a byte that was written zero is
indistinguishable from an untouched byte (both read back 0), so
``items()``/equality/snapshots expose only nonzero bytes. This makes the
two backends — and any two executions that differ only in explicit zero
writes — compare equal.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

_ADDR_MASK = 0xFFFFFFFF

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class PagedMemory:
    """Sparse 4 GiB byte-addressable memory over 4 KiB pages."""

    __slots__ = ("_pages",)

    def __init__(self, pages: Optional[Dict[int, bytearray]] = None) -> None:
        self._pages: Dict[int, bytearray] = pages if pages is not None else {}

    # -- hot path -----------------------------------------------------------
    def read(self, addr: int, width: int) -> int:
        addr &= _ADDR_MASK
        off = addr & PAGE_MASK
        if off + width <= PAGE_SIZE:
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                return 0
            return int.from_bytes(page[off:off + width], "little")
        return sum(self.read_byte(addr + i) << (8 * i) for i in range(width))

    def write(self, addr: int, value: int, width: int) -> None:
        addr &= _ADDR_MASK
        value &= (1 << (8 * width)) - 1
        off = addr & PAGE_MASK
        if off + width <= PAGE_SIZE:
            pno = addr >> PAGE_SHIFT
            page = self._pages.get(pno)
            if page is None:
                page = self._pages[pno] = bytearray(PAGE_SIZE)
            page[off:off + width] = value.to_bytes(width, "little")
            return
        for i in range(width):
            self.write_byte(addr + i, (value >> (8 * i)) & 0xFF)

    def read_byte(self, addr: int) -> int:
        addr &= _ADDR_MASK
        page = self._pages.get(addr >> PAGE_SHIFT)
        return page[addr & PAGE_MASK] if page is not None else 0

    def write_byte(self, addr: int, value: int) -> None:
        addr &= _ADDR_MASK
        pno = addr >> PAGE_SHIFT
        page = self._pages.get(pno)
        if page is None:
            page = self._pages[pno] = bytearray(PAGE_SIZE)
        page[addr & PAGE_MASK] = value & 0xFF

    # -- mapping-style views (nonzero bytes only) ---------------------------
    def items(self) -> Iterator[Tuple[int, int]]:
        """(addr, byte) for every nonzero byte, ascending address order."""
        for pno in sorted(self._pages):
            base = pno << PAGE_SHIFT
            page = self._pages[pno]
            for off, byte in enumerate(page):
                if byte:
                    yield base + off, byte

    def __iter__(self) -> Iterator[int]:
        for addr, _ in self.items():
            yield addr

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def __contains__(self, addr: int) -> bool:
        return self.read_byte(addr) != 0

    def get(self, addr: int, default=None):
        byte = self.read_byte(addr)
        return byte if byte else default

    def __getitem__(self, addr: int) -> int:
        return self.read_byte(addr)

    def __setitem__(self, addr: int, value: int) -> None:
        self.write_byte(addr, value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PagedMemory):
            mine, theirs = self._pages, other._pages
            for pno in mine.keys() | theirs.keys():
                a, b = mine.get(pno), theirs.get(pno)
                if a is None:
                    if any(b):
                        return False
                elif b is None:
                    if any(a):
                        return False
                elif a != b:
                    return False
            return True
        if isinstance(other, (DictMemory, dict)):
            theirs = {a: v for a, v in other.items() if v}
            return dict(self.items()) == theirs
        return NotImplemented

    __hash__ = None  # mutable

    # -- bulk ops -----------------------------------------------------------
    def copy(self) -> "PagedMemory":
        return PagedMemory({pno: bytearray(page)
                            for pno, page in self._pages.items()})

    def snapshot_items(self) -> Tuple[Tuple[int, int], ...]:
        """Hashable, layout-independent content tuple for snapshots."""
        return tuple(self.items())


class CowPagedMemory(PagedMemory):
    """A :class:`PagedMemory` whose pages may be *shared immutable*
    ``bytes`` until first written (copy-on-write).

    Snapshot restores hand every restored memory the same interned
    ``bytes`` page objects, so N restores from one snapshot cost N page
    *tables*, not N memory images. All read paths work unchanged on
    ``bytes`` (slicing and indexing behave identically); the write paths
    below privatise a shared page into a ``bytearray`` on first touch.
    Equality, ``items()`` and ``copy()`` are representation-independent
    already (``bytearray(...) == bytes(...)`` compares content).
    """

    __slots__ = ()

    def _own_page(self, pno: int) -> bytearray:
        page = self._pages.get(pno)
        if type(page) is not bytearray:
            page = self._pages[pno] = (
                bytearray(PAGE_SIZE) if page is None else bytearray(page))
        return page

    def write(self, addr: int, value: int, width: int) -> None:
        addr &= _ADDR_MASK
        value &= (1 << (8 * width)) - 1
        off = addr & PAGE_MASK
        if off + width <= PAGE_SIZE:
            page = self._own_page(addr >> PAGE_SHIFT)
            page[off:off + width] = value.to_bytes(width, "little")
            return
        for i in range(width):
            self.write_byte(addr + i, (value >> (8 * i)) & 0xFF)

    def write_byte(self, addr: int, value: int) -> None:
        addr &= _ADDR_MASK
        self._own_page(addr >> PAGE_SHIFT)[addr & PAGE_MASK] = value & 0xFF


class DictMemory:
    """Reference backend: one dict entry per touched byte (the seed
    implementation), with the same normalised protocol on top."""

    __slots__ = ("_bytes",)

    def __init__(self, data: Optional[Dict[int, int]] = None) -> None:
        self._bytes: Dict[int, int] = dict(data) if data else {}

    def read(self, addr: int, width: int) -> int:
        return sum(self._bytes.get((addr + i) & _ADDR_MASK, 0) << (8 * i)
                   for i in range(width))

    def write(self, addr: int, value: int, width: int) -> None:
        for i in range(width):
            self._bytes[(addr + i) & _ADDR_MASK] = (value >> (8 * i)) & 0xFF

    def read_byte(self, addr: int) -> int:
        return self._bytes.get(addr & _ADDR_MASK, 0)

    def write_byte(self, addr: int, value: int) -> None:
        self._bytes[addr & _ADDR_MASK] = value & 0xFF

    def items(self) -> Iterator[Tuple[int, int]]:
        for addr in sorted(self._bytes):
            byte = self._bytes[addr]
            if byte:
                yield addr, byte

    def __iter__(self) -> Iterator[int]:
        for addr, _ in self.items():
            yield addr

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def __contains__(self, addr: int) -> bool:
        return self.read_byte(addr) != 0

    def get(self, addr: int, default=None):
        byte = self.read_byte(addr)
        return byte if byte else default

    def __getitem__(self, addr: int) -> int:
        return self.read_byte(addr)

    def __setitem__(self, addr: int, value: int) -> None:
        self.write_byte(addr, value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DictMemory):
            return dict(self.items()) == dict(other.items())
        if isinstance(other, (PagedMemory, dict)):
            if isinstance(other, dict):
                theirs = {a: v for a, v in other.items() if v}
            else:
                theirs = dict(other.items())
            return dict(self.items()) == theirs
        return NotImplemented

    __hash__ = None  # mutable

    def copy(self) -> "DictMemory":
        return DictMemory(self._bytes)

    def snapshot_items(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(self.items())
