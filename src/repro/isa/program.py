"""Program container: assembled code plus an initial data image.

A :class:`Program` is what every simulator front end consumes. Code lives in
an instruction-indexed list (the mini-ISA has a fixed 4-byte instruction
word, so PC = 4 * index); initialised data lives in a sparse
:class:`DataSegment` keyed by byte address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.isa.instructions import Instruction, Opcode


class DataSegment:
    """Sparse byte-addressable initial memory image.

    Backed by a dict of byte address -> byte value. Only initialised bytes
    are stored; uninitialised reads default to zero, matching the zero-fill
    semantics of the simulated DRAM.
    """

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}

    def write_byte(self, addr: int, value: int) -> None:
        self._bytes[addr] = value & 0xFF

    def read_byte(self, addr: int) -> int:
        return self._bytes.get(addr, 0)

    def write_word(self, addr: int, value: int) -> None:
        """Little-endian 32-bit store."""
        for i in range(4):
            self.write_byte(addr + i, (value >> (8 * i)) & 0xFF)

    def read_word(self, addr: int) -> int:
        return sum(self.read_byte(addr + i) << (8 * i) for i in range(4))

    def items(self) -> Iterator:
        return iter(sorted(self._bytes.items()))

    def __len__(self) -> int:
        return len(self._bytes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DataSegment) and self._bytes == other._bytes


@dataclass
class Program:
    """An assembled program: instructions, labels, and initial data."""

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    data: DataSegment = field(default_factory=DataSegment)
    name: str = "program"
    #: Base byte address of the data segment (labels in the data segment
    #: are already absolute).
    data_base: int = 0x1000_0000
    #: One past the last byte the data segment occupies, *including*
    #: ``.space`` reservations (which store no bytes but will be touched).
    #: The assembler records it; cache pre-warming relies on it.
    data_end: int = 0x1000_0000

    def __len__(self) -> int:
        return len(self.instructions)

    def fetch(self, pc: int) -> Optional[Instruction]:
        """Instruction at byte address ``pc`` or None past the end."""
        idx = pc >> 2
        if 0 <= idx < len(self.instructions):
            return self.instructions[idx]
        return None

    @property
    def entry_pc(self) -> int:
        return self.labels.get("main", 0) << 2 if "main" in self.labels else 0

    def count_class(self) -> Dict[str, int]:
        """Histogram of instruction classes (static, not dynamic)."""
        hist: Dict[str, int] = {}
        for ins in self.instructions:
            key = ins.iclass.value
            hist[key] = hist.get(key, 0) + 1
        return hist

    def ensure_halt(self) -> "Program":
        """Append a HALT if the program does not already end with one."""
        if not self.instructions or self.instructions[-1].op is not Opcode.HALT:
            self.instructions.append(Instruction(Opcode.HALT))
        return self
