"""Instruction set definition for the mini-ISA.

Design notes
------------
The ISA is a 32-register, 32-bit, load/store machine modelled on MIPS (the
paper synthesizes a MIPS core for its hardware numbers) with a handful of
extras that the UnSync/Reunion evaluation needs:

* ``TRAP``     — a software trap. Serializing: Reunion must drain and verify
  the in-flight fingerprint before the trap may commit.
* ``MEMBAR``   — memory barrier. Serializing for the same reason.
* ``SWAP``     — an atomic register<->memory exchange. Non-idempotent, hence
  serializing under Reunion (re-executing it after a rollback would corrupt
  memory), and the canonical example the Reunion paper itself gives.
* ``HALT``     — stops the program; simulators treat it as the end of the
  instruction stream.

Every opcode is tagged with an :class:`InstrClass`, which is what the
pipeline model keys its latencies, queue routing, and serializing behaviour
off. The functional semantics live in :meth:`Instruction.execute` so that
the golden (architectural) executor and the out-of-order core share one
source of truth for "what does this instruction *do*".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Dict, Optional, Tuple

#: Number of architectural general-purpose registers. ``r0`` is hard-wired
#: to zero, as in MIPS.
REG_COUNT = 32

#: Modulus for 32-bit register arithmetic.
WORD_MASK = 0xFFFFFFFF


class InstrClass(enum.Enum):
    """Broad execution class of an instruction.

    The pipeline uses the class to pick a functional unit and latency; the
    redundancy layers use it to decide serializing behaviour and store
    routing.
    """

    ALU = "alu"            # single-cycle integer ops
    MUL = "mul"            # pipelined multiplier
    DIV = "div"            # unpipelined divider
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"      # conditional branches
    JUMP = "jump"          # unconditional jumps / calls / returns
    SERIALIZING = "serializing"  # trap / membar / atomic swap
    NOP = "nop"
    HALT = "halt"


class Opcode(enum.Enum):
    """All opcodes of the mini-ISA."""

    # --- register-register ALU ---
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLT = "slt"     # set-less-than (signed)
    SLTU = "sltu"   # set-less-than (unsigned)
    SLL = "sll"     # shift left logical (by register)
    SRL = "srl"     # shift right logical
    SRA = "sra"     # shift right arithmetic
    # --- multiply / divide ---
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # --- register-immediate ALU ---
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    LUI = "lui"     # load upper immediate
    # --- memory ---
    LW = "lw"
    LH = "lh"
    LB = "lb"
    SW = "sw"
    SH = "sh"
    SB = "sb"
    # --- control ---
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    J = "j"
    JAL = "jal"
    JR = "jr"
    # --- serializing ---
    TRAP = "trap"
    MEMBAR = "membar"
    SWAP = "swap"   # atomic exchange rd <-> mem[rs1+imm]
    # --- misc ---
    NOP = "nop"
    HALT = "halt"


#: Opcode -> instruction class.
OPCODE_CLASS = {
    Opcode.ADD: InstrClass.ALU,
    Opcode.SUB: InstrClass.ALU,
    Opcode.AND: InstrClass.ALU,
    Opcode.OR: InstrClass.ALU,
    Opcode.XOR: InstrClass.ALU,
    Opcode.NOR: InstrClass.ALU,
    Opcode.SLT: InstrClass.ALU,
    Opcode.SLTU: InstrClass.ALU,
    Opcode.SLL: InstrClass.ALU,
    Opcode.SRL: InstrClass.ALU,
    Opcode.SRA: InstrClass.ALU,
    Opcode.MUL: InstrClass.MUL,
    Opcode.DIV: InstrClass.DIV,
    Opcode.REM: InstrClass.DIV,
    Opcode.ADDI: InstrClass.ALU,
    Opcode.ANDI: InstrClass.ALU,
    Opcode.ORI: InstrClass.ALU,
    Opcode.XORI: InstrClass.ALU,
    Opcode.SLTI: InstrClass.ALU,
    Opcode.SLLI: InstrClass.ALU,
    Opcode.SRLI: InstrClass.ALU,
    Opcode.SRAI: InstrClass.ALU,
    Opcode.LUI: InstrClass.ALU,
    Opcode.LW: InstrClass.LOAD,
    Opcode.LH: InstrClass.LOAD,
    Opcode.LB: InstrClass.LOAD,
    Opcode.SW: InstrClass.STORE,
    Opcode.SH: InstrClass.STORE,
    Opcode.SB: InstrClass.STORE,
    Opcode.BEQ: InstrClass.BRANCH,
    Opcode.BNE: InstrClass.BRANCH,
    Opcode.BLT: InstrClass.BRANCH,
    Opcode.BGE: InstrClass.BRANCH,
    Opcode.J: InstrClass.JUMP,
    Opcode.JAL: InstrClass.JUMP,
    Opcode.JR: InstrClass.JUMP,
    Opcode.TRAP: InstrClass.SERIALIZING,
    Opcode.MEMBAR: InstrClass.SERIALIZING,
    Opcode.SWAP: InstrClass.SERIALIZING,
    Opcode.NOP: InstrClass.NOP,
    Opcode.HALT: InstrClass.HALT,
}

#: Width in bytes of each memory opcode's access.
MEM_WIDTH = {
    Opcode.LW: 4, Opcode.SW: 4, Opcode.SWAP: 4,
    Opcode.LH: 2, Opcode.SH: 2,
    Opcode.LB: 1, Opcode.SB: 1,
}


def is_serializing(op: Opcode) -> bool:
    """True for instructions that force fingerprint synchronization in Reunion."""
    return OPCODE_CLASS[op] is InstrClass.SERIALIZING


def _s32(value: int) -> int:
    """Interpret ``value`` (mod 2**32) as a signed 32-bit integer."""
    value &= WORD_MASK
    return value - 0x100000000 if value & 0x80000000 else value


def _u32(value: int) -> int:
    """Wrap ``value`` to an unsigned 32-bit integer."""
    return value & WORD_MASK


def _div32(a: int, b: int) -> int:
    if _s32(b) == 0:
        return 0
    return _u32(int(_s32(a) / _s32(b)))  # trunc toward zero


def _rem32(a: int, b: int) -> int:
    if _s32(b) == 0:
        return 0
    q = int(_s32(a) / _s32(b))
    return _u32(_s32(a) - q * _s32(b))


#: Per-opcode pure ALU/MUL/DIV semantics: ``fn(a, b) -> result``. ``b`` is
#: the second operand (rs2's value or the immediate — the caller selects).
#: Both :meth:`Instruction.alu_result` and the golden executor's dispatch
#: table index this, so there is exactly one definition of each opcode.
ALU_FUNCS: Dict[Opcode, Callable[[int, int], int]] = {
    Opcode.ADD: lambda a, b: (a + b) & WORD_MASK,
    Opcode.ADDI: lambda a, b: (a + b) & WORD_MASK,
    Opcode.SUB: lambda a, b: (a - b) & WORD_MASK,
    Opcode.AND: lambda a, b: (a & b) & WORD_MASK,
    Opcode.ANDI: lambda a, b: (a & b) & WORD_MASK,
    Opcode.OR: lambda a, b: (a | b) & WORD_MASK,
    Opcode.ORI: lambda a, b: (a | b) & WORD_MASK,
    Opcode.XOR: lambda a, b: (a ^ b) & WORD_MASK,
    Opcode.XORI: lambda a, b: (a ^ b) & WORD_MASK,
    Opcode.NOR: lambda a, b: ~(a | b) & WORD_MASK,
    Opcode.SLT: lambda a, b: 1 if _s32(a) < _s32(b) else 0,
    Opcode.SLTI: lambda a, b: 1 if _s32(a) < _s32(b) else 0,
    Opcode.SLTU: lambda a, b: 1 if (a & WORD_MASK) < (b & WORD_MASK) else 0,
    Opcode.SLL: lambda a, b: (a << (b & 31)) & WORD_MASK,
    Opcode.SLLI: lambda a, b: (a << (b & 31)) & WORD_MASK,
    Opcode.SRL: lambda a, b: (a & WORD_MASK) >> (b & 31),
    Opcode.SRLI: lambda a, b: (a & WORD_MASK) >> (b & 31),
    Opcode.SRA: lambda a, b: (_s32(a) >> (b & 31)) & WORD_MASK,
    Opcode.SRAI: lambda a, b: (_s32(a) >> (b & 31)) & WORD_MASK,
    Opcode.MUL: lambda a, b: (_s32(a) * _s32(b)) & WORD_MASK,
    Opcode.DIV: _div32,
    Opcode.REM: _rem32,
    Opcode.LUI: lambda a, b: (b << 16) & WORD_MASK,
}

#: Per-opcode conditional-branch predicates, same single-source idea.
BRANCH_FUNCS: Dict[Opcode, Callable[[int, int], bool]] = {
    Opcode.BEQ: lambda a, b: (a & WORD_MASK) == (b & WORD_MASK),
    Opcode.BNE: lambda a, b: (a & WORD_MASK) != (b & WORD_MASK),
    Opcode.BLT: lambda a, b: _s32(a) < _s32(b),
    Opcode.BGE: lambda a, b: _s32(a) >= _s32(b),
}


@dataclass(frozen=True)  # simlint: off=SIM201 — cached_property needs __dict__
class Instruction:
    """One decoded instruction.

    Fields follow a three-operand convention: ``rd`` is the destination
    register (or the data register of a store / swap), ``rs1``/``rs2`` are
    sources, ``imm`` the immediate/offset/target. Unused fields are ``None``
    / 0 so that instances hash and compare cheaply.
    """

    op: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    #: Original source line (for diagnostics); excluded from equality.
    source: str = field(default="", compare=False)

    # ------------------------------------------------------------------
    # static properties
    # ------------------------------------------------------------------
    # ``cached_property`` (not ``property``): instruction objects are
    # shared across every dynamic execution of a static instruction, so
    # each of these decode-time facts is computed once per program, not
    # once per simulated instruction. The cache lives in the instance
    # ``__dict__`` and does not participate in equality or hashing.
    @cached_property
    def iclass(self) -> InstrClass:
        return OPCODE_CLASS[self.op]

    @cached_property
    def is_mem(self) -> bool:
        return self.iclass in (InstrClass.LOAD, InstrClass.STORE) or self.op is Opcode.SWAP

    @cached_property
    def is_store(self) -> bool:
        return self.iclass is InstrClass.STORE or self.op is Opcode.SWAP

    @cached_property
    def is_load(self) -> bool:
        return self.iclass is InstrClass.LOAD or self.op is Opcode.SWAP

    @cached_property
    def is_branch(self) -> bool:
        return self.iclass in (InstrClass.BRANCH, InstrClass.JUMP)

    @cached_property
    def is_serializing(self) -> bool:
        return self.iclass is InstrClass.SERIALIZING

    @cached_property
    def mem_width(self) -> int:
        """Access width in bytes (memory instructions only)."""
        return MEM_WIDTH.get(self.op, 0)

    @cached_property
    def srcs(self) -> Tuple[int, ...]:
        """Cached :meth:`src_regs` (dispatch-stage hot path)."""
        return self.src_regs()

    @cached_property
    def writes_reg(self) -> bool:
        """True when the instruction architecturally writes ``rd``.

        ``rd == 0`` writes are architectural no-ops (r0 is wired to zero)
        but are still *renamed* by the pipeline for simplicity.
        """
        if self.op in (Opcode.SW, Opcode.SH, Opcode.SB, Opcode.NOP,
                       Opcode.HALT, Opcode.TRAP, Opcode.MEMBAR,
                       Opcode.J, Opcode.JR,
                       Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            return False
        return self.rd is not None

    def src_regs(self) -> Tuple[int, ...]:
        """Architectural source register numbers read by this instruction."""
        op = self.op
        if op in (Opcode.SW, Opcode.SH, Opcode.SB):
            # store: data register is rd by our convention, address base rs1
            return tuple(r for r in (self.rd, self.rs1) if r is not None)
        if op is Opcode.SWAP:
            return tuple(r for r in (self.rd, self.rs1) if r is not None)
        if op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            return tuple(r for r in (self.rs1, self.rs2) if r is not None)
        if op is Opcode.JR:
            return (self.rs1,) if self.rs1 is not None else ()
        srcs = []
        if self.rs1 is not None:
            srcs.append(self.rs1)
        if self.rs2 is not None:
            srcs.append(self.rs2)
        return tuple(srcs)

    # ------------------------------------------------------------------
    # functional semantics
    # ------------------------------------------------------------------
    def alu_result(self, a: int, b: int) -> int:
        """Pure ALU/MUL/DIV result for source values ``a`` (rs1) and ``b``.

        ``b`` is the second operand: rs2's value for register forms, the
        immediate for immediate forms (the caller selects). All arithmetic
        wraps to 32 bits; division by zero returns 0 (matching the
        simulator's trap-free semantics). Semantics live in
        :data:`ALU_FUNCS`, shared with the golden executor's dispatch table.
        """
        fn = ALU_FUNCS.get(self.op)
        if fn is None:
            raise ValueError(f"{self.op} has no ALU semantics")
        return fn(a, b)

    def branch_taken(self, a: int, b: int) -> bool:
        """Evaluate a conditional branch for source values ``a``, ``b``."""
        fn = BRANCH_FUNCS.get(self.op)
        if fn is None:
            raise ValueError(f"{self.op} is not a conditional branch")
        return fn(a, b)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.op.value]
        ops = []
        if self.rd is not None:
            ops.append(f"r{self.rd}")
        if self.rs1 is not None:
            ops.append(f"r{self.rs1}")
        if self.rs2 is not None:
            ops.append(f"r{self.rs2}")
        if self.imm:
            ops.append(str(self.imm))
        return parts[0] + (" " + ", ".join(ops) if ops else "")
