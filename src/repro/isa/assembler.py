"""Two-pass assembler for the mini-ISA.

Syntax
------
One instruction per line; ``#`` or ``;`` starts a comment. Labels end with
``:`` and may share a line with an instruction. Registers are ``r0``..``r31``
(aliases: ``zero`` = r0, ``sp`` = r29, ``ra`` = r31). Immediates may be
decimal, hex (``0x..``), negative, or a label (branches/jumps, and ``la``).

Directives::

    .data                     ; switch to data segment
    .text                     ; switch back to code
    .word 1, 2, 3             ; emit 32-bit words
    .byte 1, 2                ; emit bytes
    .space 64                 ; reserve N zero bytes
    .align 4                  ; align data cursor
    label:  .word 42          ; data labels become absolute addresses

Pseudo-instructions::

    li  rd, imm32             ; expands to lui+ori when needed
    la  rd, label             ; load absolute data address
    mv  rd, rs                ; addi rd, rs, 0
    b   label                 ; j label

Memory operands accept both ``lw rd, imm(rs1)`` and ``lw rd, rs1, imm``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode, REG_COUNT
from repro.isa.program import DataSegment, Program


class AssemblerError(ValueError):
    """Raised on any syntax or semantic error, with line context."""


_REG_ALIASES = {"zero": 0, "sp": 29, "fp": 30, "ra": 31}

# opcode -> operand signature
#   R3  = rd, rs1, rs2
#   RI  = rd, rs1, imm
#   RDI = rd, imm            (lui)
#   MEM = rd, imm(rs1)
#   BR  = rs1, rs2, target
#   J   = target
#   JRF = rs1
#   N   = none
_SIGNATURES = {
    **{op: "R3" for op in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
                           Opcode.XOR, Opcode.NOR, Opcode.SLT, Opcode.SLTU,
                           Opcode.SLL, Opcode.SRL, Opcode.SRA,
                           Opcode.MUL, Opcode.DIV, Opcode.REM)},
    **{op: "RI" for op in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
                           Opcode.SLTI, Opcode.SLLI, Opcode.SRLI, Opcode.SRAI)},
    Opcode.LUI: "RDI",
    **{op: "MEM" for op in (Opcode.LW, Opcode.LH, Opcode.LB,
                            Opcode.SW, Opcode.SH, Opcode.SB, Opcode.SWAP)},
    **{op: "BR" for op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE)},
    Opcode.J: "J",
    Opcode.JAL: "J",
    Opcode.JR: "JRF",
    Opcode.TRAP: "N",
    Opcode.MEMBAR: "N",
    Opcode.NOP: "N",
    Opcode.HALT: "N",
}

_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")


def _parse_reg(token: str, lineno: int) -> int:
    token = token.strip().lower()
    if token in _REG_ALIASES:
        return _REG_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        n = int(token[1:])
        if 0 <= n < REG_COUNT:
            return n
    raise AssemblerError(f"line {lineno}: bad register {token!r}")


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"line {lineno}: bad integer {token!r}") from None


def _split_operands(rest: str) -> List[str]:
    return [t.strip() for t in rest.split(",") if t.strip()] if rest else []


class _Pending:
    """An instruction line held until pass 2 resolves label immediates."""

    __slots__ = ("mnemonic", "operands", "lineno", "source", "index")

    def __init__(self, mnemonic: str, operands: List[str], lineno: int,
                 source: str, index: int) -> None:
        self.mnemonic = mnemonic
        self.operands = operands
        self.lineno = lineno
        self.source = source
        self.index = index


def assemble(text: str, name: str = "program") -> Program:
    """Assemble ``text`` into a :class:`Program`.

    Raises :class:`AssemblerError` with a line number on any problem.
    """
    code_labels: Dict[str, int] = {}
    data_labels: Dict[str, int] = {}
    data = DataSegment()
    pending: List[_Pending] = []

    in_data = False
    data_cursor = 0x1000_0000  # data segment base
    index = 0  # instruction index

    # ---------------- pass 1: collect labels, expand pseudos --------------
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        # labels (may be several, may precede an instruction)
        while True:
            m = re.match(r"^(\w+):\s*(.*)$", line)
            if not m:
                break
            label, line = m.group(1), m.group(2).strip()
            if label in code_labels or label in data_labels:
                raise AssemblerError(f"line {lineno}: duplicate label {label!r}")
            if in_data:
                data_labels[label] = data_cursor
            else:
                code_labels[label] = index
        if not line:
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""

        if mnemonic == ".data":
            in_data = True
            continue
        if mnemonic == ".text":
            in_data = False
            continue
        if mnemonic == ".word":
            for tok in _split_operands(rest):
                data.write_word(data_cursor, _parse_int(tok, lineno))
                data_cursor += 4
            continue
        if mnemonic == ".byte":
            for tok in _split_operands(rest):
                data.write_byte(data_cursor, _parse_int(tok, lineno))
                data_cursor += 1
            continue
        if mnemonic == ".space":
            n = _parse_int(rest.strip(), lineno)
            data_cursor += n
            continue
        if mnemonic == ".align":
            n = _parse_int(rest.strip(), lineno)
            if n <= 0:
                raise AssemblerError(f"line {lineno}: .align needs positive arg")
            data_cursor = (data_cursor + n - 1) // n * n
            continue
        if mnemonic.startswith("."):
            raise AssemblerError(f"line {lineno}: unknown directive {mnemonic!r}")
        if in_data:
            raise AssemblerError(
                f"line {lineno}: instruction {mnemonic!r} inside .data")

        operands = _split_operands(rest)
        # pseudo-instruction expansion happens in pass 2 because `li`/`la`
        # may need label addresses; but they have a fixed instruction count,
        # so we only need to know it now.
        if mnemonic in ("li", "la"):
            pending.append(_Pending(mnemonic, operands, lineno, line, index))
            index += 2  # always lui+ori (uniform size keeps labels simple)
            continue
        if mnemonic == "mv":
            pending.append(_Pending(mnemonic, operands, lineno, line, index))
            index += 1
            continue
        if mnemonic == "b":
            pending.append(_Pending("j", operands, lineno, line, index))
            index += 1
            continue
        try:
            Opcode(mnemonic)
        except ValueError:
            raise AssemblerError(f"line {lineno}: unknown opcode {mnemonic!r}") from None
        pending.append(_Pending(mnemonic, operands, lineno, line, index))
        index += 1

    total = index

    # ---------------- pass 2: encode ----------------
    def resolve_imm(token: str, lineno: int, branch_from: Optional[int] = None) -> int:
        if token in code_labels:
            target = code_labels[token]
            return target  # absolute instruction index; PC = index*4
        if token in data_labels:
            return data_labels[token]
        return _parse_int(token, lineno)

    instructions: List[Optional[Instruction]] = [None] * total
    for p in pending:
        mnem, ops, lineno = p.mnemonic, p.operands, p.lineno
        if mnem in ("li", "la"):
            if len(ops) != 2:
                raise AssemblerError(f"line {lineno}: {mnem} needs rd, value")
            rd = _parse_reg(ops[0], lineno)
            value = resolve_imm(ops[1], lineno) & 0xFFFFFFFF
            hi, lo = value >> 16, value & 0xFFFF
            instructions[p.index] = Instruction(Opcode.LUI, rd=rd, imm=hi,
                                                source=p.source)
            instructions[p.index + 1] = Instruction(Opcode.ORI, rd=rd, rs1=rd,
                                                    imm=lo, source=p.source)
            continue
        if mnem == "mv":
            if len(ops) != 2:
                raise AssemblerError(f"line {lineno}: mv needs rd, rs")
            instructions[p.index] = Instruction(
                Opcode.ADDI, rd=_parse_reg(ops[0], lineno),
                rs1=_parse_reg(ops[1], lineno), imm=0, source=p.source)
            continue

        op = Opcode(mnem)
        sig = _SIGNATURES[op]
        try:
            if sig == "R3":
                rd, rs1, rs2 = (_parse_reg(t, lineno) for t in ops)
                ins = Instruction(op, rd=rd, rs1=rs1, rs2=rs2, source=p.source)
            elif sig == "RI":
                if len(ops) != 3:
                    raise AssemblerError(f"line {lineno}: {mnem} needs rd, rs1, imm")
                ins = Instruction(op, rd=_parse_reg(ops[0], lineno),
                                  rs1=_parse_reg(ops[1], lineno),
                                  imm=resolve_imm(ops[2], lineno), source=p.source)
            elif sig == "RDI":
                if len(ops) != 2:
                    raise AssemblerError(f"line {lineno}: {mnem} needs rd, imm")
                ins = Instruction(op, rd=_parse_reg(ops[0], lineno),
                                  imm=resolve_imm(ops[1], lineno), source=p.source)
            elif sig == "MEM":
                if len(ops) == 2:
                    m = _MEM_OPERAND.match(ops[1].replace(" ", ""))
                    if not m:
                        raise AssemblerError(
                            f"line {lineno}: {mnem} needs rd, imm(rs1)")
                    imm_tok, base_tok = m.group(1), m.group(2)
                    ins = Instruction(op, rd=_parse_reg(ops[0], lineno),
                                      rs1=_parse_reg(base_tok, lineno),
                                      imm=resolve_imm(imm_tok, lineno),
                                      source=p.source)
                elif len(ops) == 3:
                    ins = Instruction(op, rd=_parse_reg(ops[0], lineno),
                                      rs1=_parse_reg(ops[1], lineno),
                                      imm=resolve_imm(ops[2], lineno),
                                      source=p.source)
                else:
                    raise AssemblerError(f"line {lineno}: bad {mnem} operands")
            elif sig == "BR":
                if len(ops) != 3:
                    raise AssemblerError(
                        f"line {lineno}: {mnem} needs rs1, rs2, target")
                ins = Instruction(op, rs1=_parse_reg(ops[0], lineno),
                                  rs2=_parse_reg(ops[1], lineno),
                                  imm=resolve_imm(ops[2], lineno), source=p.source)
            elif sig == "J":
                if len(ops) != 1 and not (op is Opcode.JAL and len(ops) == 2):
                    raise AssemblerError(f"line {lineno}: {mnem} needs target")
                if op is Opcode.JAL:
                    # jal target   (link into ra)  or  jal rd, target
                    if len(ops) == 2:
                        ins = Instruction(op, rd=_parse_reg(ops[0], lineno),
                                          imm=resolve_imm(ops[1], lineno),
                                          source=p.source)
                    else:
                        ins = Instruction(op, rd=31,
                                          imm=resolve_imm(ops[0], lineno),
                                          source=p.source)
                else:
                    ins = Instruction(op, imm=resolve_imm(ops[0], lineno),
                                      source=p.source)
            elif sig == "JRF":
                if len(ops) != 1:
                    raise AssemblerError(f"line {lineno}: jr needs rs1")
                ins = Instruction(op, rs1=_parse_reg(ops[0], lineno),
                                  source=p.source)
            elif sig == "N":
                if ops and op is not Opcode.TRAP:
                    raise AssemblerError(f"line {lineno}: {mnem} takes no operands")
                imm = resolve_imm(ops[0], lineno) if ops else 0
                ins = Instruction(op, imm=imm, source=p.source)
            else:  # pragma: no cover - exhaustive
                raise AssemblerError(f"line {lineno}: unhandled signature {sig}")
        except ValueError as exc:
            raise AssemblerError(f"line {lineno}: {exc}") from None
        instructions[p.index] = ins

    if any(i is None for i in instructions):  # pragma: no cover - invariant
        raise AssemblerError("internal: unassembled slot")

    labels = dict(code_labels)
    labels.update(data_labels)
    prog = Program(instructions=list(instructions), labels=labels,
                   data=data, name=name, data_end=data_cursor)
    return prog
