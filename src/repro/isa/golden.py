"""Golden (architectural) executor.

A plain fetch-execute interpreter over :class:`Program` with no timing
model. Every cycle-level simulator in this repository is validated against
it: for any fault-free run the out-of-order core must produce exactly the
same architectural register file, memory image, and dynamic instruction
count as the golden executor. The fault classifiers also diff final state
against a golden run to label outcomes as masked vs silent data corruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, InstrClass, Opcode, REG_COUNT
from repro.isa.program import Program


class ExecutionLimitExceeded(RuntimeError):
    """The program ran longer than the configured instruction budget."""


@dataclass
class ArchState:
    """Architectural state: registers, memory, PC.

    Memory is a sparse byte dict (the simulated address space is 4 GiB and
    kernels touch a few KiB of it).
    """

    regs: List[int] = field(default_factory=lambda: [0] * REG_COUNT)
    mem: Dict[int, int] = field(default_factory=dict)
    pc: int = 0

    def read_reg(self, r: int) -> int:
        return 0 if r == 0 else self.regs[r]

    def write_reg(self, r: int, value: int) -> None:
        if r != 0:
            self.regs[r] = value & 0xFFFFFFFF

    def read_mem(self, addr: int, width: int) -> int:
        return sum(self.mem.get((addr + i) & 0xFFFFFFFF, 0) << (8 * i)
                   for i in range(width))

    def write_mem(self, addr: int, value: int, width: int) -> None:
        for i in range(width):
            self.mem[(addr + i) & 0xFFFFFFFF] = (value >> (8 * i)) & 0xFF

    def load_data(self, program: Program) -> None:
        for addr, byte in program.data.items():
            self.mem[addr] = byte

    def snapshot(self) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...], int]:
        """Hashable snapshot, used by tests to compare two executions."""
        return (tuple(self.regs), tuple(sorted(self.mem.items())), self.pc)


@dataclass
class StepInfo:
    """Side-channel record of one functional step.

    The cycle-level pipeline consumes these at fetch (oracle path) and at
    commit (architectural replay); the golden interpreter produces them
    internally.
    """

    ins: Instruction
    pc: int
    next_pc: int
    #: destination value written, if any
    result: Optional[int] = None
    #: effective address for memory instructions
    mem_addr: Optional[int] = None
    #: value stored (stores and swap)
    store_value: Optional[int] = None
    store_width: int = 0
    taken: bool = False
    is_halt: bool = False


def step_state(state: ArchState, ins: Instruction) -> StepInfo:
    """Advance ``state`` by one instruction; the single source of truth for
    instruction semantics across every simulator in the package."""
    pc = state.pc
    next_pc = pc + 4
    info = StepInfo(ins=ins, pc=pc, next_pc=next_pc)
    cls = ins.iclass
    if cls in (InstrClass.ALU, InstrClass.MUL, InstrClass.DIV):
        a = state.read_reg(ins.rs1) if ins.rs1 is not None else 0
        b = (state.read_reg(ins.rs2) if ins.rs2 is not None else ins.imm)
        info.result = ins.alu_result(a, b)
        state.write_reg(ins.rd, info.result)
    elif cls is InstrClass.LOAD:
        addr = (state.read_reg(ins.rs1) + ins.imm) & 0xFFFFFFFF
        value = state.read_mem(addr, ins.mem_width)
        if ins.op is Opcode.LB and value & 0x80:
            value |= 0xFFFFFF00
        elif ins.op is Opcode.LH and value & 0x8000:
            value |= 0xFFFF0000
        info.mem_addr = addr
        info.result = value
        state.write_reg(ins.rd, value)
    elif cls is InstrClass.STORE:
        addr = (state.read_reg(ins.rs1) + ins.imm) & 0xFFFFFFFF
        value = state.read_reg(ins.rd) & ((1 << (8 * ins.mem_width)) - 1)
        state.write_mem(addr, value, ins.mem_width)
        info.mem_addr = addr
        info.store_value = value
        info.store_width = ins.mem_width
    elif cls is InstrClass.BRANCH:
        a, b = state.read_reg(ins.rs1), state.read_reg(ins.rs2)
        if ins.branch_taken(a, b):
            info.taken = True
            info.next_pc = next_pc = ins.imm << 2
    elif cls is InstrClass.JUMP:
        info.taken = True
        if ins.op is Opcode.J:
            info.next_pc = next_pc = ins.imm << 2
        elif ins.op is Opcode.JAL:
            info.result = (pc + 4) & 0xFFFFFFFF
            state.write_reg(ins.rd, info.result)
            info.next_pc = next_pc = ins.imm << 2
        else:  # JR
            info.next_pc = next_pc = state.read_reg(ins.rs1) & 0xFFFFFFFC
    elif cls is InstrClass.SERIALIZING:
        if ins.op is Opcode.SWAP:
            addr = (state.read_reg(ins.rs1) + ins.imm) & 0xFFFFFFFF
            old = state.read_mem(addr, 4)
            new = state.read_reg(ins.rd)
            state.write_mem(addr, new, 4)
            state.write_reg(ins.rd, old)
            info.mem_addr = addr
            info.store_value = new
            info.store_width = 4
            info.result = old
        # TRAP / MEMBAR are architectural no-ops here.
    elif cls is InstrClass.NOP:
        pass
    elif cls is InstrClass.HALT:
        info.is_halt = True
        info.next_pc = pc  # halt does not advance
        return info
    else:  # pragma: no cover - exhaustive over InstrClass
        raise AssertionError(f"unhandled class {cls}")
    state.pc = next_pc
    return info


@dataclass
class GoldenResult:
    """Outcome of a golden run."""

    state: ArchState
    instructions: int
    trace: Optional[List[int]] = None  # executed PCs when tracing
    class_counts: Dict[str, int] = field(default_factory=dict)
    store_log: List[Tuple[int, int, int]] = field(default_factory=list)
    halted: bool = True


def run(program: Program, max_instructions: int = 1_000_000,
        trace: bool = False, collect_stores: bool = False) -> GoldenResult:
    """Interpret ``program`` to HALT (or the instruction budget).

    Parameters
    ----------
    program:
        Assembled program; its data segment seeds memory.
    max_instructions:
        Safety budget; exceeding it raises :class:`ExecutionLimitExceeded`
        (infinite loops in generated workloads are bugs we want loud).
    trace:
        Record the PC of every retired instruction.
    collect_stores:
        Record every (addr, value, width) store, in retirement order —
        used to validate the CB drain stream against the golden store
        stream.
    """
    state = ArchState()
    state.load_data(program)
    state.pc = program.entry_pc

    executed = 0
    pcs: Optional[List[int]] = [] if trace else None
    counts: Dict[str, int] = {}
    stores: List[Tuple[int, int, int]] = []

    while True:
        ins = program.fetch(state.pc)
        if ins is None or ins.op is Opcode.HALT:
            halted = ins is not None
            break
        if executed >= max_instructions:
            raise ExecutionLimitExceeded(
                f"{program.name}: exceeded {max_instructions} instructions")
        executed += 1
        if pcs is not None:
            pcs.append(state.pc)
        key = ins.iclass.value
        counts[key] = counts.get(key, 0) + 1

        info = step_state(state, ins)
        if collect_stores and info.store_value is not None:
            stores.append((info.mem_addr, info.store_value, info.store_width))

    return GoldenResult(state=state, instructions=executed, trace=pcs,
                        class_counts=counts, store_log=stores, halted=halted)
