"""Golden (architectural) executor.

A plain fetch-execute interpreter over :class:`Program` with no timing
model. Every cycle-level simulator in this repository is validated against
it: for any fault-free run the out-of-order core must produce exactly the
same architectural register file, memory image, and dynamic instruction
count as the golden executor. The fault classifiers also diff final state
against a golden run to label outcomes as masked vs silent data corruption.

This module is the hottest code in the repository — every simulated
instruction passes through :func:`step_state` at least once (the pipeline
calls it at fetch, and again at commit when replay cannot be reused) — so
it is built for speed: memory is paged ``bytearray`` storage
(:class:`repro.isa.memory.PagedMemory`), instruction semantics dispatch
through a precomputed per-opcode handler table instead of an if/elif
chain, and :class:`StepInfo` carries ``__slots__``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.instructions import (
    ALU_FUNCS, BRANCH_FUNCS, Instruction, Opcode, REG_COUNT,
)
from repro.isa.memory import PagedMemory
from repro.isa.program import Program

_M = 0xFFFFFFFF


class ExecutionLimitExceeded(RuntimeError):
    """The program ran longer than the configured instruction budget."""


@dataclass
class ArchState:
    """Architectural state: registers, memory, PC.

    Memory is sparse paged storage over the 4 GiB simulated address space
    (kernels touch a few KiB of it); see :mod:`repro.isa.memory` for the
    backend protocol. ``read_mem``/``write_mem`` are the stable API —
    the backend swap from the original per-byte dict is invisible here.
    """

    regs: List[int] = field(default_factory=lambda: [0] * REG_COUNT)
    mem: PagedMemory = field(default_factory=PagedMemory)
    pc: int = 0

    def read_reg(self, r: int) -> int:
        return 0 if r == 0 else self.regs[r]

    def write_reg(self, r: int, value: int) -> None:
        if r:
            self.regs[r] = value & _M

    def read_mem(self, addr: int, width: int) -> int:
        return self.mem.read(addr, width)

    def write_mem(self, addr: int, value: int, width: int) -> None:
        self.mem.write(addr, value, width)

    def load_data(self, program: Program) -> None:
        mem = self.mem
        for addr, byte in program.data.items():
            mem.write_byte(addr, byte)

    def snapshot(self) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...], int]:
        """Hashable snapshot, used by tests to compare two executions.

        Memory content is normalised (nonzero bytes only), so snapshots
        are equal across backends and across executions that differ only
        in explicit zero writes.
        """
        return (tuple(self.regs), self.mem.snapshot_items(), self.pc)

    def clone(self) -> "ArchState":
        """An independent deep copy (registers, memory image, PC).

        The single capture primitive shared by the pipeline's
        flush/rollback paths and the checkpoint store — one definition of
        "copy the architectural state" instead of one per consumer.
        """
        new = ArchState.__new__(ArchState)
        new.regs = list(self.regs)
        new.mem = self.mem.copy()
        new.pc = self.pc
        return new


@dataclass(slots=True)
class StepInfo:
    """Side-channel record of one functional step.

    The cycle-level pipeline consumes these at fetch (oracle path) and at
    commit (architectural replay); the golden interpreter produces them
    internally.
    """

    ins: Instruction
    pc: int
    next_pc: int
    #: destination value written, if any
    result: Optional[int] = None
    #: effective address for memory instructions
    mem_addr: Optional[int] = None
    #: value stored (stores and swap)
    store_value: Optional[int] = None
    store_width: int = 0
    taken: bool = False
    is_halt: bool = False


# ---------------------------------------------------------------------------
# per-opcode step handlers
# ---------------------------------------------------------------------------
# Each handler advances ``state`` by one instruction and returns the
# StepInfo record; ``step_state`` is a single dict lookup away from the
# right one. Handlers read ``state.regs``/``state.mem`` directly — r0 is
# kept hard-zero by every register write path, so reads need no guard.
def _make_alu(fn: Callable[[int, int], int]):
    def step(state: ArchState, ins: Instruction) -> StepInfo:
        regs = state.regs
        rs1 = ins.rs1
        a = regs[rs1] if rs1 is not None else 0
        rs2 = ins.rs2
        b = regs[rs2] if rs2 is not None else ins.imm
        result = fn(a, b)
        rd = ins.rd
        if rd:
            regs[rd] = result
        pc = state.pc
        state.pc = next_pc = pc + 4
        return StepInfo(ins, pc, next_pc, result)
    return step


def _make_load(width: int, sign_bit: int, sign_ext: int):
    def step(state: ArchState, ins: Instruction) -> StepInfo:
        regs = state.regs
        addr = (regs[ins.rs1] + ins.imm) & _M
        value = state.mem.read(addr, width)
        if value & sign_bit:
            value |= sign_ext
        rd = ins.rd
        if rd:
            regs[rd] = value
        pc = state.pc
        state.pc = next_pc = pc + 4
        return StepInfo(ins, pc, next_pc, value, addr)
    return step


def _make_store(width: int):
    mask = (1 << (8 * width)) - 1

    def step(state: ArchState, ins: Instruction) -> StepInfo:
        regs = state.regs
        addr = (regs[ins.rs1] + ins.imm) & _M
        value = regs[ins.rd] & mask
        state.mem.write(addr, value, width)
        pc = state.pc
        state.pc = next_pc = pc + 4
        return StepInfo(ins, pc, next_pc, None, addr, value, width)
    return step


def _make_branch(fn: Callable[[int, int], bool]):
    def step(state: ArchState, ins: Instruction) -> StepInfo:
        regs = state.regs
        pc = state.pc
        if fn(regs[ins.rs1], regs[ins.rs2]):
            state.pc = next_pc = ins.imm << 2
            return StepInfo(ins, pc, next_pc, taken=True)
        state.pc = next_pc = pc + 4
        return StepInfo(ins, pc, next_pc)
    return step


def _step_j(state: ArchState, ins: Instruction) -> StepInfo:
    pc = state.pc
    state.pc = next_pc = ins.imm << 2
    return StepInfo(ins, pc, next_pc, taken=True)


def _step_jal(state: ArchState, ins: Instruction) -> StepInfo:
    pc = state.pc
    result = (pc + 4) & _M
    rd = ins.rd
    if rd:
        state.regs[rd] = result
    state.pc = next_pc = ins.imm << 2
    return StepInfo(ins, pc, next_pc, result, taken=True)


def _step_jr(state: ArchState, ins: Instruction) -> StepInfo:
    pc = state.pc
    state.pc = next_pc = state.regs[ins.rs1] & 0xFFFFFFFC
    return StepInfo(ins, pc, next_pc, taken=True)


def _step_swap(state: ArchState, ins: Instruction) -> StepInfo:
    regs = state.regs
    mem = state.mem
    addr = (regs[ins.rs1] + ins.imm) & _M
    old = mem.read(addr, 4)
    new = regs[ins.rd]
    mem.write(addr, new, 4)
    rd = ins.rd
    if rd:
        regs[rd] = old
    pc = state.pc
    state.pc = next_pc = pc + 4
    return StepInfo(ins, pc, next_pc, old, addr, new, 4)


def _step_nop(state: ArchState, ins: Instruction) -> StepInfo:
    pc = state.pc
    state.pc = next_pc = pc + 4
    return StepInfo(ins, pc, next_pc)


def _step_halt(state: ArchState, ins: Instruction) -> StepInfo:
    pc = state.pc  # halt does not advance
    return StepInfo(ins, pc, pc, is_halt=True)


def _build_dispatch() -> Dict[Opcode, Callable[[ArchState, Instruction], StepInfo]]:
    table: Dict[Opcode, Callable[[ArchState, Instruction], StepInfo]] = {}
    for op, fn in ALU_FUNCS.items():
        table[op] = _make_alu(fn)
    table[Opcode.LW] = _make_load(4, 0, 0)
    table[Opcode.LH] = _make_load(2, 0x8000, 0xFFFF0000)
    table[Opcode.LB] = _make_load(1, 0x80, 0xFFFFFF00)
    table[Opcode.SW] = _make_store(4)
    table[Opcode.SH] = _make_store(2)
    table[Opcode.SB] = _make_store(1)
    for op, fn in BRANCH_FUNCS.items():
        table[op] = _make_branch(fn)
    table[Opcode.J] = _step_j
    table[Opcode.JAL] = _step_jal
    table[Opcode.JR] = _step_jr
    table[Opcode.SWAP] = _step_swap
    # TRAP / MEMBAR are architectural no-ops here.
    table[Opcode.TRAP] = _step_nop
    table[Opcode.MEMBAR] = _step_nop
    table[Opcode.NOP] = _step_nop
    table[Opcode.HALT] = _step_halt
    missing = set(Opcode) - set(table)
    assert not missing, f"dispatch table incomplete: {missing}"
    return table


#: Opcode -> step handler; the single source of truth for instruction
#: semantics across every simulator in the package.
STEP_DISPATCH = _build_dispatch()


def step_state(state: ArchState, ins: Instruction) -> StepInfo:
    """Advance ``state`` by one instruction via the dispatch table."""
    return STEP_DISPATCH[ins.op](state, ins)


@dataclass
class GoldenResult:
    """Outcome of a golden run."""

    state: ArchState
    instructions: int
    trace: Optional[List[int]] = None  # executed PCs when tracing
    class_counts: Dict[str, int] = field(default_factory=dict)
    store_log: List[Tuple[int, int, int]] = field(default_factory=list)
    halted: bool = True


def run(program: Program, max_instructions: int = 1_000_000,
        trace: bool = False, collect_stores: bool = False) -> GoldenResult:
    """Interpret ``program`` to HALT (or the instruction budget).

    Parameters
    ----------
    program:
        Assembled program; its data segment seeds memory.
    max_instructions:
        Safety budget; exceeding it raises :class:`ExecutionLimitExceeded`
        (infinite loops in generated workloads are bugs we want loud).
    trace:
        Record the PC of every retired instruction.
    collect_stores:
        Record every (addr, value, width) store, in retirement order —
        used to validate the CB drain stream against the golden store
        stream.
    """
    state = ArchState()
    state.load_data(program)
    state.pc = program.entry_pc

    executed = 0
    pcs: Optional[List[int]] = [] if trace else None
    counts: Dict[str, int] = {}
    stores: List[Tuple[int, int, int]] = []

    fetch = program.fetch
    dispatch = STEP_DISPATCH
    while True:
        ins = fetch(state.pc)
        if ins is None or ins.op is Opcode.HALT:
            halted = ins is not None
            break
        if executed >= max_instructions:
            raise ExecutionLimitExceeded(
                f"{program.name}: exceeded {max_instructions} instructions")
        executed += 1
        if pcs is not None:
            pcs.append(state.pc)
        key = ins.iclass.value
        counts[key] = counts.get(key, 0) + 1

        info = dispatch[ins.op](state, ins)
        if collect_stores and info.store_value is not None:
            stores.append((info.mem_addr, info.store_value, info.store_width))

    return GoldenResult(state=state, instructions=executed, trace=pcs,
                        class_counts=counts, store_log=stores, halted=halted)
