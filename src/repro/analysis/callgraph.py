"""Project call graph and the whole-program analysis context.

Built on the :mod:`repro.analysis.symbols` table: every call expression
inside a project function is resolved — through the file's import map,
the project-wide alias map, and ``self.method`` lookup along project
base classes — to either a *project* symbol (an edge in the graph) or
an *external* dotted name (recorded per caller so taint sources like
``time.time`` stay visible). Unresolvable calls (computed attributes,
calls on arbitrary receivers) are dropped; every analysis downstream is
deliberately conservative in what it claims, not in what it guesses.

:class:`ProjectContext` bundles the parsed files, the symbol table and
the call graph; it is built once per lint run and handed to every
:class:`~repro.analysis.framework.ProjectRule`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.analysis.framework import FileContext
from repro.analysis.symbols import FunctionInfo, SymbolTable


class CallSite:
    """One resolved call expression inside a project function."""

    __slots__ = ("callee", "node", "lineno", "external")

    def __init__(self, callee: str, node: ast.Call,
                 external: bool) -> None:
        self.callee = callee
        self.node = node
        self.lineno = node.lineno
        self.external = external

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ext" if self.external else "proj"
        return f"CallSite({self.callee}, {kind}, L{self.lineno})"


class CallGraph:
    """caller symbol -> resolved call sites (+ reverse adjacency)."""

    __slots__ = ("sites", "callers")

    def __init__(self) -> None:
        self.sites: Dict[str, List[CallSite]] = {}
        #: project callee -> set of project caller symbols
        self.callers: Dict[str, Set[str]] = {}

    def project_callees(self, caller: str) -> List[str]:
        return [s.callee for s in self.sites.get(caller, [])
                if not s.external]

    def edges(self) -> List[Tuple[str, str]]:
        """Sorted, deduplicated project-internal (caller, callee) pairs."""
        pairs = {(caller, site.callee)
                 for caller, sites in self.sites.items()
                 for site in sites if not site.external}
        return sorted(pairs)

    def external_calls(self, caller: str) -> List[str]:
        """Sorted, deduplicated external callees of one function."""
        return sorted({s.callee for s in self.sites.get(caller, [])
                       if s.external})


def resolve_call(table: SymbolTable, fi: FunctionInfo, ctx: FileContext,
                 call: ast.Call) -> Optional[Tuple[str, bool]]:
    """Resolve one call's target to ``(canonical_name, external)``.

    ``self.method(...)`` resolves along the caller's class and its
    project bases; everything else goes through the file import map and
    the alias map. A project *class* target resolves to the class
    symbol itself (construction). Returns ``None`` when the target
    cannot be named (subscripts, call results, unknown receivers).
    """
    dotted = ctx.resolve(call.func)
    if dotted is None:
        return None
    if dotted.startswith("self.") and fi.class_symbol is not None:
        attr = dotted[len("self."):]
        if "." in attr:
            return None
        method = table.resolve_method(fi.class_symbol, attr)
        if method is None:
            return None
        return method.symbol, False
    canon = table.canonicalize(dotted)
    if canon in table.functions or canon in table.classes:
        return canon, False
    # bare (or class-qualified) module-local names: ``helper()`` inside
    # ``pkg.mod`` means ``pkg.mod.helper`` unless an import shadows it
    local = table.canonicalize(f"{fi.module}.{dotted}")
    if local in table.functions or local in table.classes:
        return local, False
    # a bare local name that resolved to nothing project-known and is
    # not dotted is almost always a local variable, not a callable we
    # can reason about — claiming it external would alias unrelated
    # locals across functions
    if "." not in canon and canon not in ctx.imports \
            and not isinstance(call.func, ast.Name):
        return None
    return canon, True


def iter_calls(fi: FunctionInfo) -> Iterator[ast.Call]:
    """Call expressions lexically inside ``fi`` (nested defs included:
    their effects are attributed to the enclosing indexed function)."""
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Call):
            yield node


def build_call_graph(table: SymbolTable) -> CallGraph:
    graph = CallGraph()
    for symbol in sorted(table.functions):
        fi = table.functions[symbol]
        ctx = table.modules[fi.module].ctx
        sites: List[CallSite] = []
        for call in iter_calls(fi):
            resolved = resolve_call(table, fi, ctx, call)
            if resolved is None:
                continue
            callee, external = resolved
            sites.append(CallSite(callee, call, external))
            if not external:
                graph.callers.setdefault(callee, set()).add(symbol)
        graph.sites[symbol] = sites
    return graph


class ProjectContext:
    """Everything a whole-program rule may look at.

    ``cache`` lets rules that share one expensive artifact (the five
    SIM5xx rules all consume the same taint fixpoint) compute it once
    per project build.
    """

    __slots__ = ("files", "table", "graph", "cache")

    def __init__(self, files: Mapping[str, FileContext],
                 table: SymbolTable, graph: CallGraph) -> None:
        self.files = dict(files)
        self.table = table
        self.graph = graph
        self.cache: Dict[str, object] = {}


def build_project(files: Mapping[str, FileContext]) -> ProjectContext:
    """Index a parsed file set for whole-program analysis."""
    table = SymbolTable.build(files)
    return ProjectContext(files, table, build_call_graph(table))


def postorder(graph: CallGraph) -> List[str]:
    """Callees-first traversal order over the project edges.

    Analyzing functions in this order makes the taint fixpoint converge
    in one pass for acyclic regions; cycles are handled by the outer
    iteration. Deterministic: roots and neighbours visit in sorted
    order, every indexed function appears exactly once.
    """
    order: List[str] = []
    visited: Set[str] = set()
    for root in sorted(graph.sites):
        if root in visited:
            continue
        stack: List[Tuple[str, Iterator[str]]] = [
            (root, iter(sorted(set(graph.project_callees(root)))))]
        visited.add(root)
        while stack:
            symbol, it = stack[-1]
            advanced = False
            for callee in it:
                if callee not in visited and callee in graph.sites:
                    visited.add(callee)
                    stack.append(
                        (callee,
                         iter(sorted(set(graph.project_callees(callee))))))
                    advanced = True
                    break
            if not advanced:
                order.append(symbol)
                stack.pop()
    return order
