"""Lint configuration: ``[tool.simlint]`` in ``pyproject.toml``.

Example::

    [tool.simlint]
    paths = ["src/repro"]
    exclude = []
    baseline = "simlint-baseline.json"

    [tool.simlint.per-path-ignore]
    # harness timing and the progress ticker legitimately read wall-clock
    "src/repro/harness/" = ["SIM101"]

    [tool.simlint.rule-paths]
    # hot-path rules only apply to the cycle-level simulator packages
    SIM201 = ["src/repro/core/", "src/repro/mem/", ...]

``per-path-ignore`` maps a path prefix to rule codes ignored under it;
``rule-paths`` restricts a rule to run only under the given prefixes
(absent entry = everywhere). Codes in either table may be prefixes —
``"SIM1"`` matches every SIM1xx rule, ``"SIM"`` matches all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

try:  # py3.11+; on older interpreters config falls back to defaults
    import tomllib
except ImportError:  # pragma: no cover
    tomllib = None  # type: ignore[assignment]

#: packages whose per-cycle structures the SIM2xx hot-path rules police
HOT_PACKAGES: Tuple[str, ...] = (
    "src/repro/core/",
    "src/repro/mem/",
    "src/repro/isa/",
    "src/repro/unsync/",
    "src/repro/reunion/",
)

#: packages where per-trial state copies are the hot path (SIM106)
COPY_PACKAGES: Tuple[str, ...] = (
    "src/repro/campaign/",
    "src/repro/checkpoint/",
)

#: the asyncio-based packages the SIM107 event-loop rule polices
#: (also the only networked package, so SIM109's retry/timeout
#: discipline is scoped to the same tree)
ASYNC_PACKAGES: Tuple[str, ...] = (
    "src/repro/service/",
)

#: the scheme descriptor package (SIM701 protocol conformance)
SCHEME_PACKAGES: Tuple[str, ...] = (
    "src/repro/schemes/",
)

DEFAULT_RULE_PATHS: Dict[str, Tuple[str, ...]] = {
    "SIM201": HOT_PACKAGES,
    "SIM106": COPY_PACKAGES,
    "SIM107": ASYNC_PACKAGES,
    "SIM109": ASYNC_PACKAGES,
    # the race lint reasons about the service tier's deliberate
    # async/thread/signal mix; elsewhere multi-domain writes are a
    # design smell the per-file rules already police differently
    "SIM601": ASYNC_PACKAGES,
    "SIM701": SCHEME_PACKAGES,
}


class LintConfigError(ValueError):
    """Malformed ``[tool.simlint]`` table."""


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration (paths are POSIX, relative to root)."""

    root: Path
    paths: Tuple[str, ...] = ("src/repro",)
    exclude: Tuple[str, ...] = ()
    baseline: Optional[str] = "simlint-baseline.json"
    per_path_ignore: Mapping[str, Tuple[str, ...]] = \
        field(default_factory=dict)
    rule_paths: Mapping[str, Tuple[str, ...]] = \
        field(default_factory=lambda: dict(DEFAULT_RULE_PATHS))

    def rule_applies(self, code: str, rel_path: str) -> bool:
        """Whether ``code`` should run on ``rel_path`` under this config."""
        for rule_prefix, path_prefixes in self.rule_paths.items():
            if code.startswith(rule_prefix):
                if not any(rel_path.startswith(p) for p in path_prefixes):
                    return False
        for path_prefix, codes in self.per_path_ignore.items():
            if rel_path.startswith(path_prefix):
                if any(code.startswith(c) for c in codes):
                    return False
        return True


def _str_tuple(value: Any, where: str) -> Tuple[str, ...]:
    if not (isinstance(value, list)
            and all(isinstance(v, str) for v in value)):
        raise LintConfigError(f"{where} must be a list of strings, "
                              f"got {value!r}")
    return tuple(value)


def _path_table(value: Any, where: str) -> Dict[str, Tuple[str, ...]]:
    if not isinstance(value, dict):
        raise LintConfigError(f"{where} must be a table, got {value!r}")
    return {str(k): _str_tuple(v, f"{where}.{k}") for k, v in value.items()}


def load_config(root: Path,
                pyproject: Optional[Path] = None) -> LintConfig:
    """Read ``[tool.simlint]`` from ``pyproject.toml`` under ``root``.

    A missing file or missing table yields the built-in defaults; a
    malformed table raises :class:`LintConfigError` (an *internal error*
    at the CLI level — exit 2, not a finding).
    """
    root = root.resolve()
    path = pyproject if pyproject is not None else root / "pyproject.toml"
    if tomllib is None or not path.is_file():
        return LintConfig(root=root)
    try:
        with open(path, "rb") as fh:
            doc = tomllib.load(fh)
    except tomllib.TOMLDecodeError as exc:
        raise LintConfigError(f"unreadable {path}: {exc}") from exc
    table = doc.get("tool", {}).get("simlint")
    if table is None:
        return LintConfig(root=root)
    if not isinstance(table, dict):
        raise LintConfigError("[tool.simlint] must be a table")
    known = {"paths", "exclude", "baseline", "per-path-ignore", "rule-paths"}
    unknown = sorted(set(table) - known)
    if unknown:
        raise LintConfigError(
            f"unknown [tool.simlint] key(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})")
    kwargs: Dict[str, Any] = {"root": root}
    if "paths" in table:
        kwargs["paths"] = _str_tuple(table["paths"], "paths")
    if "exclude" in table:
        kwargs["exclude"] = _str_tuple(table["exclude"], "exclude")
    if "baseline" in table:
        baseline = table["baseline"]
        if baseline is not None and not isinstance(baseline, str):
            raise LintConfigError("baseline must be a string path")
        kwargs["baseline"] = baseline
    if "per-path-ignore" in table:
        kwargs["per_path_ignore"] = _path_table(
            table["per-path-ignore"], "per-path-ignore")
    if "rule-paths" in table:
        rule_paths = dict(DEFAULT_RULE_PATHS)
        rule_paths.update(_path_table(table["rule-paths"], "rule-paths"))
        kwargs["rule_paths"] = rule_paths
    return LintConfig(**kwargs)
