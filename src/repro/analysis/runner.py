"""Tree walking, baseline filtering, and report rendering for simlint.

Exit-code contract (the CI gate keys off it):

* ``0`` — clean: no non-baselined findings;
* ``1`` — findings: at least one new finding (including SIM001 parse
  failures — an unparseable file is a *finding*, never a crash);
* ``2`` — internal error: simlint itself failed (bad config, rule bug,
  unreadable baseline). CI treats this as infrastructure failure, not
  as "the tree is dirty".

Both renderers are deterministic: findings sort canonically, JSON is
``sort_keys=True`` with no timestamps, so identical trees produce
byte-identical reports.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple)

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.config import LintConfig, LintConfigError, load_config
from repro.analysis.findings import Finding
from repro.analysis.framework import (FileContext, LintInternalError,
                                      Rule, parse_context,
                                      run_file_rules, run_project_rules)
from repro.analysis.rules import ALL_RULES, rule_catalogue

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL_ERROR = 2


@dataclass
class LintReport:
    """Outcome of one lint run over a tree."""

    findings: List[Finding]          # new (non-baselined), sorted
    baselined: int = 0               # findings matched by the baseline
    files: int = 0                   # files scanned
    #: every finding before baseline filtering (for --write-baseline)
    all_findings: List[Finding] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return counts

    @property
    def exit_code(self) -> int:
        return EXIT_FINDINGS if self.findings else EXIT_CLEAN


def iter_lint_files(config: LintConfig,
                    paths: Sequence[str] = ()) -> List[Path]:
    """Deterministically ordered ``.py`` files under the configured roots.

    Explicit ``paths`` (from the CLI) override the configured ones but
    still honour ``exclude``.
    """
    roots = [config.root / p for p in (paths or config.paths)]
    files: List[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(root.rglob("*.py"))
        else:
            raise LintInternalError(f"lint path does not exist: {root}")
    out = []
    seen = set()
    for f in files:
        rel = _rel_posix(f, config.root)
        if rel in seen:
            continue
        seen.add(rel)
        if any(part in rel for part in config.exclude):
            continue
        out.append(f)
    return sorted(out, key=lambda f: _rel_posix(f, config.root))


def _rel_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def lint_tree(config: LintConfig,
              paths: Sequence[str] = (),
              rules: Iterable[Rule] = ALL_RULES,
              baseline: Optional[Baseline] = None) -> LintReport:
    """Lint the configured tree and apply the baseline filter.

    Every file parses exactly once into a
    :class:`~repro.analysis.framework.FileContext`; the per-file rules
    run over each context, then the whole-program rules run once over
    the full parsed set (so the taint engine sees cross-file call
    chains even when the CLI was pointed at a subset of paths).
    """
    rules = tuple(rules)
    if baseline is None:
        if config.baseline is not None:
            baseline = Baseline.load(config.root / config.baseline)
        else:
            baseline = Baseline.empty()
    all_findings: List[Finding] = []
    contexts: Dict[str, FileContext] = {}
    files = iter_lint_files(config, paths)
    for path in files:
        rel = _rel_posix(path, config.root)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            all_findings.append(Finding(
                path=rel, line=1, col=0, code="SIM001",
                message=f"file is unreadable: {exc}"))
            continue
        parsed = parse_context(source, rel)
        if isinstance(parsed, Finding):
            all_findings.append(parsed)
            continue
        contexts[rel] = parsed
        all_findings.extend(run_file_rules(parsed, rules, config))
    all_findings.extend(run_project_rules(contexts, rules, config))
    new, baselined = baseline.filter(all_findings)
    return LintReport(findings=new, baselined=baselined,
                      files=len(files), all_findings=sorted(all_findings))


def changed_paths(root: Path, ref: str) -> Set[str]:
    """Root-relative POSIX paths changed versus ``ref`` (diff-aware
    mode): committed changes, staged/unstaged edits, and untracked
    files. Raises :class:`LintInternalError` when git is unusable."""
    out: Set[str] = set()
    for argv in (["git", "diff", "--name-only", ref, "--"],
                 ["git", "ls-files", "--others",
                  "--exclude-standard"]):
        try:
            proc = subprocess.run(
                argv, cwd=root, capture_output=True, text=True,
                timeout=30, check=True)
        except (OSError, subprocess.SubprocessError) as exc:
            detail = ""
            if isinstance(exc, subprocess.CalledProcessError):
                detail = f": {exc.stderr.strip()}"
            raise LintInternalError(
                f"--changed needs a usable git checkout "
                f"({' '.join(argv)} failed{detail})") from exc
        out.update(line.strip() for line in proc.stdout.splitlines()
                   if line.strip())
    return out


def filter_to_paths(report: LintReport,
                    keep: Set[str]) -> LintReport:
    """The report restricted to findings in ``keep`` (diff-aware mode
    runs the *whole-program* analysis, then narrows the reported
    findings — a cross-file taint chain still counts when its sink
    lives in a changed file)."""
    return LintReport(
        findings=[f for f in report.findings if f.path in keep],
        baselined=report.baselined, files=report.files,
        all_findings=report.all_findings)


def render_text(report: LintReport) -> str:
    lines = [f.render() for f in report.findings]
    counts = ", ".join(f"{code} x{n}"
                       for code, n in sorted(report.counts.items()))
    if report.findings:
        lines.append(f"{len(report.findings)} finding(s) [{counts}] in "
                     f"{report.files} file(s), "
                     f"{report.baselined} baselined")
    else:
        lines.append(f"clean: {report.files} file(s), "
                     f"{report.baselined} baselined finding(s)")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    doc = {
        "version": 1,
        "files": report.files,
        "baselined": report.baselined,
        "counts": report.counts,
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 for code-scanning UIs; byte-stable like the rest.

    Only rules with at least one finding are listed in the driver (so
    an unchanged tree always produces an identical artifact), findings
    are already canonically sorted, and nothing time- or
    environment-dependent is emitted.
    """
    summaries = {r["code"]: r["summary"] for r in rule_catalogue()}
    summaries.setdefault("SIM001", "file cannot be parsed or read")
    rules = [
        {
            "id": code,
            "shortDescription": {"text": summaries.get(code, code)},
        }
        for code in sorted(report.counts)
    ]
    results = [
        {
            "ruleId": f.code,
            "level": "error" if f.code == "SIM001" else "warning",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": f.line,
                               "startColumn": f.col + 1},
                },
            }],
        }
        for f in report.findings
    ]
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {"name": "simlint", "rules": rules}},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


_RENDERERS = {
    "text": lambda report: render_text(report) + "\n",
    "json": render_json,
    "sarif": render_sarif,
}


def run_lint_cli(paths: Sequence[str],
                 fmt: str,
                 root: Optional[str] = None,
                 baseline_path: Optional[str] = None,
                 no_baseline: bool = False,
                 write_baseline: bool = False,
                 changed: Optional[str] = None,
                 stdout=None) -> int:
    """Back end of ``repro lint`` — returns the process exit code."""
    import sys
    out = stdout if stdout is not None else sys.stdout
    try:
        config = load_config(Path(root) if root else Path.cwd())
        if baseline_path is not None or no_baseline:
            config = LintConfig(
                root=config.root, paths=config.paths,
                exclude=config.exclude,
                baseline=None if no_baseline else baseline_path,
                per_path_ignore=config.per_path_ignore,
                rule_paths=config.rule_paths)
        report = lint_tree(config, paths)
        if write_baseline:
            target = config.baseline or "simlint-baseline.json"
            fresh = Baseline.from_findings(report.all_findings)
            stale = Baseline.load(config.root / target) \
                .stale_versus(fresh)
            fresh.write(config.root / target)
            print(f"wrote {target}: {len(report.all_findings)} "
                  f"finding(s) accepted as baseline, "
                  f"{stale} stale entries removed", file=out)
            return EXIT_CLEAN
        if changed is not None:
            report = filter_to_paths(
                report, changed_paths(config.root, changed))
        out.write(_RENDERERS[fmt](report))
        return report.exit_code
    except (LintConfigError, BaselineError, LintInternalError) as exc:
        print(f"simlint internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL_ERROR


def self_check() -> Tuple[LintReport, LintConfig]:
    """Lint ``src/repro/analysis`` itself with an empty baseline."""
    here = Path(__file__).resolve().parent
    config = LintConfig(root=here.parent.parent.parent, rule_paths={})
    report = lint_tree(config, paths=("src/repro/analysis",),
                       baseline=Baseline.empty())
    return report, config
