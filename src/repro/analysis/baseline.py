"""Committed baseline: legacy findings that do not block CI.

A baseline entry fingerprints a finding as ``(path, code, stripped
source line text)`` with a count — deliberately *line-number free*, so
unrelated edits above a legacy finding do not invalidate the baseline.
If a file accumulates more identical findings than the baseline budget
for that fingerprint, the surplus is reported as new.

The file is plain JSON, sorted, trailing-newline — regenerating it on
an unchanged tree is byte-stable (`repro lint --write-baseline`).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding

_VERSION = 1

Fingerprint = Tuple[str, str, str]


class BaselineError(ValueError):
    """Unreadable or malformed baseline file."""


def _fingerprint(finding: Finding) -> Fingerprint:
    return (finding.path, finding.code, finding.line_text.strip())


class Baseline:
    """Budgeted set of accepted legacy findings."""

    __slots__ = ("_budget",)

    def __init__(self, budget: Dict[Fingerprint, int]) -> None:
        self._budget = dict(budget)

    def __len__(self) -> int:
        return sum(self._budget.values())

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls(dict(Counter(_fingerprint(f) for f in findings)))

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.is_file():
            return cls.empty()
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("version") != _VERSION:
            raise BaselineError(
                f"baseline {path} is not a version-{_VERSION} simlint "
                f"baseline — regenerate with `repro lint --write-baseline`")
        budget: Dict[Fingerprint, int] = {}
        for entry in doc.get("entries", []):
            try:
                key = (str(entry["path"]), str(entry["code"]),
                       str(entry["text"]))
                count = int(entry.get("count", 1))
            except (TypeError, KeyError) as exc:
                raise BaselineError(
                    f"malformed baseline entry in {path}: {entry!r}"
                ) from exc
            budget[key] = budget.get(key, 0) + count
        return cls(budget)

    def write(self, path: Path) -> None:
        entries = [
            {"path": p, "code": c, "text": t, "count": n}
            for (p, c, t), n in sorted(self._budget.items()) if n > 0
        ]
        doc = {"version": _VERSION, "entries": entries}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def stale_versus(self, current: "Baseline") -> int:
        """Budget slots in this baseline that ``current`` no longer
        needs — the count ``--write-baseline`` prunes on rewrite."""
        return sum(max(0, count - current._budget.get(key, 0))
                   for key, count in self._budget.items())

    def filter(self, findings: Sequence[Finding]
               ) -> Tuple[List[Finding], int]:
        """Split ``findings`` into (new, number baselined).

        Budget is consumed in canonical sorted order so the result is
        independent of input order.
        """
        remaining = dict(self._budget)
        new: List[Finding] = []
        baselined = 0
        for finding in sorted(findings):
            key = _fingerprint(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined += 1
            else:
                new.append(finding)
        return new, baselined
