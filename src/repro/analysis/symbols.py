"""Project symbol table: modules, classes, functions, import aliases.

The per-file rules resolve dotted names with one file's import map;
whole-program rules (taint tracking, the service race lint, scheme
protocol conformance) need the same resolution *across* files — a call
to ``helper()`` must land on the ``def helper`` in another module even
when it arrived through a re-export or an ``as`` alias. The symbol
table indexes every top-level function, class, and method of a parsed
file set under canonical dotted symbols (``repro.campaign.trial
.run_trial``, ``repro.unsync.eih.ErrorInterruptHandler.poll``) and
folds each module's import map into one project-wide alias map, so
``repro.analysis.Baseline`` canonicalizes to
``repro.analysis.baseline.Baseline`` no matter how many re-export hops
sit in between.

Everything here is deterministic: modules index in sorted path order
and every public iteration surface is sorted, so downstream reports are
byte-stable.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Dict, List, Mapping, Optional, Set, Tuple, Union

from repro.analysis.framework import FileContext

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def module_name(rel_path: str) -> str:
    """Dotted module name of a POSIX-relative ``.py`` path.

    A leading ``src/`` component is dropped (the repo layout), and
    ``pkg/__init__.py`` names the package ``pkg`` itself.
    """
    parts = list(PurePosixPath(rel_path).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = leaf
    return ".".join(parts)


class FunctionInfo:
    """One function or method, addressable by its canonical symbol."""

    __slots__ = ("symbol", "module", "path", "node", "name",
                 "class_symbol", "is_async")

    def __init__(self, symbol: str, module: str, path: str,
                 node: FunctionNode,
                 class_symbol: Optional[str] = None) -> None:
        self.symbol = symbol
        self.module = module
        self.path = path
        self.node = node
        self.name = node.name
        self.class_symbol = class_symbol
        self.is_async = isinstance(node, ast.AsyncFunctionDef)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.symbol})"


class ClassInfo:
    """One top-level class: its methods and resolved base names."""

    __slots__ = ("symbol", "module", "path", "node", "name", "bases",
                 "methods")

    def __init__(self, symbol: str, module: str, path: str,
                 node: ast.ClassDef, bases: Tuple[str, ...]) -> None:
        self.symbol = symbol
        self.module = module
        self.path = path
        self.node = node
        self.name = node.name
        #: base-class dotted names resolved through the file's imports
        #: (canonicalize via the table to land on project classes)
        self.bases = bases
        self.methods: Dict[str, FunctionInfo] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassInfo({self.symbol})"


class ModuleInfo:
    """One parsed file under its dotted module name."""

    __slots__ = ("name", "path", "ctx", "functions", "classes")

    def __init__(self, name: str, path: str, ctx: FileContext) -> None:
        self.name = name
        self.path = path
        self.ctx = ctx
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}


class SymbolTable:
    """Canonical symbols and the project-wide alias map."""

    __slots__ = ("modules", "functions", "classes", "aliases")

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: imported/re-exported dotted name -> its import target
        self.aliases: Dict[str, str] = {}

    # -- construction -------------------------------------------------------
    @classmethod
    def build(cls, files: Mapping[str, FileContext]) -> "SymbolTable":
        table = cls()
        for path in sorted(files):
            table._index_module(path, files[path])
        return table

    def _index_module(self, path: str, ctx: FileContext) -> None:
        mod = module_name(path)
        info = ModuleInfo(mod, path, ctx)
        self.modules[mod] = info
        for local, target in ctx.imports.items():
            if target != local:
                self.aliases[f"{mod}.{local}"] = target
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbol = f"{mod}.{stmt.name}"
                fi = FunctionInfo(symbol, mod, path, stmt)
                info.functions[stmt.name] = fi
                self.functions[symbol] = fi
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(info, stmt)

    def _index_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        symbol = f"{info.name}.{node.name}"
        # a bare base name is either module-local or a builtin; the
        # module-qualified form lets MRO walks find local base classes
        # (builtins then simply resolve to nothing, which is fine)
        bases = tuple(b if "." in b else f"{info.name}.{b}"
                      for b in (info.ctx.resolve(base)
                                for base in node.bases)
                      if b is not None)
        ci = ClassInfo(symbol, info.name, info.path, node, bases)
        info.classes[node.name] = ci
        self.classes[symbol] = ci
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_symbol = f"{symbol}.{stmt.name}"
                fi = FunctionInfo(method_symbol, info.name, info.path,
                                  stmt, class_symbol=symbol)
                ci.methods[stmt.name] = fi
                self.functions[method_symbol] = fi

    # -- resolution ---------------------------------------------------------
    def canonicalize(self, dotted: str) -> str:
        """Follow import aliases until a project symbol (or fixpoint).

        ``repro.analysis.Baseline`` -> ``repro.analysis.baseline
        .Baseline``; chains of re-exports are followed with a cycle
        guard; a name that never lands on a project symbol is returned
        in its most-resolved form (e.g. ``time.monotonic``).
        """
        seen: Set[str] = set()
        while dotted not in self.functions and dotted not in self.classes:
            if dotted in seen:
                break
            seen.add(dotted)
            parts = dotted.split(".")
            replaced = None
            for i in range(len(parts), 0, -1):
                prefix = ".".join(parts[:i])
                target = self.aliases.get(prefix)
                if target is not None and target != prefix:
                    rest = parts[i:]
                    replaced = ".".join([target] + rest)
                    break
            if replaced is None or replaced == dotted:
                break
            dotted = replaced
        return dotted

    def resolve_method(self, class_symbol: str,
                       attr: str) -> Optional[FunctionInfo]:
        """Look ``attr`` up on a class and its project base classes."""
        seen: Set[str] = set()
        stack: List[str] = [class_symbol]
        while stack:
            symbol = stack.pop(0)
            if symbol in seen:
                continue
            seen.add(symbol)
            ci = self.classes.get(symbol)
            if ci is None:
                continue
            if attr in ci.methods:
                return ci.methods[attr]
            stack.extend(self.canonicalize(base) for base in ci.bases)
        return None

    def subclasses_of(self, base_symbol: str) -> List[ClassInfo]:
        """Project classes transitively deriving from ``base_symbol``."""
        out: List[ClassInfo] = []
        for symbol in sorted(self.classes):
            if symbol == base_symbol:
                continue
            if self._derives(symbol, base_symbol, set()):
                out.append(self.classes[symbol])
        return out

    def _derives(self, symbol: str, base_symbol: str,
                 seen: Set[str]) -> bool:
        if symbol in seen:
            return False
        seen.add(symbol)
        ci = self.classes.get(symbol)
        if ci is None:
            return False
        for base in ci.bases:
            canon = self.canonicalize(base)
            if canon == base_symbol:
                return True
            if self._derives(canon, base_symbol, seen):
                return True
        return False

    def class_const(self, class_symbol: str,
                    attr: str) -> Tuple[bool, object]:
        """Class-body constant ``attr``, searching project ancestors.

        Returns ``(declared, value)``; ``value`` is the literal
        (``ast.literal_eval``) or ``None`` when the assignment is not a
        literal expression.
        """
        seen: Set[str] = set()
        stack: List[str] = [class_symbol]
        while stack:
            symbol = stack.pop(0)
            if symbol in seen:
                continue
            seen.add(symbol)
            ci = self.classes.get(symbol)
            if ci is None:
                continue
            for stmt in ci.node.body:
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                if (isinstance(target, ast.Name) and target.id == attr
                        and value is not None):
                    try:
                        return True, ast.literal_eval(value)
                    except (ValueError, TypeError, SyntaxError):
                        return True, None
            stack.extend(self.canonicalize(base) for base in ci.bases)
        return False, None
