"""SIM601: shared instance state written from multiple concurrency
domains without a common lock (service tier).

The detection work lives in :mod:`repro.analysis.domains`; this rule
renders its reports as findings. Scoped to ``src/repro/service/`` via
the default rule paths — the service tier is the only place the repo
deliberately mixes the event loop, worker threads, and signal
handlers against one object graph.
"""

from __future__ import annotations

from typing import ClassVar, Iterator

from repro.analysis.callgraph import ProjectContext
from repro.analysis.domains import find_races
from repro.analysis.findings import Finding
from repro.analysis.framework import ProjectRule


class SharedStateRace(ProjectRule):
    """SIM601: one attribute, several domains, no common lock."""

    code: ClassVar[str] = "SIM601"
    summary: ClassVar[str] = (
        "instance attribute written from more than one concurrency "
        "domain (async/thread/signal) without a common lock")
    example: ClassVar[str] = (
        "self._jobs[k] = job  # also mutated by a to_thread worker")

    def check_project(self,
                      project: ProjectContext) -> Iterator[Finding]:
        for report in find_races(project):
            ctx = project.files.get(report.path)
            writes = "; ".join(
                f"{site.method}() [{report.path}:{site.lineno}] "
                f"in {domain} domain"
                + (f" under self.{site.lock}" if site.lock else
                   " unlocked")
                for domain, site in report.entries)
            cls_name = report.class_symbol.rsplit(".", 1)[-1]
            message = (
                f"self.{report.attr} of {cls_name} is written from "
                f"{len(report.domains)} concurrency domains "
                f"({', '.join(report.domains)}) without a common "
                f"lock: {writes}")
            anchor = report.anchor
            line_text = ctx.line_text(anchor.lineno) if ctx else ""
            yield Finding(path=report.path, line=anchor.lineno, col=0,
                          code=self.code, message=message,
                          line_text=line_text)
