"""SIM4xx — exception discipline.

The five-outcome trial taxonomy (crash > hang > sdc > due > recovered)
only works if failures reach the classifier: a handler that swallows
exceptions converts a would-be CRASH record into silent garbage — an
SDC in the harness itself.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, List

from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, Rule

_BROAD = ("Exception", "BaseException")


class BareExcept(Rule):
    """SIM401: no bare ``except:`` anywhere in the tree."""

    code: ClassVar[str] = "SIM401"
    summary: ClassVar[str] = (
        "bare except: catches SystemExit/KeyboardInterrupt and defeats "
        "outcome classification")
    example: ClassVar[str] = "try: run()\nexcept: pass"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare except catches SystemExit/KeyboardInterrupt "
                    "too; name the exception types")


def _only_swallows(body: List[ast.stmt]) -> bool:
    """True when a handler body does nothing with the exception."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)):
            continue  # docstring / ellipsis
        return False
    return True


class SwallowedException(Rule):
    """SIM402: broad handlers must classify or re-raise, never ``pass``.

    PR 4's executor records a doubly-failed trial as a CRASH outcome
    with the traceback attached; a silent ``except Exception: pass`` in
    a recovery or executor path would erase exactly that signal.
    """

    code: ClassVar[str] = "SIM402"
    summary: ClassVar[str] = (
        "except Exception: pass — failures must be classified "
        "(outcome taxonomy) or re-raised, not swallowed")
    example: ClassVar[str] = "except Exception:\n    pass"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:  # SIM401's finding, not ours
                continue
            types = (node.type.elts if isinstance(node.type, ast.Tuple)
                     else [node.type])
            broad = any(ctx.resolve(t) in _BROAD for t in types)
            if broad and _only_swallows(node.body):
                yield self.finding(
                    ctx, node,
                    "broad except handler swallows the failure; record "
                    "it (crash_result / telemetry event) or re-raise")
