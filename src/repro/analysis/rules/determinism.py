"""SIM1xx — determinism rules.

Simulation results must be a pure function of (program, config, seed):
the campaign store's byte-identity across serial/parallel runs, resume,
and replay reuse all depend on it. These rules catch the ways that
property has actually been broken (or nearly broken) in this codebase.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, Rule

#: wall-clock and CPU-clock reads (resolved dotted names)
_WALLCLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class WallClock(Rule):
    """SIM101: no wall-clock reads in simulation paths."""

    code: ClassVar[str] = "SIM101"
    summary: ClassVar[str] = (
        "wall-clock read in a sim path — results must be a pure function "
        "of (program, config, seed)")
    example: ClassVar[str] = "t0 = time.perf_counter()  # inside a model"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _WALLCLOCK:
                yield self.finding(
                    ctx, node,
                    f"{resolved}() reads the wall clock; sim state may "
                    f"not depend on real time (move timing to the "
                    f"harness, or per-path-ignore this file)")


class UnseededRandom(Rule):
    """SIM102: every RNG must be an explicitly seeded instance."""

    code: ClassVar[str] = "SIM102"
    summary: ClassVar[str] = (
        "unseeded or process-global RNG — trials must replay from their "
        "recorded seed")
    example: ClassVar[str] = "flip = random.random() < rate"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if resolved == "random.Random":
                if not node.args or (isinstance(node.args[0], ast.Constant)
                                     and node.args[0].value is None):
                    yield self.finding(
                        ctx, node,
                        "random.Random() without a seed is seeded from "
                        "the OS; pass the trial seed explicitly")
            elif resolved == "random.SystemRandom":
                yield self.finding(
                    ctx, node,
                    "random.SystemRandom is nondeterministic by design; "
                    "use random.Random(seed)")
            elif resolved.startswith("random."):
                yield self.finding(
                    ctx, node,
                    f"{resolved}() uses the process-global RNG (shared, "
                    f"seed-order dependent); use an explicitly seeded "
                    f"random.Random instance")
            elif resolved == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        "numpy.random.default_rng() without a seed is "
                        "entropy-seeded; pass the trial seed")
            elif resolved.startswith("numpy.random."):
                yield self.finding(
                    ctx, node,
                    f"{resolved}() uses numpy's legacy global RNG; use "
                    f"numpy.random.default_rng(seed)")


#: attribute calls that mutate their receiver (state-mutating loop test)
_MUTATORS = frozenset({
    "add", "append", "appendleft", "extend", "insert", "push", "write",
    "pop", "popleft", "popitem", "remove", "discard", "clear", "update",
    "setdefault", "send", "emit", "record", "raise_interrupt",
})

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class _SetExprs:
    """Which expressions in a file are known to be sets.

    Tracks three signal sources: literal set expressions, local names
    assigned from set expressions inside the same function, and
    ``self.X`` attributes assigned (or annotated) as sets anywhere in
    the same class. Deliberately flow-insensitive — a name rebound away
    from a set later in the function stays flagged; use the pragma for
    the rare deliberate case.
    """

    def __init__(self, ctx: FileContext) -> None:
        self._ctx = ctx
        #: ClassDef node -> set attribute names
        self._class_attrs: Dict[ast.ClassDef, Set[str]] = {}
        #: FunctionDef node -> set local names
        self._fn_locals: Dict[ast.AST, Set[str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                self._class_attrs[node] = self._collect_attrs(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._fn_locals[node] = self._collect_locals(node)

    def _collect_attrs(self, cls: ast.ClassDef) -> Set[str]:
        attrs: Set[str] = set()
        for node in ast.walk(cls):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                if self._is_set_annotation(node.annotation):
                    value = ast.Set(elts=[])  # annotation alone is enough
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and value is not None
                    and self._is_literal_set(value)):
                attrs.add(target.attr)
        return attrs

    def _collect_locals(self, fn: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(fn):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and self._is_literal_set(node.value)):
                names.add(node.targets[0].id)
        return names

    def _is_set_annotation(self, ann: ast.expr) -> bool:
        resolved = self._ctx.resolve(ann)
        if resolved in ("set", "frozenset", "typing.Set",
                        "typing.FrozenSet", "Set", "FrozenSet"):
            return True
        if isinstance(ann, ast.Subscript):
            return self._is_set_annotation(ann.value)
        return False

    def _is_literal_set(self, node: ast.expr) -> bool:
        """A set-producing expression, ignoring name tracking."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return self._ctx.resolve(node.func) in ("set", "frozenset")
        return False

    def is_set(self, node: ast.expr, fn: Optional[ast.AST],
               cls: Optional[ast.ClassDef]) -> bool:
        if self._is_literal_set(node):
            return True
        if (isinstance(node, ast.Name) and fn is not None
                and node.id in self._fn_locals.get(fn, set())):
            return True
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self" and cls is not None
                and node.attr in self._class_attrs.get(cls, set())):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return (self.is_set(node.left, fn, cls)
                    or self.is_set(node.right, fn, cls))
        return False


def _enclosing_scopes(tree: ast.Module
                      ) -> Dict[ast.AST, Tuple[Optional[ast.AST],
                                               Optional[ast.ClassDef]]]:
    """node -> (enclosing function, enclosing class) for every node."""
    scopes: Dict[ast.AST, Tuple[Optional[ast.AST],
                                Optional[ast.ClassDef]]] = {}

    def walk(node: ast.AST, fn: Optional[ast.AST],
             cls: Optional[ast.ClassDef]) -> None:
        for child in ast.iter_child_nodes(node):
            scopes[child] = (fn, cls)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk(child, child, cls)
            elif isinstance(child, ast.ClassDef):
                walk(child, fn, child)
            else:
                walk(child, fn, cls)

    walk(tree, None, None)
    return scopes


def _mutates_state(body: List[ast.stmt]) -> bool:
    """Whether a loop body writes anything outside its own locals."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                if any(isinstance(t, (ast.Attribute, ast.Subscript))
                       for t in node.targets):
                    return True
            elif isinstance(node, ast.AugAssign):
                # `total += x` on a local accumulator is order-free for
                # the common ops; writes through attributes/subscripts
                # reach shared state and are not
                if isinstance(node.target, (ast.Attribute, ast.Subscript)):
                    return True
            elif isinstance(node, ast.Delete):
                if any(isinstance(t, (ast.Attribute, ast.Subscript))
                       for t in node.targets):
                    return True
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS):
                return True
    return False


class UnorderedSetIteration(Rule):
    """SIM103: no order-sensitive consumption of sets without sorted().

    The shipped EIH originally popped pending error interrupts in hash
    order, which diverged between the serial and process-pool campaign
    paths. Any of: iterating a set in a state-mutating loop,
    ``set.pop()``, ``next(iter(set))``, or materializing a set with
    ``list()``/``tuple()``/a list comprehension reintroduces that bug
    class.
    """

    code: ClassVar[str] = "SIM103"
    summary: ClassVar[str] = (
        "order-sensitive consumption of an unordered set — wrap in "
        "sorted(...) to pin the order")
    example: ClassVar[str] = "victim = self.pending.pop()  # hash order!"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        sets = _SetExprs(ctx)
        scopes = _enclosing_scopes(ctx.tree)

        def is_set(node: ast.expr, at: ast.AST) -> bool:
            fn, cls = scopes.get(at, (None, None))
            return sets.is_set(node, fn, cls)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and is_set(node.iter, node):
                if _mutates_state(node.body):
                    yield self.finding(
                        ctx, node,
                        "iterating a set in a state-mutating loop; "
                        "iteration order is hash order — wrap the "
                        "iterable in sorted(...)")
            elif isinstance(node, ast.ListComp):
                gen = node.generators[0]
                if is_set(gen.iter, node):
                    yield self.finding(
                        ctx, node,
                        "list comprehension over a set materializes "
                        "hash order; wrap the set in sorted(...)")
            elif isinstance(node, ast.Call):
                resolved = ctx.resolve(node.func)
                if (resolved in ("list", "tuple") and len(node.args) == 1
                        and is_set(node.args[0], node)):
                    yield self.finding(
                        ctx, node,
                        f"{resolved}(set) materializes hash order; use "
                        f"sorted(...)")
                elif (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "pop" and not node.args
                        and is_set(node.func.value, node)):
                    yield self.finding(
                        ctx, node,
                        "set.pop() removes an arbitrary (hash-order) "
                        "element — the EIH-pop bug; pop "
                        "min(...)/max(...) with an explicit key instead")
                elif (resolved == "next" and node.args
                        and isinstance(node.args[0], ast.Call)
                        and ctx.resolve(node.args[0].func) == "iter"
                        and node.args[0].args
                        and is_set(node.args[0].args[0], node)):
                    yield self.finding(
                        ctx, node,
                        "next(iter(set)) picks a hash-order element; "
                        "use min(...)/sorted(...) with an explicit key")


class IdAsKey(Rule):
    """SIM104: ``id()`` is allocation-dependent — never key or hash on it.

    The campaign baseline cache was originally keyed on ``id(config)``;
    once a config was garbage-collected its id was reused and a *wrong
    baseline* silently matched. Key caches on value tuples
    (``dataclasses.astuple``) and compare identity with ``is``.
    """

    code: ClassVar[str] = "SIM104"
    summary: ClassVar[str] = (
        "id() in sim code — allocation-dependent values must not reach "
        "keys, hashes, or ordering")
    example: ClassVar[str] = "cache[id(config)] = baseline_result"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "id"
                    and "id" not in ctx.imports):
                yield self.finding(
                    ctx, node,
                    "id() is allocation-dependent (and reused after gc) "
                    "— key on value tuples, compare with `is`")


_DICT_MUTATORS = frozenset({"pop", "popitem", "clear", "update",
                            "setdefault", "__setitem__", "__delitem__"})
_VIEW_METHODS = frozenset({"keys", "values", "items"})


class DictMutatedDuringIteration(Rule):
    """SIM105: don't mutate a dict while iterating it (or its views)."""

    code: ClassVar[str] = "SIM105"
    summary: ClassVar[str] = (
        "dict mutated while iterating its view — RuntimeError at best, "
        "order-dependent skips at worst")
    example: ClassVar[str] = "for k in d: d.pop(k)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            target = node.iter
            if (isinstance(target, ast.Call)
                    and isinstance(target.func, ast.Attribute)
                    and target.func.attr in _VIEW_METHODS
                    and not target.args):
                base = target.func.value
            elif isinstance(target, (ast.Name, ast.Attribute)):
                base = target
            else:
                continue
            base_dump = ast.dump(base)
            if self._body_mutates(node.body, base_dump):
                yield self.finding(
                    ctx, node,
                    "loop mutates the mapping it is iterating; snapshot "
                    "the keys first (`for k in sorted(d):` or "
                    "`list(d.items())`)")

    @staticmethod
    def _body_mutates(body: List[ast.stmt], base_dump: str) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.Delete)):
                    targets = (node.targets if isinstance(
                        node, (ast.Assign, ast.Delete)) else [])
                    for t in targets:
                        if (isinstance(t, ast.Subscript)
                                and ast.dump(t.value) == base_dump):
                            return True
                elif (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _DICT_MUTATORS
                        and ast.dump(node.func.value) == base_dump):
                    return True
        return False


class DeepcopyOnHotState(Rule):
    """SIM106: no ``copy.deepcopy`` on hot system state.

    ``deepcopy`` walks the whole object graph through the generic memo
    machinery — against the differential-replay snapshot path (typed
    ``clone()`` methods, content-interned page tables, copy-on-write
    restores) it is an order-of-magnitude tax, and it silently drags in
    whatever the graph happens to reach (telemetry sinks, bus/L2
    cross-references, bound RNGs), decoupling the copy's meaning from
    the snapshot protocol's. Scoped (via ``[tool.simlint.rule-paths]``)
    to the campaign and checkpoint packages, where per-trial copies are
    the hot path.
    """

    code: ClassVar[str] = "SIM106"
    summary: ClassVar[str] = (
        "copy.deepcopy on hot system state — use the snapshot protocol "
        "(ArchState.clone / checkpoint.snapshot) instead")
    example: ClassVar[str] = "saved = copy.deepcopy(system)  # per trial!"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.resolve(node.func) == "copy.deepcopy":
                yield self.finding(
                    ctx, node,
                    "copy.deepcopy walks the full object graph per call "
                    "— snapshot hot state with ArchState.clone() / "
                    "repro.checkpoint.snapshot (typed, page-interned, "
                    "copy-on-write) instead")
