"""SIM107 — no blocking calls inside ``async def`` bodies.

The campaign service multiplexes every HTTP handler, the SSE stream and
the job admission loop on one event loop. A single synchronous sleep,
subprocess wait, or unbounded ``queue.get`` inside a coroutine stalls
*all* of them at once — jobs stop being admitted, the dashboard
freezes, and health checks time out. Engine work belongs behind
``asyncio.to_thread``; waits belong to ``await asyncio.sleep`` /
``loop.run_in_executor``.

Scoped by default to ``src/repro/service/`` (the only asyncio package),
via :data:`repro.analysis.config.DEFAULT_RULE_PATHS`.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, Rule

#: dotted names that block the calling thread outright
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.system",
    "os.wait",
    "os.waitpid",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
})

#: receiver-method pairs that block unless given a timeout
_BLOCKING_METHODS = frozenset({"get", "join", "acquire", "wait"})

#: constructors whose instances carry the blocking methods above
_BLOCKING_TYPES = frozenset({
    "queue.Queue", "queue.LifoQueue", "queue.PriorityQueue",
    "queue.SimpleQueue", "multiprocessing.Queue",
    "threading.Lock", "threading.RLock", "threading.Event",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.Condition", "threading.Thread",
})


def _blocking_receivers(ctx: FileContext) -> "set[str]":
    """Names bound to blocking primitives anywhere in the file."""
    names: set[str] = set()
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and ctx.resolve(node.value.func) in _BLOCKING_TYPES):
            continue
        for target in node.targets:
            resolved = ctx.resolve(target)
            if resolved is not None:
                names.add(resolved.lower())
    return names


def _async_owned_nodes(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Nodes executed *by* the coroutine itself.

    Nested function definitions are skipped — their bodies run in
    whatever context eventually calls them (often a worker thread via
    ``asyncio.to_thread``), so they are not the event loop's problem.
    """
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _has_timeout(call: ast.Call) -> bool:
    return any(kw.arg == "timeout" for kw in call.keywords)


def _nonblocking_flag(call: ast.Call) -> bool:
    """True for ``q.get(False)`` / ``q.get(block=False)`` style calls."""
    if call.args and isinstance(call.args[0], ast.Constant) \
            and call.args[0].value is False:
        return True
    return any(kw.arg == "block"
               and isinstance(kw.value, ast.Constant)
               and kw.value.value is False for kw in call.keywords)


class BlockingCallInAsync(Rule):
    """SIM107: coroutine bodies must not block the event loop."""

    code: ClassVar[str] = "SIM107"
    summary: ClassVar[str] = (
        "blocking call inside async def — stalls every coroutine on "
        "the loop (use await asyncio.sleep / asyncio.to_thread)")
    example: ClassVar[str] = "async def push(): time.sleep(1.0)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        receivers = _blocking_receivers(ctx)
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in _async_owned_nodes(fn):
                if not isinstance(node, ast.Call):
                    continue
                finding = self._check_call(ctx, fn, node, receivers)
                if finding is not None:
                    yield finding

    def _check_call(self, ctx: FileContext, fn: ast.AsyncFunctionDef,
                    call: ast.Call,
                    receivers: "set[str]") -> "Finding | None":
        resolved = ctx.resolve(call.func)
        if resolved in _BLOCKING_CALLS:
            hint = "await asyncio.sleep(...)" \
                if resolved == "time.sleep" \
                else "asyncio.to_thread(...) or an async subprocess API"
            return self.finding(
                ctx, call,
                f"{resolved}() blocks the event loop inside async "
                f"{fn.name}(); use {hint}")
        # untimed queue.get() / lock.acquire() / thread.join() on a
        # receiver whose name betrays a blocking primitive
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in _BLOCKING_METHODS:
            receiver = (ctx.resolve(call.func.value) or "").lower()
            if (receiver in receivers
                    or any(word in receiver for word in
                           ("queue", "lock", "event", "thread",
                            "semaphore", "condition", "process",
                            "pool"))) \
                    and "asyncio" not in receiver \
                    and not _has_timeout(call) \
                    and not _nonblocking_flag(call):
                return self.finding(
                    ctx, call,
                    f"untimed .{call.func.attr}() on {receiver!r} can "
                    f"block the event loop inside async {fn.name}(); "
                    f"give it a timeout, use the non-blocking form, or "
                    f"move it behind asyncio.to_thread()")
        return None
