"""SIM701: ResilienceScheme declaration conformance (whole-program).

Scheme descriptors are pure class-level declarations, so their
protocol is fully checkable statically: every project subclass of
:class:`repro.schemes.base.ResilienceScheme` must declare a non-empty
``name`` and ``description``, a non-empty tuple-of-strings
``telemetry_tracks``, a ``metric_prefix`` equal to ``name + "."``
(the metrics dashboards key off that invariant), and — when it
overrides ``recovery_extra_keys`` — a tuple of strings. Declarations
are looked up along project base classes, so intermediate abstract
schemes only need to fill in what they add.
"""

from __future__ import annotations

from typing import ClassVar, Iterator, List

from repro.analysis.callgraph import ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.framework import ProjectRule

_BASE = "repro.schemes.base.ResilienceScheme"


def _is_str_tuple(value: object) -> bool:
    return isinstance(value, tuple) \
        and all(isinstance(item, str) for item in value)


class SchemeProtocol(ProjectRule):
    """SIM701: a scheme subclass breaks the descriptor protocol."""

    code: ClassVar[str] = "SIM701"
    summary: ClassVar[str] = (
        "ResilienceScheme subclass missing/mistyping a protocol "
        "declaration (name, description, telemetry_tracks, "
        "metric_prefix == name + '.')")
    example: ClassVar[str] = (
        "class MyScheme(ResilienceScheme):\n"
        "    name = 'my'\n"
        "    metric_prefix = 'other.'  # must be 'my.'")

    def check_project(self,
                      project: ProjectContext) -> Iterator[Finding]:
        table = project.table
        if _BASE not in table.classes:
            return
        for ci in table.subclasses_of(_BASE):
            problems: List[str] = []
            declared, name = table.class_const(ci.symbol, "name")
            if not declared or not isinstance(name, str) or not name:
                problems.append("name must be a non-empty str")
                name = None
            declared, desc = table.class_const(ci.symbol, "description")
            if not declared or not isinstance(desc, str) or not desc:
                problems.append("description must be a non-empty str")
            declared, tracks = table.class_const(ci.symbol,
                                                 "telemetry_tracks")
            if not declared or not _is_str_tuple(tracks) or not tracks:
                problems.append(
                    "telemetry_tracks must be a non-empty tuple of "
                    "track names")
            declared, prefix = table.class_const(ci.symbol,
                                                 "metric_prefix")
            if not declared or not isinstance(prefix, str):
                problems.append("metric_prefix must be a str")
            elif isinstance(name, str) and prefix != name + ".":
                problems.append(
                    f"metric_prefix {prefix!r} must equal name + '.' "
                    f"({name + '.'!r})")
            declared, extra = table.class_const(ci.symbol,
                                                "recovery_extra_keys")
            if declared and not _is_str_tuple(extra):
                problems.append(
                    "recovery_extra_keys must be a tuple of record "
                    "keys")
            if not problems:
                continue
            ctx = project.files.get(ci.path)
            lineno = ci.node.lineno
            line_text = ctx.line_text(lineno) if ctx else ""
            yield Finding(
                path=ci.path, line=lineno, col=ci.node.col_offset,
                code=self.code,
                message=(f"scheme {ci.name} violates the descriptor "
                         f"protocol: {'; '.join(problems)}"),
                line_text=line_text)
