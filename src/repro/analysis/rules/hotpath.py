"""SIM2xx — hot-path rules.

The cycle loop allocates one record per dynamic instruction / store /
miss / interrupt; at campaign scale (10k trials x millions of cycles)
a per-instance ``__dict__`` or an eagerly-built f-string is measurable.
PR 2 bought a 3.4x throughput win partly from ``__slots__`` records —
these rules keep that win from eroding.
"""

from __future__ import annotations

import ast
import re
from typing import ClassVar, Iterator, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, Rule

#: class-name shapes that mean "allocated per cycle/instruction/event"
_RECORD_NAME = re.compile(
    r"(Record|Entry|Info|Slot|Line|Packet|Token|Uop|Interrupt|Fetched|"
    r"Instruction)$")

_DATACLASS_NAMES = ("dataclass", "dataclasses.dataclass")


def _dataclass_decorator(ctx: FileContext,
                         cls: ast.ClassDef) -> Optional[ast.expr]:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if ctx.resolve(target) in _DATACLASS_NAMES:
            return dec
    return None


def _has_slots_kwarg(dec: ast.expr) -> bool:
    if not isinstance(dec, ast.Call):
        return False
    for kw in dec.keywords:
        if (kw.arg == "slots" and isinstance(kw.value, ast.Constant)
                and kw.value.value is True):
            return True
    return False


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if (isinstance(stmt, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__slots__"
                        for t in stmt.targets)):
            return True
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"):
            return True
    return False


class SlotsOnHotRecords(Rule):
    """SIM201: per-cycle record classes must declare ``__slots__``.

    Applies (via ``rule-paths`` scoping) to the cycle-level simulator
    packages only. A "record" is recognised by name shape — ``*Entry``,
    ``*Record``, ``*Info``, ... — on classes with no explicit bases
    (slots through an unslotted base would be ineffective anyway).
    """

    code: ClassVar[str] = "SIM201"
    summary: ClassVar[str] = (
        "per-cycle record without __slots__ — a per-instance dict at "
        "campaign scale")
    example: ClassVar[str] = "@dataclass\nclass CBEntry:  # no slots=True"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.bases or node.keywords:
                continue  # slots via inheritance is its own design call
            if not _RECORD_NAME.search(node.name):
                continue
            dec = _dataclass_decorator(ctx, node)
            if dec is not None:
                if not _has_slots_kwarg(dec) and not _declares_slots(node):
                    yield self.finding(
                        ctx, node,
                        f"record dataclass {node.name} should declare "
                        f"slots (@dataclass(slots=True)) — one instance "
                        f"per simulated event")
            else:
                defines_init = any(
                    isinstance(s, ast.FunctionDef) and s.name == "__init__"
                    for s in node.body)
                if defines_init and not _declares_slots(node):
                    yield self.finding(
                        ctx, node,
                        f"record class {node.name} should declare "
                        f"__slots__ — one instance per simulated event")


#: functions whose bodies are the per-cycle inner loop
def _is_step_function(name: str) -> bool:
    return (name in ("step", "tick")
            or name.startswith(("step_", "_step", "tick_", "_tick",
                                "on_cycle")))


_LOG_METHODS = frozenset({"debug", "info", "warning", "warn", "error",
                          "exception", "critical", "log"})


class FormatInStepLoop(Rule):
    """SIM202: no eager string formatting or logging in step/tick.

    An f-string builds its string even when nobody consumes it; at one
    call per cycle that dominates the loop. Error paths are exempt
    (anything inside a ``raise`` or ``assert``), and null-backend
    telemetry calls are fine because they format nothing.
    """

    code: ClassVar[str] = "SIM202"
    summary: ClassVar[str] = (
        "eager formatting/logging inside a step/tick loop — route "
        "through the null-backend telemetry pattern")
    example: ClassVar[str] = 'def step(...): log.debug(f"cycle {now}")'

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_step_function(fn.name):
                continue
            exempt = self._error_path_nodes(fn)
            for node in ast.walk(fn):
                if node in exempt:
                    continue
                if isinstance(node, ast.JoinedStr):
                    yield self.finding(
                        ctx, node,
                        "f-string in a step/tick body builds a string "
                        "every cycle; format lazily or behind the null "
                        "backend")
                elif (isinstance(node, ast.BinOp)
                        and isinstance(node.op, ast.Mod)
                        and isinstance(node.left, ast.Constant)
                        and isinstance(node.left.value, str)):
                    yield self.finding(
                        ctx, node,
                        "%-formatting in a step/tick body runs every "
                        "cycle; format lazily or behind the null backend")
                elif isinstance(node, ast.Call):
                    yield from self._check_call(ctx, node)

    def _check_call(self, ctx: FileContext,
                    node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            yield self.finding(
                ctx, node, "print() in a step/tick body; emit a "
                           "telemetry event instead")
            return
        if not isinstance(func, ast.Attribute):
            return
        if (func.attr == "format" and isinstance(func.value, ast.Constant)
                and isinstance(func.value.value, str)):
            yield self.finding(
                ctx, node, "str.format in a step/tick body runs every "
                           "cycle; format lazily or behind the null "
                           "backend")
            return
        resolved = ctx.resolve(func) or ""
        receiver = resolved.rsplit(".", 1)[0].lower()
        if (func.attr in _LOG_METHODS
                and ("log" in receiver or resolved.startswith("logging."))):
            yield self.finding(
                ctx, node,
                f"{resolved}() in a step/tick body formats and filters "
                f"every cycle; use the telemetry event log (null backend "
                f"when off)")

    @staticmethod
    def _error_path_nodes(fn: ast.AST) -> Set[ast.AST]:
        """Nodes inside raise/assert — formatting there is error-path."""
        exempt: Set[ast.AST] = set()
        for node in ast.walk(fn):
            if isinstance(node, (ast.Raise, ast.Assert)):
                for sub in ast.walk(node):
                    exempt.add(sub)
        return exempt
