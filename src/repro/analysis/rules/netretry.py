"""SIM109 — bounded retries and timed sockets in the service tier.

The distributed worker tier lives or dies by two disciplines:

* every retry loop must be **bounded** — a ``while True`` wrapped
  around a network or subprocess call with no attempt budget or
  deadline turns a dead coordinator into a wedged worker that holds
  its lease forever (the exact failure the lease TTL exists to catch);
* every socket-backed operation must carry an explicit ``timeout`` —
  the stdlib default is *blocking forever*, which converts one stalled
  peer into a stalled process.

The sanctioned alternative for both is
:func:`repro.service.retry.call_with_retry`, which carries attempt
counts, a wall-clock budget, and jittered backoff. Loops that
articulate their own bound (a name containing ``deadline``, ``budget``,
``attempt``, ``tries``/``retries``, or ``remaining``) also pass.

Scoped by default to ``src/repro/service/`` (the only networked
package), via :data:`repro.analysis.config.DEFAULT_RULE_PATHS`.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, Rule

#: dotted names that talk to the network or spawn processes
_NET_CALLS = frozenset({
    "http.client.HTTPConnection",
    "http.client.HTTPSConnection",
    "urllib.request.urlopen",
    "socket.create_connection",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
})

#: the subset that accepts (and must be given) a ``timeout`` kwarg
_NEEDS_TIMEOUT = frozenset({
    "http.client.HTTPConnection",
    "http.client.HTTPSConnection",
    "urllib.request.urlopen",
    "socket.create_connection",
})

#: identifier fragments that evidence a bound on the loop
_BUDGET_WORDS = ("deadline", "budget", "attempt", "retries", "tries",
                 "remaining", "expires")


def _loop_is_unconditional(loop: ast.While) -> bool:
    test = loop.test
    return isinstance(test, ast.Constant) and bool(test.value) is True


def _names_in(node: ast.AST) -> Iterator[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id.lower()
        elif isinstance(child, ast.Attribute):
            yield child.attr.lower()


def _has_budget_evidence(loop: ast.While, ctx: FileContext) -> bool:
    for name in _names_in(loop):
        if any(word in name for word in _BUDGET_WORDS):
            return True
    for child in ast.walk(loop):
        if isinstance(child, ast.Call):
            resolved = ctx.resolve(child.func) or ""
            if resolved.endswith("call_with_retry"):
                return True
        # `break` proves the loop can end, but only budget words prove
        # it ends on a *schedule*; `return` inside the net call's retry
        # arm is the classic unbounded shape, so neither counts here
    return False


def _has_timeout(call: ast.Call) -> bool:
    return any(kw.arg == "timeout" for kw in call.keywords)


class UnboundedNetRetry(Rule):
    """SIM109: service-tier retries need budgets; sockets need timeouts."""

    code: ClassVar[str] = "SIM109"
    summary: ClassVar[str] = (
        "unbounded retry loop around a network/subprocess call, or a "
        "socket operation without an explicit timeout (use "
        "repro.service.retry.call_with_retry / pass timeout=)")
    example: ClassVar[str] = \
        "while True: conn = HTTPConnection(host)  # no budget, no timeout"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.While):
                finding = self._check_loop(ctx, node)
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.Call):
                finding = self._check_socket(ctx, node)
                if finding is not None:
                    yield finding

    def _check_loop(self, ctx: FileContext,
                    loop: ast.While) -> Optional[Finding]:
        if not _loop_is_unconditional(loop):
            return None
        net_call = None
        for child in ast.walk(loop):
            if isinstance(child, ast.Call) \
                    and ctx.resolve(child.func) in _NET_CALLS:
                net_call = ctx.resolve(child.func)
                break
        if net_call is None:
            return None
        if _has_budget_evidence(loop, ctx):
            return None
        return self.finding(
            ctx, loop,
            f"while True around {net_call}() with no attempt budget or "
            f"deadline — a dead peer wedges this loop forever; use "
            f"repro.service.retry.call_with_retry or bound it with a "
            f"deadline/attempt counter")

    def _check_socket(self, ctx: FileContext,
                      call: ast.Call) -> Optional[Finding]:
        resolved = ctx.resolve(call.func)
        if resolved not in _NEEDS_TIMEOUT:
            return None
        if _has_timeout(call):
            return None
        return self.finding(
            ctx, call,
            f"{resolved}() without an explicit timeout= blocks forever "
            f"on a stalled peer; pass a timeout (the retry policy's "
            f"per-attempt bound)")
