"""The simlint rule battery.

Families:

* **SIM1xx determinism** — wall-clock reads, unseeded RNGs, unordered
  set iteration, ``id()`` keys, dict-mutation-during-view-iteration,
  blocking calls inside ``async def`` (event-loop stalls), unbounded
  network retry loops / untimed sockets in the service tier.
* **SIM2xx hot path** — ``__slots__`` on per-cycle records, no eager
  string formatting / logging inside ``step``/``tick`` loops.
* **SIM3xx multiprocessing hygiene** — executor callables must be
  module-level; no module-global writes from worker-reachable code.
* **SIM4xx exception discipline** — no bare ``except:``, no swallowed
  broad handlers (the outcome taxonomy depends on classification).
* **SIM5xx inter-procedural taint** (whole-program) — nondeterministic
  values (wall-clock, unseeded RNG, hash order, ``id()``, environment)
  tracked through the call graph into trial records, result stores,
  journals, RNG seeds, telemetry payloads, and mapping keys.
* **SIM6xx shared-state races** (whole-program) — service-tier
  instance attributes written from more than one concurrency domain
  (event loop / worker thread / signal handler) without a common lock.
* **SIM7xx protocol conformance** (whole-program) — ResilienceScheme
  descriptor declarations (name, telemetry tracks, metric prefix).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.framework import Rule
from repro.analysis.rules.asyncblocking import BlockingCallInAsync
from repro.analysis.rules.determinism import (
    DeepcopyOnHotState,
    DictMutatedDuringIteration,
    IdAsKey,
    UnorderedSetIteration,
    UnseededRandom,
    WallClock,
)
from repro.analysis.rules.exceptions import BareExcept, SwallowedException
from repro.analysis.rules.hotpath import FormatInStepLoop, SlotsOnHotRecords
from repro.analysis.rules.interproc import (
    AllocIdTaint,
    EnvTaint,
    RNGTaint,
    SetOrderTaint,
    WallClockTaint,
)
from repro.analysis.rules.netretry import UnboundedNetRetry
from repro.analysis.rules.procpool import (
    ModuleGlobalWrite,
    NonModuleLevelWorker,
)
from repro.analysis.rules.races import SharedStateRace
from repro.analysis.rules.scheme_protocol import SchemeProtocol

#: every rule, instantiated once, in code order
ALL_RULES: Tuple[Rule, ...] = (
    WallClock(),
    UnseededRandom(),
    UnorderedSetIteration(),
    IdAsKey(),
    DictMutatedDuringIteration(),
    DeepcopyOnHotState(),
    BlockingCallInAsync(),
    UnboundedNetRetry(),
    SlotsOnHotRecords(),
    FormatInStepLoop(),
    NonModuleLevelWorker(),
    ModuleGlobalWrite(),
    BareExcept(),
    SwallowedException(),
    WallClockTaint(),
    RNGTaint(),
    SetOrderTaint(),
    AllocIdTaint(),
    EnvTaint(),
    SharedStateRace(),
    SchemeProtocol(),
)


def rule_catalogue() -> List[Dict[str, str]]:
    """Stable (code, summary, example) listing for docs and ``--help``."""
    return [{"code": r.code, "summary": r.summary, "example": r.example}
            for r in ALL_RULES]
