"""SIM3xx — multiprocessing hygiene.

The campaign fans trials out over a process pool and must produce
byte-identical results when degraded to serial. That only holds when
worker callables pickle cleanly (module-level, closure-free) and no
worker mutates module state the parent also reads.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, Rule

#: executor methods whose first argument is the worker callable
_SUBMIT_METHODS = frozenset({"submit", "map", "imap", "imap_unordered",
                             "apply", "apply_async", "starmap",
                             "starmap_async"})


def _looks_like_pool(receiver: str) -> bool:
    receiver = receiver.lower()
    return "pool" in receiver or "executor" in receiver


class NonModuleLevelWorker(Rule):
    """SIM301: callables handed to a process pool must be module-level."""

    code: ClassVar[str] = "SIM301"
    summary: ClassVar[str] = (
        "lambda/nested/bound callable submitted to a process pool — "
        "must be module-level to pickle (and to stay closure-free)")
    example: ClassVar[str] = "pool.submit(lambda: run(trial))"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # names of functions defined *inside* another function, anywhere
        nested: set[str] = set()
        for fn in ast.walk(ctx.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.update(
                    sub.name for sub in ast.walk(fn)
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))
                    and sub is not fn)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SUBMIT_METHODS
                    and node.args):
                continue
            receiver = ctx.resolve(node.func.value) or ""
            if not _looks_like_pool(receiver):
                continue
            reason = self._bad_worker(node.args[0], nested)
            if reason is not None:
                yield self.finding(
                    ctx, node,
                    f"{reason} passed to {node.func.attr}(); process-"
                    f"pool workers must be module-level functions "
                    f"(picklable, closure-free)")

    @staticmethod
    def _bad_worker(worker: ast.expr,
                    nested: "set[str]") -> Optional[str]:
        if isinstance(worker, ast.Lambda):
            return "lambda"
        if isinstance(worker, ast.Name) and worker.id in nested:
            return f"nested function {worker.id!r}"
        if (isinstance(worker, ast.Attribute)
                and isinstance(worker.value, ast.Name)
                and worker.value.id in ("self", "cls")):
            return f"bound method {worker.value.id}.{worker.attr}"
        return None


class ModuleGlobalWrite(Rule):
    """SIM302: no ``global`` writes — workers mutate a *copy*.

    A ``global`` rebound inside a function diverges between the serial
    path (parent process sees the write) and the pool path (only the
    worker's copy changes), which is exactly the serial-vs-parallel
    divergence the campaign store's byte-identity gate exists to catch.
    Worker-side memo caches should be explicit module-level containers
    mutated in place and derived purely from the trial spec.
    """

    code: ClassVar[str] = "SIM302"
    summary: ClassVar[str] = (
        "global statement in sim code — parent and pool workers would "
        "see different values")
    example: ClassVar[str] = "def run(): global _cache; _cache = {}"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                names = ", ".join(node.names)
                yield self.finding(
                    ctx, node,
                    f"global rebinding of {names} diverges between "
                    f"serial and process-pool execution; pass state "
                    f"explicitly or mutate a module-level container in "
                    f"place")
