"""SIM5xx: inter-procedural nondeterminism taint (whole-program).

Thin :class:`~repro.analysis.framework.ProjectRule` shims over the
taint fixpoint in :mod:`repro.analysis.taint` — one rule code per
taint kind, all five sharing a single cached engine per project build.
See the engine module for the source/sanitizer/sink tables.
"""

from __future__ import annotations

from typing import ClassVar, Iterator

from repro.analysis.callgraph import ProjectContext
from repro.analysis.findings import Finding
from repro.analysis.framework import ProjectRule
from repro.analysis.taint import (ALLOC_ID, ENV, RNG, SET_ORDER,
                                  WALLCLOCK, taint_engine)


class _TaintRule(ProjectRule):
    """Base for the SIM5xx family: one taint kind per rule code."""

    kind: ClassVar[str] = ""

    def check_project(self,
                      project: ProjectContext) -> Iterator[Finding]:
        for finding in taint_engine(project).findings():
            if finding.code == self.code:
                yield finding


class WallClockTaint(_TaintRule):
    """SIM501: a wall-clock read reaches a determinism sink."""

    code: ClassVar[str] = "SIM501"
    kind: ClassVar[str] = WALLCLOCK
    summary: ClassVar[str] = (
        "wall-clock value reaches a trial record/store/seed/telemetry "
        "sink (inter-procedural)")
    example: ClassVar[str] = \
        "record['t'] = elapsed()  # elapsed() returns time.time()"


class RNGTaint(_TaintRule):
    """SIM502: a process-global/unseeded RNG value reaches a sink."""

    code: ClassVar[str] = "SIM502"
    kind: ClassVar[str] = RNG
    summary: ClassVar[str] = (
        "unseeded/global RNG value reaches a determinism sink "
        "(inter-procedural)")
    example: ClassVar[str] = \
        "store.append_trial(jittered())  # random.random() inside"


class SetOrderTaint(_TaintRule):
    """SIM503: unordered-collection order reaches a sink."""

    code: ClassVar[str] = "SIM503"
    kind: ClassVar[str] = SET_ORDER
    summary: ClassVar[str] = (
        "hash-order value (set.pop/popitem/set iteration) reaches a "
        "determinism sink (inter-procedural)")
    example: ClassVar[str] = \
        "events.emit('eih', victim=pick(pending))  # pending.pop()"


class AllocIdTaint(_TaintRule):
    """SIM504: an allocation-/identity-dependent value reaches a sink."""

    code: ClassVar[str] = "SIM504"
    kind: ClassVar[str] = ALLOC_ID
    summary: ClassVar[str] = (
        "id()/pid/thread-id value reaches a key or determinism sink "
        "(inter-procedural)")
    example: ClassVar[str] = \
        "cache[key_of(config)] = result  # key_of() returns id(config)"


class EnvTaint(_TaintRule):
    """SIM505: an environment-derived value reaches a sink."""

    code: ClassVar[str] = "SIM505"
    kind: ClassVar[str] = ENV
    summary: ClassVar[str] = (
        "os.environ-derived value reaches a determinism sink "
        "(inter-procedural)")
    example: ClassVar[str] = \
        "TrialSpec(seed=int(lookup('SEED')))  # os.environ inside"
