"""Rule framework: file context, name resolution, and the per-file run.

Rules are small visitor-ish objects: ``check(ctx)`` yields
:class:`~repro.analysis.findings.Finding` for one parsed file. The
framework owns everything rules should not re-implement — import-aware
dotted-name resolution, pragma suppression, per-path rule scoping, and
the "unparseable file is a finding, not a crash" contract (SIM001).
"""

from __future__ import annotations

import ast
from typing import (ClassVar, Dict, FrozenSet, Iterable, Iterator, List,
                    Optional, Set, TYPE_CHECKING)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.analysis.callgraph import ProjectContext

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.pragmas import Suppressions

#: pseudo-rule for files the checker itself cannot process
PARSE_ERROR_CODE = "SIM001"


class LintInternalError(RuntimeError):
    """A rule crashed — a simlint bug, not a finding (CLI exit 2)."""


def _build_import_map(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted origin they were imported as.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import perf_counter as pc`` -> ``{"pc":
    "time.perf_counter"}``. Imports anywhere in the file count (the sim
    defers several imports into methods).
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:  # relative: leave alone
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _statement_anchors(tree: ast.Module) -> Dict[int, FrozenSet[int]]:
    """Extra pragma anchor lines for findings inside statement spans.

    A pragma suppresses findings on its own line or the line below —
    but a finding may anchor deep inside one *logical* statement: the
    ``def`` line of a decorated function (the pragma sits above the
    first decorator), or a continuation line of a parenthesized /
    backslash-continued statement (the pragma sits above the statement,
    or trails its closing line). For every line inside a statement's
    header span this maps to the span's first line, the line above it,
    and the span's last line, so those positions work as pragma sites
    too. Compound statements anchor only their *header* (decorators
    through the line before the first body statement) — a pragma above
    a ``for`` must not blanket the loop body.
    """
    anchors: Dict[int, Set[int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        decorators = getattr(node, "decorator_list", None)
        if decorators:
            start = min(start, decorators[0].lineno)
        body = getattr(node, "body", None)
        if isinstance(body, list) and body \
                and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        else:
            end = node.end_lineno or start
        if end <= start and not decorators:
            continue  # single-line statement: the default rule covers it
        span = {start - 1, start, end}
        for line in range(start, end + 1):
            anchors.setdefault(line, set()).update(span)
    return {line: frozenset(lines) for line, lines in anchors.items()}


class FileContext:
    """Everything a rule may look at for one file."""

    __slots__ = ("path", "source", "lines", "tree", "imports",
                 "suppressions", "_anchors")

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree = tree
        self.imports: Dict[str, str] = _build_import_map(tree)
        self.suppressions = Suppressions(source)
        self._anchors: Dict[int, FrozenSet[int]] = \
            _statement_anchors(tree)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding_suppressed(self, finding: Finding) -> bool:
        """Pragma check for one finding, statement-span aware."""
        if self.suppressions.is_suppressed(finding.line, finding.code):
            return True
        extra = self._anchors.get(finding.line, frozenset())
        return any(self.suppressions.matches(line, finding.code)
                   for line in extra)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a ``Name``/``Attribute`` chain, import-aware.

        ``np.random.rand`` resolves to ``"numpy.random.rand"``;
        ``self._rng.random`` resolves to ``"self._rng.random"``;
        anything that is not a pure attribute chain resolves to None.
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


class Rule:
    """Base class for one lint rule (one SIMxxx code)."""

    code: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    #: one motivating example for the README catalogue
    example: ClassVar[str] = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST,
                message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(path=ctx.path, line=lineno, col=col,
                       code=self.code, message=message,
                       line_text=ctx.line_text(lineno))


class ProjectRule(Rule):
    """A rule that runs once over the whole parsed file set.

    Whole-program rules see every file, the symbol table and the call
    graph at once; their findings still anchor to one (path, line) and
    go through the same pragma / path-scoping / baseline machinery as
    per-file findings. ``check`` is intentionally inert so a
    ProjectRule mixed into a per-file battery contributes nothing
    twice.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self,
                      project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError


def parse_error_finding(path: str, source: str,
                        exc: SyntaxError) -> Finding:
    lineno = exc.lineno or 1
    col = max(0, (exc.offset or 1) - 1)
    lines = source.splitlines()
    text = lines[lineno - 1].strip() if 1 <= lineno <= len(lines) else ""
    return Finding(path=path, line=lineno, col=col, code=PARSE_ERROR_CODE,
                   message=f"file does not parse: {exc.msg}",
                   line_text=text)


def parse_context(source: str, path: str) -> "FileContext | Finding":
    """Parse one file into a :class:`FileContext`, or the SIM001
    finding describing why it cannot be analyzed."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return parse_error_finding(path, source, exc)
    except ValueError as exc:  # e.g. source with null bytes
        return Finding(path=path, line=1, col=0, code=PARSE_ERROR_CODE,
                       message=f"file does not parse: {exc}")
    return FileContext(path, source, tree)


def run_file_rules(ctx: FileContext, rules: Iterable[Rule],
                   config: Optional[LintConfig] = None) -> List[Finding]:
    """Per-file rules over one parsed context; pragma/scope filtered."""
    findings: List[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            continue
        if config is not None \
                and not config.rule_applies(rule.code, ctx.path):
            continue
        try:
            for finding in rule.check(ctx):
                if not ctx.finding_suppressed(finding):
                    findings.append(finding)
        except Exception as exc:
            raise LintInternalError(
                f"rule {rule.code} crashed on {ctx.path}: {exc!r}"
            ) from exc
    return findings


def run_project_rules(files: Dict[str, FileContext],
                      rules: Iterable[Rule],
                      config: Optional[LintConfig] = None
                      ) -> List[Finding]:
    """Whole-program rules over a parsed file set (built once)."""
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    if not project_rules:
        return []
    from repro.analysis.callgraph import build_project
    project = build_project(files)
    findings: List[Finding] = []
    for rule in project_rules:
        try:
            for finding in rule.check_project(project):
                if config is not None and not config.rule_applies(
                        finding.code, finding.path):
                    continue
                ctx = files.get(finding.path)
                if ctx is not None and ctx.finding_suppressed(finding):
                    continue
                findings.append(finding)
        except Exception as exc:
            raise LintInternalError(
                f"rule {rule.code} crashed: {exc!r}") from exc
    return findings


def check_source(source: str, path: str, rules: Iterable[Rule],
                 config: Optional[LintConfig] = None) -> List[Finding]:
    """Run ``rules`` over one file's source; sorted, pragma-filtered.

    ``path`` is the POSIX-style path relative to the lint root — rule
    scoping (``config.rule_applies``) keys off it. A file that does not
    parse yields exactly one :data:`PARSE_ERROR_CODE` finding.
    Whole-program rules in the battery run over a one-file project.
    """
    parsed = parse_context(source, path)
    if isinstance(parsed, Finding):
        return [parsed]
    findings = run_file_rules(parsed, rules, config)
    findings.extend(run_project_rules({path: parsed}, rules, config))
    return sorted(findings)
