"""Rule framework: file context, name resolution, and the per-file run.

Rules are small visitor-ish objects: ``check(ctx)`` yields
:class:`~repro.analysis.findings.Finding` for one parsed file. The
framework owns everything rules should not re-implement — import-aware
dotted-name resolution, pragma suppression, per-path rule scoping, and
the "unparseable file is a finding, not a crash" contract (SIM001).
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, Iterable, Iterator, List, Optional

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.pragmas import Suppressions

#: pseudo-rule for files the checker itself cannot process
PARSE_ERROR_CODE = "SIM001"


class LintInternalError(RuntimeError):
    """A rule crashed — a simlint bug, not a finding (CLI exit 2)."""


def _build_import_map(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted origin they were imported as.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import perf_counter as pc`` -> ``{"pc":
    "time.perf_counter"}``. Imports anywhere in the file count (the sim
    defers several imports into methods).
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:  # relative: leave alone
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


class FileContext:
    """Everything a rule may look at for one file."""

    __slots__ = ("path", "source", "lines", "tree", "imports",
                 "suppressions")

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree = tree
        self.imports: Dict[str, str] = _build_import_map(tree)
        self.suppressions = Suppressions(source)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a ``Name``/``Attribute`` chain, import-aware.

        ``np.random.rand`` resolves to ``"numpy.random.rand"``;
        ``self._rng.random`` resolves to ``"self._rng.random"``;
        anything that is not a pure attribute chain resolves to None.
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


class Rule:
    """Base class for one lint rule (one SIMxxx code)."""

    code: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    #: one motivating example for the README catalogue
    example: ClassVar[str] = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST,
                message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(path=ctx.path, line=lineno, col=col,
                       code=self.code, message=message,
                       line_text=ctx.line_text(lineno))


def parse_error_finding(path: str, source: str,
                        exc: SyntaxError) -> Finding:
    lineno = exc.lineno or 1
    col = max(0, (exc.offset or 1) - 1)
    lines = source.splitlines()
    text = lines[lineno - 1].strip() if 1 <= lineno <= len(lines) else ""
    return Finding(path=path, line=lineno, col=col, code=PARSE_ERROR_CODE,
                   message=f"file does not parse: {exc.msg}",
                   line_text=text)


def check_source(source: str, path: str, rules: Iterable[Rule],
                 config: Optional[LintConfig] = None) -> List[Finding]:
    """Run ``rules`` over one file's source; sorted, pragma-filtered.

    ``path`` is the POSIX-style path relative to the lint root — rule
    scoping (``config.rule_applies``) keys off it. A file that does not
    parse yields exactly one :data:`PARSE_ERROR_CODE` finding.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [parse_error_finding(path, source, exc)]
    except ValueError as exc:  # e.g. source with null bytes
        return [Finding(path=path, line=1, col=0, code=PARSE_ERROR_CODE,
                        message=f"file does not parse: {exc}")]
    ctx = FileContext(path, source, tree)
    findings: List[Finding] = []
    for rule in rules:
        if config is not None and not config.rule_applies(rule.code, path):
            continue
        try:
            for finding in rule.check(ctx):
                if not ctx.suppressions.is_suppressed(finding.line,
                                                      finding.code):
                    findings.append(finding)
        except Exception as exc:
            raise LintInternalError(
                f"rule {rule.code} crashed on {path}: {exc!r}") from exc
    return sorted(findings)
