"""``# simlint: off[=CODE,...]`` pragma suppression.

A pragma suppresses findings anchored to its own physical line, or to
the line directly below it — so a standalone pragma comment (or a
trailing comment on the last decorator) can sit directly above the
``class``/``def`` statement a finding anchors to. ``off`` with no codes
suppresses every rule on that line; ``off=SIM104`` (comma-separated for
several) suppresses only those. Trailing prose after the codes is
encouraged::

    @dataclass(frozen=True)  # simlint: off=SIM201 — needs __dict__
    class Instruction:
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Optional

_PRAGMA = re.compile(r"#\s*simlint:\s*off(?:\s*=\s*(?P<codes>[A-Z0-9_,\s]+))?")


class Suppressions:
    """Parsed pragma map for one source file."""

    __slots__ = ("_by_line",)

    def __init__(self, source: str) -> None:
        # line number (1-based) -> frozenset of codes, or None for "all"
        self._by_line: Dict[int, Optional[FrozenSet[str]]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _PRAGMA.search(text)
            if match is None:
                continue
            raw = match.group("codes")
            if raw is None:
                self._by_line[lineno] = None
            else:
                codes = frozenset(
                    c.strip() for c in raw.split(",") if c.strip())
                self._by_line[lineno] = codes or None

    def __len__(self) -> int:
        return len(self._by_line)

    def matches(self, lineno: int, code: str) -> bool:
        """True if a pragma on exactly ``lineno`` covers ``code``."""
        if lineno not in self._by_line:
            return False
        codes = self._by_line[lineno]
        return codes is None or code in codes

    def is_suppressed(self, lineno: int, code: str) -> bool:
        """True if ``code`` is pragma'd on ``lineno`` or the line above.

        Statement-span anchors (decorated ``def``, multi-line
        statements) are handled one level up by
        :meth:`~repro.analysis.framework.FileContext
        .finding_suppressed`, which also consults the first and last
        physical lines of the logical statement a finding sits in.
        """
        return self.matches(lineno, code) or self.matches(lineno - 1, code)
