"""Whole-program nondeterminism taint tracking (the SIM5xx engine).

The per-file SIM1xx rules catch a wall-clock read *at the line it
happens*; they cannot see a ``time.time()`` laundered through a helper
function before it lands in a trial record. This engine closes that
gap: it computes, for every project function, which *taint kinds* its
return value may carry, propagates those summaries along the call
graph to a fixpoint, and then flags call sites where a tainted value
reaches a **determinism sink** — trial-record construction, result
store / journal appends, RNG seeds, telemetry event payloads, and
mapping-key writes (the shape of the historical ``id()``-keyed
baseline-cache bug).

Taint kinds and their rule codes:

========== ======= ==================================================
kind        code    sources
========== ======= ==================================================
wall-clock  SIM501  ``time.time``/``perf_counter``/``datetime.now``...
rng         SIM502  process-global ``random.*``, unseeded ``Random()``
set-order   SIM503  ``set.pop()``, ``dict.popitem()``, iteration /
                    materialization of an unordered set
alloc-id    SIM504  ``id()``, ``threading.get_ident``, ``os.getpid``
env         SIM505  ``os.environ`` / ``os.getenv``
========== ======= ==================================================

Sanitizers: ``sorted``/``min``/``max``/``len``/``sum``/``any``/``all``
erase *set-order* taint (they are order-insensitive); a seeded
``random.Random(seed)`` is not a source (but forwards its seed
argument's taint — ``random.Random(time.time())`` stays wall-clock
tainted); ``# simlint: off=SIM50x`` at the sink suppresses as usual.

The analysis is deliberately value-flow only: taint enters through a
function's *return value* or flows positionally through parameters
(summaries carry ``param:<name>`` pass-through entries), which is
exactly the shape of both historical determinism bugs. Attribute state
is not tracked — the per-file rules cover direct attribute abuse.

Every finding renders the full source → call-chain → sink path, and
every surface (iteration order, chain selection, message text) is
deterministic so reports stay byte-stable.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (CallGraph, ProjectContext,
                                      postorder, resolve_call)
from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext
from repro.analysis.rules.determinism import _WALLCLOCK
from repro.analysis.symbols import FunctionInfo, SymbolTable

#: taint kind tags (also the sort order of chains within one message)
WALLCLOCK = "wall-clock"
RNG = "rng"
SET_ORDER = "set-order"
ALLOC_ID = "alloc-id"
ENV = "env"

KIND_CODES: Dict[str, str] = {
    WALLCLOCK: "SIM501",
    RNG: "SIM502",
    SET_ORDER: "SIM503",
    ALLOC_ID: "SIM504",
    ENV: "SIM505",
}

KIND_LABELS: Dict[str, str] = {
    WALLCLOCK: "wall-clock value",
    RNG: "process-global/unseeded RNG value",
    SET_ORDER: "unordered-collection-order value",
    ALLOC_ID: "allocation/identity-dependent value",
    ENV: "environment-dependent value",
}

#: identity-ish reads: stable within a run, different across runs
_IDENTITY_SOURCES = frozenset({"threading.get_ident", "os.getpid",
                               "os.getppid"})

#: external callables whose result does not depend on argument order
_ORDER_INSENSITIVE = frozenset({"sorted", "len", "sum", "min", "max",
                                "any", "all"})

_PARAM = "param:"

#: maximum rendered hops per chain (cycles would otherwise grow them)
_MAX_CHAIN = 8

Chain = Tuple[str, ...]
TaintSet = Dict[str, Chain]


def _merge(into: TaintSet, other: TaintSet) -> None:
    """Union ``other`` into ``into``; the first-seen chain wins."""
    for key, chain in other.items():
        into.setdefault(key, chain)


def _hop(label: str, path: str, lineno: int) -> str:
    return f"{label} [{path}:{lineno}]"


def _extend(chain: Chain, hop: str) -> Chain:
    if len(chain) >= _MAX_CHAIN:
        return chain
    return chain + (hop,)


def _callee_params(fi: FunctionInfo) -> List[str]:
    args = fi.node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if fi.class_symbol is not None and names \
            and names[0] in ("self", "cls"):
        names = names[1:]
    names += [a.arg for a in args.kwonlyargs]
    return names


class _SinkHit:
    """One tainted value arriving at one sink call/write."""

    __slots__ = ("kind", "chain", "sink_label", "node")

    def __init__(self, kind: str, chain: Chain, sink_label: str,
                 node: ast.AST) -> None:
        self.kind = kind
        self.chain = chain
        self.sink_label = sink_label
        self.node = node


class _FunctionTaint:
    """One intraprocedural pass over one function body.

    Statements are processed in source order, twice, so loop-carried
    and forward-referenced locals settle; sinks are collected on the
    second pass only, when the environment is complete.
    """

    def __init__(self, engine: "TaintEngine", fi: FunctionInfo,
                 collect: bool = False) -> None:
        self.engine = engine
        self.fi = fi
        self.ctx: FileContext = \
            engine.table.modules[fi.module].ctx
        self.vars: Dict[str, TaintSet] = {}
        self.set_vars: Set[str] = set()
        self.returns: TaintSet = {}
        self.collect = collect
        self.hits: List[_SinkHit] = []
        self._collecting = False

    # -- entry --------------------------------------------------------------
    def run(self) -> TaintSet:
        self._seed_params()
        body = self.fi.node.body
        self._collecting = False
        self._process_block(body)
        self._collecting = self.collect
        self._process_block(body)
        return self.returns

    def _seed_params(self) -> None:
        args = self.fi.node.args
        every = (list(args.posonlyargs) + list(args.args)
                 + list(args.kwonlyargs))
        for arg in every:
            if arg.arg in ("self", "cls"):
                continue
            self.vars[arg.arg] = {_PARAM + arg.arg: ()}
            if arg.annotation is not None \
                    and self._is_set_annotation(arg.annotation):
                self.set_vars.add(arg.arg)

    def _is_set_annotation(self, ann: ast.expr) -> bool:
        resolved = self.ctx.resolve(ann)
        if resolved in ("set", "frozenset", "typing.Set",
                        "typing.FrozenSet", "Set", "FrozenSet"):
            return True
        if isinstance(ann, ast.Subscript):
            return self._is_set_annotation(ann.value)
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            head = ann.value.split("[", 1)[0].strip()
            return head in ("set", "frozenset", "Set", "FrozenSet",
                            "typing.Set", "typing.FrozenSet")
        return False

    # -- statements ---------------------------------------------------------
    def _process_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._process_stmt(stmt)

    def _process_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self._expr(stmt.value)
            is_set = self._is_set_expr(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint, is_set)
        elif isinstance(stmt, ast.AnnAssign):
            taint = self._expr(stmt.value) if stmt.value is not None \
                else {}
            is_set = (stmt.value is not None
                      and self._is_set_expr(stmt.value)) \
                or self._is_set_annotation(stmt.annotation)
            self._bind(stmt.target, taint, is_set)
        elif isinstance(stmt, ast.AugAssign):
            taint = self._expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                merged = dict(self.vars.get(stmt.target.id, {}))
                _merge(merged, taint)
                self.vars[stmt.target.id] = merged
            else:
                self._bind(stmt.target, taint, False)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                _merge(self.returns, self._expr(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, ast.For):
            iter_taint = self._expr(stmt.iter)
            if self._is_set_expr(stmt.iter):
                _merge(iter_taint, {SET_ORDER: (
                    _hop("iteration over unordered set",
                         self.ctx.path, stmt.iter.lineno),)})
            self._bind(stmt.target, iter_taint, False)
            self._process_block(stmt.body)
            self._process_block(stmt.orelse)
        elif isinstance(stmt, ast.AsyncFor):
            self._bind(stmt.target, self._expr(stmt.iter), False)
            self._process_block(stmt.body)
            self._process_block(stmt.orelse)
        elif isinstance(stmt, (ast.While, ast.If)):
            self._expr(stmt.test)
            self._process_block(stmt.body)
            self._process_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint, False)
            self._process_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._process_block(stmt.body)
            for handler in stmt.handlers:
                self._process_block(handler.body)
            self._process_block(stmt.orelse)
            self._process_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)
        # nested defs/classes analyze under their own symbols (methods)
        # or not at all (closures) — their sinks are out of scope here

    def _bind(self, target: ast.expr, taint: TaintSet,
              is_set: bool) -> None:
        if isinstance(target, ast.Name):
            merged = dict(self.vars.get(target.id, {}))
            _merge(merged, taint)
            self.vars[target.id] = merged
            if is_set:
                self.set_vars.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint, False)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint, False)
        elif isinstance(target, ast.Subscript):
            # a nondeterministic mapping key is itself a sink (the
            # id()-keyed baseline cache shape); single-hop taint born
            # on the sink's own line is the per-file rules' territory
            # (SIM104 already flags `cache[id(x)] = v` directly)
            key_taint = self._expr(target.slice)
            self._sink(target, "mapping-key write", key_taint,
                       label="[...]=", skip_same_line_direct=True)
            self._expr(target.value)

    # -- expressions --------------------------------------------------------
    def _expr(self, expr: ast.expr) -> TaintSet:
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Name):
            return dict(self.vars.get(expr.id, {}))
        if isinstance(expr, ast.Attribute):
            if self.ctx.resolve(expr) == "os.environ":
                return {ENV: (_hop("os.environ", self.ctx.path,
                                   expr.lineno),)}
            return self._expr(expr.value)
        if isinstance(expr, ast.Subscript):
            out = self._expr(expr.value)
            _merge(out, self._expr(expr.slice))
            return out
        if isinstance(expr, ast.BinOp):
            out = self._expr(expr.left)
            _merge(out, self._expr(expr.right))
            return out
        if isinstance(expr, ast.BoolOp):
            out: TaintSet = {}
            for value in expr.values:
                _merge(out, self._expr(value))
            return out
        if isinstance(expr, ast.Compare):
            out = self._expr(expr.left)
            for comparator in expr.comparators:
                _merge(out, self._expr(comparator))
            return out
        if isinstance(expr, ast.UnaryOp):
            return self._expr(expr.operand)
        if isinstance(expr, ast.IfExp):
            out = self._expr(expr.body)
            _merge(out, self._expr(expr.orelse))
            _merge(out, self._expr(expr.test))
            return out
        if isinstance(expr, ast.JoinedStr):
            out = {}
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    _merge(out, self._expr(value.value))
            return out
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = {}
            for elt in expr.elts:
                _merge(out, self._expr(elt))
            return out
        if isinstance(expr, ast.Dict):
            out = {}
            for key in expr.keys:
                if key is not None:
                    _merge(out, self._expr(key))
            for value in expr.values:
                _merge(out, self._expr(value))
            return out
        if isinstance(expr, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp)):
            return self._comprehension(expr, [expr.elt])
        if isinstance(expr, ast.DictComp):
            return self._comprehension(expr, [expr.key, expr.value])
        if isinstance(expr, ast.Await):
            return self._expr(expr.value)
        if isinstance(expr, ast.Starred):
            return self._expr(expr.value)
        if isinstance(expr, ast.NamedExpr):
            taint = self._expr(expr.value)
            self._bind(expr.target, taint, self._is_set_expr(expr.value))
            return taint
        return {}

    def _comprehension(self, expr: ast.expr,
                       elts: List[ast.expr]) -> TaintSet:
        out: TaintSet = {}
        generators = getattr(expr, "generators", [])
        for gen in generators:
            gen_taint = self._expr(gen.iter)
            if self._is_set_expr(gen.iter):
                _merge(gen_taint, {SET_ORDER: (
                    _hop("comprehension over unordered set",
                         self.ctx.path, gen.iter.lineno),)})
            self._bind(gen.target, gen_taint, False)
            _merge(out, gen_taint)
        for elt in elts:
            _merge(out, self._expr(elt))
        if isinstance(expr, ast.SetComp):
            out.pop(SET_ORDER, None)  # result is itself unordered
        return out

    # -- set-ness -----------------------------------------------------------
    def _is_set_expr(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            return self.ctx.resolve(expr.func) in ("set", "frozenset")
        if isinstance(expr, ast.Name):
            return expr.id in self.set_vars
        if isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self._is_set_expr(expr.left) \
                or self._is_set_expr(expr.right)
        return False

    # -- calls --------------------------------------------------------------
    def _call(self, call: ast.Call) -> TaintSet:
        arg_taints = [self._expr(a) for a in call.args]
        kw_taints = {kw.arg: self._expr(kw.value)
                     for kw in call.keywords if kw.arg is not None}
        for kw in call.keywords:
            if kw.arg is None:  # **kwargs expansion
                kw_taints.setdefault("**", self._expr(kw.value))
        resolved = self.ctx.resolve(call.func)
        target = resolve_call(self.engine.table, self.fi, self.ctx, call)
        canonical, external = (target if target is not None
                               else (resolved, True))

        out: TaintSet = {}
        if target is not None and not external:
            out = self._project_call(call, canonical or "", arg_taints,
                                     kw_taints)
        else:
            out = self._external_call(call, resolved, arg_taints,
                                      kw_taints)
        if self._collecting:
            self._check_sinks(call, resolved, canonical, external,
                              arg_taints, kw_taints)
        return out

    def _passthrough(self, arg_taints: List[TaintSet],
                     kw_taints: Dict[str, TaintSet]) -> TaintSet:
        out: TaintSet = {}
        for taint in arg_taints:
            _merge(out, taint)
        for taint in kw_taints.values():
            _merge(out, taint)
        return out

    def _project_call(self, call: ast.Call, callee: str,
                      arg_taints: List[TaintSet],
                      kw_taints: Dict[str, TaintSet]) -> TaintSet:
        table = self.engine.table
        if callee in table.classes:
            # constructing a project class: conservatively assume the
            # instance carries its constructor arguments' taint
            return self._passthrough(arg_taints, kw_taints)
        fi = table.functions.get(callee)
        summary = self.engine.summaries.get(callee, {})
        short = callee.rsplit(".", 1)[-1]
        hop = _hop(f"{short}()", self.ctx.path, call.lineno)
        params = _callee_params(fi) if fi is not None else []
        out: TaintSet = {}
        for key, chain in summary.items():
            if key.startswith(_PARAM):
                name = key[len(_PARAM):]
                arg_taint: Optional[TaintSet] = None
                if name in kw_taints:
                    arg_taint = kw_taints[name]
                elif name in params:
                    idx = params.index(name)
                    if idx < len(arg_taints):
                        arg_taint = arg_taints[idx]
                if arg_taint:
                    for kind, arg_chain in arg_taint.items():
                        if kind.startswith(_PARAM):
                            out.setdefault(kind, _extend(arg_chain, hop))
                        else:
                            merged = arg_chain + chain
                            out.setdefault(kind,
                                           _extend(merged[:_MAX_CHAIN],
                                                   hop))
            else:
                out.setdefault(key, _extend(chain, hop))
        return out

    def _external_call(self, call: ast.Call, resolved: Optional[str],
                       arg_taints: List[TaintSet],
                       kw_taints: Dict[str, TaintSet]) -> TaintSet:
        path, line = self.ctx.path, call.lineno
        name = resolved or ""
        source: Optional[Tuple[str, str]] = None  # (kind, label)
        if name in _WALLCLOCK:
            source = (WALLCLOCK, f"{name}()")
        elif name in _IDENTITY_SOURCES:
            source = (ALLOC_ID, f"{name}()")
        elif name == "id" and "id" not in self.ctx.imports:
            source = (ALLOC_ID, "id()")
        elif name in ("os.getenv", "os.environ.get"):
            source = (ENV, f"{name}()")
        elif name in ("uuid.uuid1", "uuid.uuid4"):
            source = (RNG, f"{name}()")
        elif name == "random.SystemRandom":
            source = (RNG, "random.SystemRandom()")
        elif name == "random.Random":
            if not call.args or (isinstance(call.args[0], ast.Constant)
                                 and call.args[0].value is None):
                source = (RNG, "random.Random()  # unseeded")
            # seeded: not a source, but the seed's taint flows through
        elif name == "numpy.random.default_rng":
            if not call.args and not call.keywords:
                source = (RNG, "numpy.random.default_rng()")
        elif name.startswith("random.") or (
                name.startswith("numpy.random.")
                and name != "numpy.random.default_rng"):
            source = (RNG, f"{name}()")

        out = self._passthrough(arg_taints, kw_taints)
        if name in _ORDER_INSENSITIVE:
            out.pop(SET_ORDER, None)
        if name in ("list", "tuple") and len(call.args) == 1 \
                and self._is_set_expr(call.args[0]):
            out.setdefault(SET_ORDER, (
                _hop(f"{name}(unordered set)", path, line),))
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr == "popitem" and not call.args:
                out.setdefault(SET_ORDER,
                               (_hop("dict.popitem()", path, line),))
            elif attr == "pop" and not call.args \
                    and self._is_set_expr(call.func.value):
                out.setdefault(SET_ORDER,
                               (_hop("set.pop()", path, line),))
            _merge(out, self._expr(call.func.value))
        if name == "next" and call.args \
                and isinstance(call.args[0], ast.Call) \
                and self.ctx.resolve(call.args[0].func) == "iter" \
                and call.args[0].args \
                and self._is_set_expr(call.args[0].args[0]):
            out.setdefault(SET_ORDER,
                           (_hop("next(iter(set))", path, line),))
        if source is not None:
            kind, label = source
            out.setdefault(kind, (_hop(label, path, line),))
        return out

    # -- sinks --------------------------------------------------------------
    def _check_sinks(self, call: ast.Call, resolved: Optional[str],
                     canonical: Optional[str], external: bool,
                     arg_taints: List[TaintSet],
                     kw_taints: Dict[str, TaintSet]) -> None:
        sink: Optional[Tuple[str, str]] = None  # (description, label)
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            receiver = self.ctx.resolve(call.func.value) or ""
            if attr == "append_trial":
                sink = ("result-store append", "append_trial(...)")
            elif attr == "emit":
                sink = ("telemetry event payload", "emit(...)")
            elif attr == "record" and "journal" in receiver:
                sink = ("journal append", "record(...)")
            elif attr == "seed":
                sink = ("RNG seed", "seed(...)")
        if not external and canonical is not None \
                and canonical in self.engine.table.classes:
            cls_name = self.engine.table.classes[canonical].name
            if cls_name in ("TrialResult", "TrialSpec"):
                sink = ("trial-record construction", f"{cls_name}(...)")
        if resolved == "random.Random" \
                and (call.args or call.keywords):
            sink = ("RNG seed", "random.Random(...)")
        if sink is None:
            return
        description, label = sink
        taint = self._passthrough(arg_taints, kw_taints)
        self._sink(call, description, taint, label=label)

    def _sink(self, node: ast.AST, description: str, taint: TaintSet,
              label: str, skip_same_line_direct: bool = False) -> None:
        if not self._collecting:
            return
        lineno = getattr(node, "lineno", 1)
        for kind in sorted(taint):
            if kind.startswith(_PARAM):
                continue
            chain = taint[kind]
            if skip_same_line_direct and len(chain) == 1 \
                    and chain[0].endswith(f"[{self.ctx.path}:{lineno}]"):
                continue
            sink_hop = _hop(label, self.ctx.path, lineno)
            self.hits.append(_SinkHit(kind, _extend(chain, sink_hop),
                                      description, node))


class TaintEngine:
    """Summary fixpoint + sink collection over one project."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.table: SymbolTable = project.table
        self.graph: CallGraph = project.graph
        self.summaries: Dict[str, TaintSet] = {}
        self._findings: Optional[List[Finding]] = None

    def compute(self, max_rounds: int = 10) -> None:
        order = postorder(self.graph)
        for _ in range(max_rounds):
            changed = False
            for symbol in order:
                fi = self.table.functions.get(symbol)
                if fi is None:
                    continue
                new = _FunctionTaint(self, fi).run()
                old = self.summaries.get(symbol, {})
                merged = dict(old)
                _merge(merged, new)
                if set(merged) != set(old):
                    changed = True
                self.summaries[symbol] = merged
            if not changed:
                break

    def findings(self) -> List[Finding]:
        if self._findings is not None:
            return self._findings
        self.compute()
        out: Dict[Tuple[str, int, int, str, str], Finding] = {}
        for symbol in sorted(self.table.functions):
            fi = self.table.functions[symbol]
            pass_ = _FunctionTaint(self, fi, collect=True)
            pass_.run()
            ctx = pass_.ctx
            for hit in pass_.hits:
                code = KIND_CODES[hit.kind]
                lineno = getattr(hit.node, "lineno", 1)
                col = getattr(hit.node, "col_offset", 0)
                message = (f"{KIND_LABELS[hit.kind]} reaches "
                           f"{hit.sink_label}: "
                           + " -> ".join(hit.chain))
                key = (ctx.path, lineno, col, code, message)
                out.setdefault(key, Finding(
                    path=ctx.path, line=lineno, col=col, code=code,
                    message=message, line_text=ctx.line_text(lineno)))
        self._findings = sorted(out.values())
        return self._findings


def taint_engine(project: ProjectContext) -> TaintEngine:
    """The per-project cached engine (five rules share one fixpoint)."""
    engine = project.cache.get("taint")
    if not isinstance(engine, TaintEngine):
        engine = TaintEngine(project)
        project.cache["taint"] = engine
    return engine
