"""Concurrency-domain inference for the shared-state race lint.

The service tier deliberately mixes three execution domains: the
asyncio event loop (HTTP handlers, the scheduling loop), worker
threads (``asyncio.to_thread`` campaign execution, store observer
callbacks, ``threading.Thread`` heartbeats), and signal handlers. An
instance attribute written from more than one of those domains without
a common lock is a data race the test suite will almost never catch.

This module infers, per class method, the set of domains the method
may run in:

* ``async`` — seeded by ``async def``;
* ``thread`` — seeded where a bound method escapes into a thread:
  ``asyncio.to_thread(self.m, ...)``, ``loop.run_in_executor(_,
  self.m)``, ``executor.submit(self.m)``, ``threading.Thread(
  target=self.m)``, and the repo's observer convention of ``on_*=``
  keyword callbacks (``ResultStore(path, on_append=self._on_trial)``
  invokes ``_on_trial`` from the engine's worker threads) —
  ``functools.partial(self.m, ...)`` wrappers are unwrapped;
* ``signal`` — seeded by ``signal.signal(sig, self.m)``.

Domains then propagate caller → callee along the project call graph's
method-to-method edges (a sync helper called from an ``async def``
runs on the event loop) to a fixpoint. Methods nothing registers and
nothing known calls keep an *empty* domain set and can never race —
the inference is deliberately conservative in what it claims.

A write is an assignment/``augassign`` to ``self.X``, a subscript
store through ``self.X[...]``, or a mutating method call
(``self.X.append(...)`` etc.); ``__init__``/``__post_init__`` writes
are construction (happens-before publication) and never counted. A
write is *locked* when it sits lexically inside ``with self.L:`` where
``L`` was assigned a ``threading.Lock``/``RLock``/``Condition``/
``Semaphore`` or ``asyncio.Lock``/``Condition`` anywhere in the class.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import ProjectContext
from repro.analysis.framework import FileContext
from repro.analysis.symbols import ClassInfo, FunctionInfo

ASYNC = "async"
THREAD = "thread"
SIGNAL = "signal"

_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "asyncio.Lock", "asyncio.Condition", "asyncio.Semaphore",
})

#: method calls on ``self.X`` that mutate X in place
_MUTATOR_CALLS = frozenset({
    "append", "extend", "add", "remove", "discard", "insert",
    "appendleft", "popleft", "pop", "popitem", "clear", "update",
    "setdefault", "sort", "reverse",
})

#: construction happens-before publication of the instance
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


class WriteSite:
    """One mutation of ``self.<attr>`` inside one method."""

    __slots__ = ("attr", "method", "lineno", "lock")

    def __init__(self, attr: str, method: str, lineno: int,
                 lock: Optional[str]) -> None:
        self.attr = attr
        self.method = method
        self.lineno = lineno
        self.lock = lock


def _self_attr(expr: ast.expr) -> Optional[str]:
    """``self.X`` -> ``"X"`` (single attribute hop only)."""
    if isinstance(expr, ast.Attribute) \
            and isinstance(expr.value, ast.Name) \
            and expr.value.id == "self":
        return expr.attr
    return None


def _self_method_ref(ctx: FileContext, expr: ast.expr,
                     aliases: Optional[Dict[str, str]] = None
                     ) -> Optional[str]:
    """Method name when ``expr`` is ``self.m``, ``partial(self.m, ..)``
    or a local previously bound to one of those shapes."""
    direct = _self_attr(expr)
    if direct is not None:
        return direct
    if isinstance(expr, ast.Call):
        resolved = ctx.resolve(expr.func)
        if resolved in ("functools.partial", "partial") and expr.args:
            return _self_attr(expr.args[0])
    if aliases is not None and isinstance(expr, ast.Name):
        return aliases.get(expr.id)
    return None


def _local_method_aliases(ctx: FileContext,
                          fi: FunctionInfo) -> Dict[str, str]:
    """Locals bound to a method reference (``cb = partial(self.m, x)``
    then ``Store(on_append=cb)`` — the scheduler's observer shape)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(fi.node):
        if not isinstance(node, ast.Assign):
            continue
        ref = _self_method_ref(ctx, node.value)
        if ref is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                aliases[target.id] = ref
    return aliases


def _lock_attrs(ci: ClassInfo, ctx: FileContext) -> Set[str]:
    """Attributes of ``ci`` assigned a lock/condition factory."""
    out: Set[str] = set()
    for node in ast.walk(ci.node):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        if ctx.resolve(node.value.func) not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                out.add(attr)
    return out


def _scan_writes(fi: FunctionInfo,
                 lock_attrs: Set[str]) -> List[WriteSite]:
    """All ``self.<attr>`` mutations in one method, with lock context."""
    sites: List[WriteSite] = []

    def record(attr: Optional[str], lineno: int,
               lock: Optional[str]) -> None:
        if attr is not None and attr not in lock_attrs:
            sites.append(WriteSite(attr, fi.name, lineno, lock))

    def walk(node: ast.AST, lock: Optional[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            held = lock
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in lock_attrs \
                        and held is None:
                    held = attr
            for child in node.body:
                walk(child, held)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(_self_attr(target), node.lineno, lock)
                if isinstance(target, ast.Subscript):
                    record(_self_attr(target.value), node.lineno, lock)
        elif isinstance(node, ast.AugAssign):
            record(_self_attr(node.target), node.lineno, lock)
            if isinstance(node.target, ast.Subscript):
                record(_self_attr(node.target.value), node.lineno,
                       lock)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    record(_self_attr(target.value), node.lineno, lock)
                else:
                    record(_self_attr(target), node.lineno, lock)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATOR_CALLS:
            record(_self_attr(node.func.value), node.lineno, lock)
        for child in ast.iter_child_nodes(node):
            walk(child, lock)

    for stmt in fi.node.body:
        walk(stmt, None)
    return sites


def _seed_domains(project: ProjectContext) -> Dict[str, Set[str]]:
    """Initial method-symbol -> domain set, before propagation."""
    table = project.table
    seeds: Dict[str, Set[str]] = {}

    def add(class_symbol: Optional[str], method: Optional[str],
            domain: str) -> None:
        if class_symbol is None or method is None:
            return
        fi = table.resolve_method(class_symbol, method)
        if fi is not None:
            seeds.setdefault(fi.symbol, set()).add(domain)

    for symbol in sorted(table.functions):
        fi = table.functions[symbol]
        if fi.is_async:
            seeds.setdefault(symbol, set()).add(ASYNC)
        ctx = table.modules[fi.module].ctx
        cls = fi.class_symbol
        if cls is None:
            continue
        aliases = _local_method_aliases(ctx, fi)
        for node in ast.walk(fi.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func) or ""
            attr = node.func.attr \
                if isinstance(node.func, ast.Attribute) else ""
            if resolved == "signal.signal" and len(node.args) >= 2:
                add(cls, _self_method_ref(ctx, node.args[1], aliases),
                    SIGNAL)
            elif resolved == "asyncio.to_thread" and node.args:
                add(cls, _self_method_ref(ctx, node.args[0], aliases),
                    THREAD)
            elif attr == "run_in_executor" and len(node.args) >= 2:
                add(cls, _self_method_ref(ctx, node.args[1], aliases),
                    THREAD)
            elif attr == "submit" and node.args:
                add(cls, _self_method_ref(ctx, node.args[0], aliases),
                    THREAD)
            elif resolved == "threading.Thread":
                for kw in node.keywords:
                    if kw.arg == "target":
                        add(cls,
                            _self_method_ref(ctx, kw.value, aliases),
                            THREAD)
            for kw in node.keywords:
                if kw.arg is not None and kw.arg.startswith("on_"):
                    add(cls, _self_method_ref(ctx, kw.value, aliases),
                        THREAD)
    return seeds


def method_domains(project: ProjectContext) -> Dict[str, Set[str]]:
    """Fixpoint of domain propagation along method-to-method edges."""
    table = project.table
    graph = project.graph
    domains = _seed_domains(project)
    changed = True
    while changed:
        changed = False
        for caller, callee in graph.edges():
            caller_fi = table.functions.get(caller)
            callee_fi = table.functions.get(callee)
            if caller_fi is None or callee_fi is None:
                continue
            if caller_fi.class_symbol is None \
                    or callee_fi.class_symbol is None:
                continue
            have = domains.get(caller, set())
            if not have:
                continue
            target = domains.setdefault(callee, set())
            before = len(target)
            # an ``async def`` caller dispatches sync callees on the
            # event loop; an async callee always runs as a coroutine
            # regardless of which domain created it
            target.update(have if not callee_fi.is_async else {ASYNC})
            if len(target) != before:
                changed = True
    return domains


class RaceReport:
    """One multi-domain attribute of one class."""

    __slots__ = ("class_symbol", "attr", "path", "entries")

    def __init__(self, class_symbol: str, attr: str, path: str,
                 entries: List[Tuple[str, WriteSite]]) -> None:
        self.class_symbol = class_symbol
        self.attr = attr
        self.path = path
        #: sorted (domain, site) pairs, every domain the attr sees
        self.entries = entries

    @property
    def domains(self) -> List[str]:
        return sorted({domain for domain, _ in self.entries})

    @property
    def anchor(self) -> WriteSite:
        unlocked = [s for _, s in self.entries if s.lock is None]
        pool = unlocked or [s for _, s in self.entries]
        return min(pool, key=lambda s: s.lineno)


def find_races(project: ProjectContext) -> Iterator[RaceReport]:
    """Attributes written from >1 domain without one common lock."""
    table = project.table
    domains = method_domains(project)
    for class_symbol in sorted(table.classes):
        ci = table.classes[class_symbol]
        ctx = table.modules[ci.module].ctx
        locks = _lock_attrs(ci, ctx)
        by_attr: Dict[str, List[Tuple[str, WriteSite]]] = {}
        for name in sorted(ci.methods):
            fi = ci.methods[name]
            if name in _INIT_METHODS:
                continue
            method_doms = domains.get(fi.symbol, set())
            if not method_doms:
                continue
            for site in _scan_writes(fi, locks):
                for domain in sorted(method_doms):
                    by_attr.setdefault(site.attr, []).append(
                        (domain, site))
        for attr in sorted(by_attr):
            entries = sorted(
                by_attr[attr],
                key=lambda e: (e[0], e[1].lineno, e[1].method))
            seen_domains = {domain for domain, _ in entries}
            if len(seen_domains) < 2:
                continue
            held = {site.lock for _, site in entries}
            if len(held) == 1 and None not in held:
                continue  # every write under the same lock
            yield RaceReport(class_symbol, attr, ci.path, entries)
