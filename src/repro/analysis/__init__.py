"""simlint: static determinism & hot-path invariant checks for the sim.

The reproduction's headline guarantees — byte-identical campaign JSONL
across serial/parallel runs, resumable stores, replay reuse — all rest
on simulator determinism, a property that used to be enforced only by
convention (and was broken twice: an ``id()``-keyed baseline cache and
a nondeterministic EIH pop order). ``repro.analysis`` turns those
conventions into AST-checked rules so the class of bug is caught at
lint time, not after a 10k-trial campaign diverges.

Entry points::

    python -m repro lint                  # gate the tree (exit 1 on findings)
    python -m repro lint --format json    # machine-readable report
    python -m repro lint --write-baseline # accept current findings as legacy

Rule catalogue: see ``repro.analysis.rules`` (SIM1xx determinism,
SIM2xx hot path, SIM3xx multiprocessing hygiene, SIM4xx exception
discipline) and the "Static analysis" section of the README.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.config import LintConfig, load_config
from repro.analysis.findings import Finding
from repro.analysis.framework import (
    FileContext,
    LintInternalError,
    Rule,
    check_source,
)
from repro.analysis.rules import ALL_RULES, rule_catalogue
from repro.analysis.runner import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL_ERROR,
    LintReport,
    lint_tree,
    render_json,
    render_text,
)

__all__ = [
    "ALL_RULES",
    "Baseline",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_INTERNAL_ERROR",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintInternalError",
    "LintReport",
    "Rule",
    "check_source",
    "lint_tree",
    "load_config",
    "render_json",
    "render_text",
    "rule_catalogue",
]
