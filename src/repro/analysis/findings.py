"""One rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union


@dataclass(frozen=True, order=True, slots=True)
class Finding:
    """A single lint finding.

    Ordering is (path, line, col, code, message) so that any collection
    of findings sorts into one canonical, byte-stable report order.
    ``line_text`` (the stripped source line) is carried for baseline
    fingerprinting but excluded from ordering and equality so that a
    finding's identity does not depend on incidental whitespace.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    line_text: str = field(default="", compare=False)

    def render(self) -> str:
        # columns are 0-based in ast; print 1-based like every other linter
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.code} {self.message}")

    def to_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
