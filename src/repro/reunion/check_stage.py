"""Fingerprint-interval bookkeeping shared by a Reunion core pair.

The :class:`CheckStage` is the pair's verification brain: it assigns every
dynamic instruction to a fingerprint *group* (deterministically, so both
cores and any post-rollback re-execution agree), accumulates each core's
CRC over the in-order retirement stream, declares a group *verified* once
both cores have produced it and the comparison latency has elapsed, and
reports mismatches for the system to roll back.

Group-cut rules (Sec IV):

* a group closes after ``fingerprint_interval`` instructions, or
* immediately at a serializing instruction (traps, barriers, atomics must
  be the last member of their fingerprint so they can be verified before
  executing their irreversible effect), or
* at the end of the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.reunion.fingerprint import FingerprintGenerator


@dataclass(frozen=True)
class ReunionParams:
    """The two knobs of Figure 5."""

    #: instructions per fingerprint (paper default/minimum: 10)
    fingerprint_interval: int = 10
    #: cycles to generate + transfer + compare one fingerprint. The paper
    #: assumes a 6-cycle minimum over nominal buses (Sec IV-3) — that is
    #: the default here and the Figure 4 operating point; Figure 5 sweeps
    #: this from 10 to 40+ explicitly.
    comparison_latency: int = 6
    #: rollback cost beyond re-execution: squash + refill of both pipelines
    rollback_penalty: int = 8
    #: serializing-instruction policy:
    #: * ``"drain"`` — dispatch stalls until the fingerprint containing
    #:   the serializing instruction is fully verified (the strong reading
    #:   of Sec IV-5; most faithful to Reunion's non-speculative retire);
    #: * ``"send"`` — dispatch stalls until this core has *generated and
    #:   sent* the fingerprint containing the serializing instruction
    #:   (i.e. the local pipeline has drained through the CHECK stage),
    #:   but not for the cross-core comparison round trip; commit still
    #:   waits for full verification. This intermediate reading matches
    #:   the paper's Figure 4 magnitudes best and is the default.
    #: * ``"cut"``  — the serializing instruction still seals its own
    #:   fingerprint (so it is verified before it commits — correctness is
    #:   identical) but the front end keeps dispatching; the in-order
    #:   commit gate and the extra fingerprint traffic are paid (the weak
    #:   reading: "the pipeline stalls *when data-dependent instructions
    #:   are in the issue queue*" — dataflow already makes dependents
    #:   wait). This is the default: it reproduces Figure 4's magnitudes
    #:   (≈8% average, bzip2/ammp/galgel above 10%); the stronger policies
    #:   overshoot the paper by 2-3x and are kept for ablation.
    serializing_policy: str = "cut"
    #: Relaxed input replication (Sec II): both cores load directly from
    #: memory, so a racing writer on another pair can hand the two
    #: replicas *different* values — "input incoherence", which Reunion
    #: treats exactly like a transient fault. Our workloads are
    #: single-threaded (replicas can never actually diverge), so the
    #: phenomenon is injected as a Poisson event rate per cycle; each
    #: event costs a load re-issue on both cores and, with
    #: ``incoherence_escalation_prob``, escalates to a synchronizing
    #: memory request.
    input_incoherence_rate: float = 0.0
    #: probability a re-issued load pair still disagrees and needs the
    #: synchronizing request (Sec II: "issuing the load a third time")
    incoherence_escalation_prob: float = 0.1
    #: cost of one re-issue (an extra L1/L2 round trip on both cores)
    reissue_penalty: int = 12
    #: cost of a synchronizing memory request (exclusive line acquisition)
    sync_request_penalty: int = 40
    #: how many times an in-progress rollback may abort-and-restart when
    #: a strike lands inside its squash window before the pair degrades
    #: to a detected-unrecoverable (DUE) outcome
    rollback_retry_budget: int = 2

    def __post_init__(self) -> None:
        if self.fingerprint_interval <= 0:
            raise ValueError("fingerprint interval must be positive")
        if self.comparison_latency < 0:
            raise ValueError("comparison latency cannot be negative")
        if self.serializing_policy not in ("drain", "send", "cut"):
            raise ValueError(
                "serializing_policy must be 'drain', 'send' or 'cut'")


class GroupMap:
    """Deterministic seq -> fingerprint-group assignment.

    Built monotonically by whichever core dispatches a seq first; replays
    (the other core, or re-execution after rollback) read the recorded
    assignment, so the mapping can never diverge.
    """

    def __init__(self, interval: int) -> None:
        self.interval = interval
        self._group_of: List[int] = []     # seq -> group
        self._sizes: Dict[int, int] = {}   # group -> final size (closed)
        self._current = 0
        self._count = 0

    def assign(self, seq: int, cut_before: bool = False,
               cut_after: bool = False) -> int:
        """Group of ``seq``; extends the map when ``seq`` is new.

        ``cut_before`` seals the currently-open group before assigning
        (serializing instructions must head their own fingerprint so that
        everything older verifies first — otherwise commit of the older
        work would wait on an instruction that cannot issue until they
        commit). ``cut_after`` closes the group right after this
        instruction (serializing instructions and program end).
        """
        if seq < len(self._group_of):
            return self._group_of[seq]
        if seq != len(self._group_of):
            raise ValueError(
                f"group map must be extended in order (got seq {seq}, "
                f"expected {len(self._group_of)})")
        if cut_before and self._count:
            self._sizes[self._current] = self._count
            self._current += 1
            self._count = 0
        group = self._current
        self._group_of.append(group)
        self._count += 1
        if cut_after or self._count >= self.interval:
            self._sizes[group] = self._count
            self._current += 1
            self._count = 0
        return group

    def group_of(self, seq: int) -> int:
        return self._group_of[seq]

    def size(self, group: int) -> Optional[int]:
        """Final member count of ``group`` (None while still open)."""
        return self._sizes.get(group)

    def last_seq_of(self, group: int) -> Optional[int]:
        """Seq of the final member (None while open)."""
        size = self._sizes.get(group)
        if size is None:
            return None
        first = 0
        for g in range(group):
            first += self._sizes[g]
        return first + size - 1

    @property
    def groups_started(self) -> int:
        return self._current + (1 if self._count else 0)

    @property
    def groups_closed(self) -> int:
        """Number of sealed groups (they are sealed in index order)."""
        return len(self._sizes)


class CheckStage:
    """Pair-shared verification state."""

    def __init__(self, params: ReunionParams) -> None:
        self.params = params
        self.groups = GroupMap(params.fingerprint_interval)
        self._fp: List[Dict[int, FingerprintGenerator]] = [{}, {}]
        self._completed: List[Dict[int, int]] = [{}, {}]
        self._done_cycle: List[Dict[int, int]] = [{}, {}]
        #: group -> (verified_at_cycle, fingerprints_matched)
        self._verdict: Dict[int, Tuple[int, bool]] = {}
        #: serializing drain: group each core's front end waits on
        self.block_group: List[Optional[int]] = [None, None]
        #: pending single-shot fingerprint corruption per core (faults)
        self.corrupt_next: List[bool] = [False, False]
        #: groups whose stream was corrupted (fault adjudication)
        self.corrupted_groups: set = set()
        #: telemetry event sink (installed by ReunionSystem; None = off)
        self.events = None
        # statistics
        self.fingerprints_compared = 0
        self.mismatches = 0
        self.aliased_corruptions = 0

    # -- dispatch side ------------------------------------------------------
    def on_dispatch(self, core: int, seq: int, serializing: bool,
                    end_of_program: bool = False, now: int = 0) -> int:
        before = self.groups.groups_closed
        group = self.groups.assign(seq, cut_before=serializing,
                                   cut_after=serializing or end_of_program)
        if serializing and self.params.serializing_policy in ("drain", "send"):
            self.block_group[core] = group
        # Closing a group can retroactively complete it: its last member may
        # have finished execution before the closure was known (the closure
        # happens at the *next* dispatch). Re-check both cores.
        for closed in range(before, self.groups.groups_closed):
            for c in range(2):
                self._check_group_done(c, closed, now)
        return group

    def _check_group_done(self, core: int, group: int, now: int) -> None:
        """Declare ``group`` done on ``core`` if all members are hashed."""
        if group in self._done_cycle[core] or group in self._verdict:
            return
        size = self.groups.size(group)
        if size is None or self._completed[core].get(group, 0) != size:
            return
        self._done_cycle[core][group] = now
        other = 1 - core
        other_done = self._done_cycle[other].get(group)
        if other_done is None:
            return
        verified_at = max(now, other_done) + self.params.comparison_latency
        matched = self._fp[0][group].value == self._fp[1][group].value
        self._verdict[group] = (verified_at, matched)
        self.fingerprints_compared += 1
        if not matched:
            self.mismatches += 1
        elif group in self.corrupted_groups:
            self.aliased_corruptions += 1
        if self.events is not None:
            from repro.telemetry.events import FP_COMPARE, FP_MISMATCH
            # ts is the comparison *decision* cycle; the in-flight latency
            # lands the verdict at args["verified_at"]
            self.events.emit(FP_COMPARE, now, "check",
                             args={"group": group, "matched": matched,
                                   "verified_at": verified_at})
            if not matched:
                self.events.emit(FP_MISMATCH, now, "check",
                                 args={"group": group})

    def dispatch_allowed(self, core: int, now: int) -> bool:
        group = self.block_group[core]
        if group is None:
            return True
        if self.params.serializing_policy == "send":
            # resume once this core's fingerprint has left (local drain)
            if group in self._done_cycle[core] or group in self._verdict:
                self.block_group[core] = None
                return True
            return False
        verdict = self._verdict.get(group)
        if verdict is not None and now >= verdict[0]:
            self.block_group[core] = None
            return True
        return False

    # -- completion / fingerprint side -----------------------------------------
    def record_completion(self, core: int, group: int, pc: int,
                          result: Optional[int], store_addr: Optional[int],
                          store_value: Optional[int], now: int) -> None:
        """Hash one in-order completion into the core's group fingerprint.

        Call only for groups that are not already verified (re-executions
        of verified work skip hashing).
        """
        fp = self._fp[core].setdefault(group, FingerprintGenerator())
        if self.corrupt_next[core]:
            # a strike perturbed this instruction's output: hash a flipped
            # value so the comparison sees what the hardware would see.
            self.corrupt_next[core] = False
            self.corrupted_groups.add(group)
            result = ((result or 0) ^ 0x1) & 0xFFFFFFFF
        fp.add(pc, result, store_addr, store_value)
        count = self._completed[core].get(group, 0) + 1
        self._completed[core][group] = count
        self._check_group_done(core, group, now)

    def is_verified(self, group: int, now: int) -> bool:
        verdict = self._verdict.get(group)
        return verdict is not None and verdict[1] and now >= verdict[0]

    def was_compared(self, group: int) -> bool:
        return group in self._verdict

    def mismatch_ready(self, now: int) -> Optional[int]:
        """Oldest group whose comparison failed and is due at ``now``."""
        candidates = [g for g, (at, ok) in self._verdict.items()
                      if not ok and now >= at]
        return min(candidates) if candidates else None

    # -- rollback ------------------------------------------------------------
    def reset_unverified(self, committed_seq: List[int]) -> None:
        """Drop bookkeeping for every group that is not verified-and-matched.

        ``committed_seq`` gives each core's committed watermark (seq of the
        next instruction to re-execute); verified groups stay verified so
        re-executed tails commit immediately without re-hashing.
        """
        stale = [g for g, (_, ok) in self._verdict.items() if not ok]
        for g in stale:
            del self._verdict[g]
        for core in range(2):
            for store in (self._fp[core], self._completed[core],
                          self._done_cycle[core]):
                for g in [g for g in store
                          if g not in self._verdict]:
                    del store[g]
            self.block_group[core] = None

    def needs_hash(self, group: int) -> bool:
        """True when completions of ``group`` must still be fingerprinted
        (False for already-verified groups being replayed)."""
        return group not in self._verdict
