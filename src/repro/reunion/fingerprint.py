"""16-bit CRC fingerprints.

The Reunion fingerprint summarises architectural updates of a window of
retired instructions; both papers use a 16-bit CRC (the hardware form is
the 2-stage *parallel* CRC of Albertengo & Sisto — 238 gates, which is the
number the hardware cost model charges). This module implements the same
code serially (table-driven), which is bit-identical to the parallel
circuit by construction.

Aliasing: a 16-bit CRC maps a corrupted stream to the same fingerprint
with probability 2^-16 ≈ 1.5e-5 — real, measurable, and covered by tests;
it is one reliability argument the paper makes for UnSync's direct
detection.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

#: CRC-16-CCITT polynomial, the standard choice for the cited parallel
#: CRC construction.
CRC16_POLY = 0x1021
CRC16_INIT = 0xFFFF


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_TABLE = _build_table()


def crc16_update(crc: int, data: bytes) -> int:
    """Fold ``data`` into a running CRC-16."""
    for b in data:
        crc = ((crc << 8) & 0xFFFF) ^ _TABLE[((crc >> 8) ^ b) & 0xFF]
    return crc


def crc16(data: bytes) -> int:
    """One-shot CRC-16 of ``data``."""
    return crc16_update(CRC16_INIT, data)


class FingerprintGenerator:
    """Accumulates one fingerprint over a window of retired instructions.

    Each instruction contributes its PC and its architectural update
    (destination value, or store address+data) — the same information the
    Reunion hardware hashes out of the retirement stream.
    """

    def __init__(self) -> None:
        self._crc = CRC16_INIT
        self.length = 0

    def add(self, pc: int, result: Optional[int] = None,
            store_addr: Optional[int] = None,
            store_value: Optional[int] = None) -> None:
        payload = pc.to_bytes(4, "little")
        if result is not None:
            payload += (result & 0xFFFFFFFF).to_bytes(4, "little")
        if store_addr is not None:
            payload += (store_addr & 0xFFFFFFFF).to_bytes(4, "little")
        if store_value is not None:
            payload += (store_value & 0xFFFFFFFF).to_bytes(4, "little")
        self._crc = crc16_update(self._crc, payload)
        self.length += 1

    @property
    def value(self) -> int:
        return self._crc

    def reset(self) -> None:
        self._crc = CRC16_INIT
        self.length = 0
