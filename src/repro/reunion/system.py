"""ReunionSystem: vocal/mute core pair with fingerprint verification.

Core 0 is the *vocal* core (its stores are released to the memory
hierarchy); core 1 is *mute*. Completed instructions enter the CHECK-stage
buffer in program order, each group's CRC-16 is compared across the pair
after the comparison latency, and only verified instructions commit. A
mismatch rolls both cores back to their committed (== last verified)
state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.pipeline import CommitGate
from repro.core.rob import ROBEntry
from repro.faults.detection import Detector, NoDetector
from repro.faults.events import FaultEvent, Outcome
from repro.faults.injector import (
    BlockInventory, FaultInjector, REUNION_DETECTORS, Strike,
)
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.redundancy.pair import DualCoreSystem
from repro.redundancy.stats import WriteBuffer
from repro.reunion.check_stage import CheckStage, ReunionParams
from repro.reunion.csb import CheckStageBuffer, csb_entries_for
from repro.telemetry import Telemetry
from repro.telemetry.events import (
    CSB_GATE, FAULT_DETECTED, FAULT_DUE, FAULT_INJECTED, FAULT_MULTIBIT,
    FAULT_SDC, RECOVERY_ABORT, RECOVERY_REENTRY, ROLLBACK,
)


class _ReunionGate(CommitGate):
    """Per-core gate implementing the CHECK stage protocol."""

    def __init__(self, system: "ReunionSystem", core_id: int) -> None:
        self.system = system
        self.core_id = core_id
        self.next_csb_seq = 0
        #: telemetry sink (None when disabled) + the open CSB-full stall
        #: episode, reported as one csb.gate span per episode
        self._ev = system._ev
        self._ev_track = f"core{core_id}.csb"
        self._stall_start: Optional[int] = None

    def dispatch_allowed(self, now: int) -> bool:
        return self.system.check.dispatch_allowed(self.core_id, now)

    def on_dispatch(self, entry: ROBEntry, now: int) -> None:
        entry.fp_group = self.system.check.on_dispatch(
            self.core_id, entry.seq, entry.ins.is_serializing,
            end_of_program=entry.ins.op is Opcode.HALT, now=now)

    def on_complete(self, entry: ROBEntry, now: int) -> bool:
        if entry.seq != self.next_csb_seq:
            return False  # CHECK admission is in program order
        csb = self.system.csbs[self.core_id]
        if csb.full:
            csb.full_stalls += 1
            if self._ev is not None and self._stall_start is None:
                self._stall_start = now
            return False
        if self._stall_start is not None:
            self._ev.emit(CSB_GATE, self._stall_start, self._ev_track,
                          dur=now - self._stall_start)
            self._stall_start = None
        csb.push(entry.seq, entry.fp_group)
        self.next_csb_seq += 1
        check = self.system.check
        if check.needs_hash(entry.fp_group):
            check.record_completion(
                self.core_id, entry.fp_group, entry.pc,
                result=entry.result,
                store_addr=entry.mem_addr if entry.is_store else None,
                store_value=entry.store_value,
                now=now)
        return True

    def can_commit(self, entry: ROBEntry, now: int) -> bool:
        if not self.system.check.is_verified(entry.fp_group, now):
            return False
        if entry.is_store and self.core_id == ReunionSystem.VOCAL:
            # verified stores need a release-queue slot on the vocal core
            return self.system.store_queue.can_accept()
        return True

    def on_commit(self, entry: ROBEntry, now: int) -> None:
        csb = self.system.csbs[self.core_id]
        head = csb.head()
        if head is None or head.seq != entry.seq:  # pragma: no cover
            raise RuntimeError("CSB/commit order diverged")
        csb.pop()
        if entry.is_store and self.core_id == ReunionSystem.VOCAL:
            # a single instance of each verified store reaches memory
            self.system.store_queue.push(entry.seq, entry.mem_addr,
                                         entry.store_value,
                                         entry.ins.mem_width)


class ReunionSystem(DualCoreSystem):
    """Fingerprint-compared redundant pair (the comparison baseline)."""

    scheme = "reunion"
    VOCAL = 0

    def __init__(self, program: Program,
                 config: Optional[SystemConfig] = None,
                 params: Optional[ReunionParams] = None,
                 csb_entries: Optional[int] = None,
                 injector: Optional[FaultInjector] = None,
                 detectors: Optional[Dict[str, Detector]] = None,
                 name: Optional[str] = None,
                 telemetry: Optional[Telemetry] = None,
                 **uncore) -> None:
        self.params = params or ReunionParams()
        self.check = CheckStage(self.params)
        if telemetry is not None:
            self.check.events = telemetry.events
        # Performance default: generous CSB so that — as in the paper's
        # Figure 5 narrative — the *ROB* is the structure that saturates
        # under large FI / comparison latency, not the CSB. The paper's
        # hardware sizing rule (csb_entries_for, 17 entries at FI=10 with
        # the minimum 6-cycle latency) is what the Table II cost model
        # charges; pass csb_entries explicitly to study CSB-bound setups.
        if csb_entries is not None:
            capacity = csb_entries
        else:
            capacity = (self.params.fingerprint_interval
                        + 4 * self.params.comparison_latency)
        self.csbs: List[CheckStageBuffer] = [
            CheckStageBuffer(capacity) for _ in range(2)]
        self.store_queue = WriteBuffer(capacity=16)
        self.injector = injector
        self.detectors = detectors if detectors is not None else dict(REUNION_DETECTORS)
        self.inventory = (injector.inventory if injector is not None
                          else BlockInventory())
        self.fault_events: List[FaultEvent] = []
        self.rollbacks = 0
        self.rollback_cycles_total = 0
        self.due_count = 0
        self.rollback_reentries = 0
        self.rollback_aborts = 0
        self._rollback_until = 0
        self._rollback_retries_left = self.params.rollback_retry_budget
        self.incoherence_events = 0
        self.incoherence_syncs = 0
        self.incoherence_cycles = 0
        self._incoherence_rng = None
        self._next_strike: Optional[Strike] = None
        #: fault events awaiting group-verdict adjudication
        self._unbound_events: List[FaultEvent] = []
        super().__init__(program, config, name=name, telemetry=telemetry,
                         **uncore)
        if self.injector is not None:
            # Injected runs must keep the commit-time image an independent
            # re-execution, never a replay of fetch-time records.
            for p in self.pipelines:
                p.commit_replay = "always"
            self._arm_next_strike(0)

    # -- construction hooks -----------------------------------------------
    def make_gate(self, core_id: int) -> CommitGate:
        return _ReunionGate(self, core_id)

    # -- per-cycle engine ---------------------------------------------------
    def on_cycle(self, now: int) -> None:
        if self.injector is not None:
            self._process_strikes(now)
        if self.params.input_incoherence_rate > 0:
            self._process_incoherence(now)
        self._adjudicate(now)
        mismatch = self.check.mismatch_ready(now)
        if mismatch is not None:
            self._rollback(now, mismatch)
        # drain the vocal store queue whenever the bus is idle
        while len(self.store_queue):
            head = self.store_queue.head()
            xfer = self.bus.transfer_cycles(self.store_queue.entry_bytes)
            if self.bus.try_request(now, xfer) < 0:
                break
            self.store_queue.pop()
            self.l2.access(head[1] + self.addr_offset, is_write=True, now=now)

    # -- input incoherence (relaxed input replication) -------------------------
    def _process_incoherence(self, now: int) -> None:
        """Sample racing-writer events and charge their costs.

        Both cores stall for the re-issue (their loads must be replayed
        at the same point of the instruction stream); an escalated event
        additionally pays the synchronizing request and occupies the bus.
        """
        import random
        if self._incoherence_rng is None:
            self._incoherence_rng = random.Random(0xC0)
        rng = self._incoherence_rng
        if rng.random() >= self.params.input_incoherence_rate:
            return
        self.incoherence_events += 1
        penalty = self.params.reissue_penalty
        if rng.random() < self.params.incoherence_escalation_prob:
            self.incoherence_syncs += 1
            penalty += self.params.sync_request_penalty
            self.bus.request(now, self.bus.transfer_cycles(64))
        for pipeline in self.pipelines:
            pipeline.frozen_until = max(pipeline.frozen_until, now + penalty)
        self.incoherence_cycles += penalty

    # -- faults -------------------------------------------------------------
    def _arm_next_strike(self, now: int) -> None:
        self._next_strike = self.injector.next_strike(now)

    def _process_strikes(self, now: int) -> None:
        while self._next_strike is not None and self._next_strike.cycle <= now:
            strike = self._next_strike
            core_id = strike.core_id()
            block = self.inventory.get(strike.block)
            event = FaultEvent(cycle=now, core_id=core_id,
                               block=strike.block, bit=strike.bit)
            detector = self.detectors.get(strike.block, NoDetector())
            result = detector.check(strike.flipped_bits)
            if self._ev is not None:
                self._ev.emit(FAULT_INJECTED, now, f"core{core_id}",
                              args={"block": strike.block,
                                    "bit": strike.bit,
                                    "flipped": strike.flipped_bits})
                if strike.flipped_bits > 1:
                    self._ev.emit(FAULT_MULTIBIT, now, f"core{core_id}",
                                  args={"block": strike.block,
                                        "flipped": strike.flipped_bits})
            if result.corrected:
                # SECDED L1: fixed in place, execution unaffected
                event.outcome = Outcome.DETECTED_RECOVERED
                event.detection_latency = result.latency_cycles
                if self._ev is not None:
                    self._ev.emit(FAULT_DETECTED, now, f"core{core_id}",
                                  args={"block": strike.block,
                                        "corrected": True})
            elif result.detected:
                # SECDED saturated into detect-only (2-bit cluster): the
                # L1 line is known-bad and the fingerprint never covered
                # it — detected, unrecoverable.
                event.outcome = Outcome.DETECTED_UNRECOVERABLE
                event.detection_latency = result.latency_cycles
                self.due_count += 1
                if self._ev is not None:
                    self._ev.emit(FAULT_DUE, now, f"core{core_id}",
                                  args={"block": strike.block,
                                        "reason": "detect-only-ecc"})
            elif now < self._rollback_until:
                self._strike_during_rollback(now, core_id, block, event)
            elif block.pre_commit:
                # the corruption flows into the next fingerprint; verdict
                # adjudicated when the group comparison lands.
                self.check.corrupt_next[core_id] = True
                event.outcome = None  # pending
                self._unbound_events.append(event)
            else:
                event.outcome = Outcome.SDC
                if self._ev is not None:
                    self._ev.emit(FAULT_SDC, now, f"core{core_id}",
                                  args={"block": strike.block,
                                    "flipped": strike.flipped_bits})
            self.fault_events.append(event)
            self._arm_next_strike(now)

    def _strike_during_rollback(self, now: int, core_id: int, block,
                                event: FaultEvent) -> None:
        """A strike landing inside an in-progress rollback window.

        Pre-commit state is mid-squash: a corruption there would poison
        the restart point if the flush simply continued, so the rollback
        aborts and restarts (bounded retries), after which the squash
        disposes of the corruption. Marking ``corrupt_next`` here — as
        the steady-state path would — is exactly the mis-adjudication
        this hardening removes: the corrupted value never survives into
        a compared fingerprint. Architectural state has no fingerprint
        coverage at any time, so those strikes stay SDC.
        """
        self.rollback_reentries += 1
        if self._ev is not None:
            self._ev.emit(RECOVERY_REENTRY, now, "check",
                          args={"core": core_id, "block": block.name,
                                "retries_left": self._rollback_retries_left})
        if not block.pre_commit:
            event.outcome = Outcome.SDC
            if self._ev is not None:
                self._ev.emit(FAULT_SDC, now, f"core{core_id}",
                              args={"block": block.name,
                                    "during_rollback": True})
            return
        if self._rollback_retries_left > 0:
            self._rollback_retries_left -= 1
            self.rollback_aborts += 1
            penalty = self.params.rollback_penalty
            self._rollback_until = max(self._rollback_until, now + penalty)
            for pipeline in self.pipelines:
                pipeline.frozen_until = max(pipeline.frozen_until,
                                            now + penalty)
            self.rollback_cycles_total += penalty
            event.outcome = Outcome.DETECTED_RECOVERED
            if self._ev is not None:
                self._ev.emit(RECOVERY_ABORT, now, "check",
                              args={"core": core_id, "block": block.name})
        else:
            event.outcome = Outcome.DETECTED_UNRECOVERABLE
            self.due_count += 1
            if self._ev is not None:
                self._ev.emit(FAULT_DUE, now, f"core{core_id}",
                              args={"block": block.name,
                                    "reason": "retry-budget-exhausted"})

    def _adjudicate(self, now: int) -> None:
        """Resolve pending fault events once their group's verdict lands."""
        unbound = self._unbound_events
        if not unbound:
            return
        check = self.check
        resolved = []
        for event in unbound:
            # find a corrupted group with a verdict
            for group in sorted(check.corrupted_groups):
                if check.was_compared(group):
                    verdict_ok = check.is_verified(group, now + 10**9)
                    if verdict_ok:
                        event.outcome = Outcome.SDC  # CRC aliased
                        if self._ev is not None:
                            self._ev.emit(FAULT_SDC, now,
                                          f"core{event.core_id}",
                                          args={"block": event.block,
                                                "aliased": True})
                    else:
                        event.outcome = Outcome.DETECTED_RECOVERED
                        event.detection_latency = max(0, now - event.cycle)
                        if self._ev is not None:
                            self._ev.emit(FAULT_DETECTED, now,
                                          f"core{event.core_id}",
                                          args={"block": event.block,
                                                "group": group,
                                                "latency":
                                                    event.detection_latency})
                        self._met.histogram(
                            "reunion.detection.latency").observe(
                                event.detection_latency)
                    check.corrupted_groups.discard(group)
                    resolved.append(event)
                    break
        for event in resolved:
            unbound.remove(event)

    # -- rollback -------------------------------------------------------------
    def _rollback(self, now: int, group: int) -> None:
        """Squash both cores back to their committed (verified) state."""
        self.rollbacks += 1
        penalty = self.params.rollback_penalty
        if now >= self._rollback_until:
            # a fresh rollback episode resets the abort-retry budget
            self._rollback_retries_left = self.params.rollback_retry_budget
        self._rollback_until = max(self._rollback_until, now + penalty)
        if self.injector is not None:
            # a chase strike queued for this window must preempt the
            # pre-drawn strike or it would be delivered after the squash
            self.injector.on_recovery(now, penalty)
            self._next_strike = self.injector.preempt(self._next_strike)
        if self._ev is not None:
            self._ev.emit(ROLLBACK, now, "check", dur=penalty,
                          args={"group": group})
        self._met.histogram("reunion.rollback.penalty").observe(penalty)
        committed = []
        for core_id, pipeline in enumerate(self.pipelines):
            pipeline.flush_pipeline()
            pipeline.frozen_until = max(pipeline.frozen_until, now + penalty)
            gate: _ReunionGate = pipeline.gate  # type: ignore[assignment]
            gate.next_csb_seq = pipeline.stats.committed
            self.csbs[core_id].clear()
            committed.append(pipeline.stats.committed)
        self.check.reset_unverified(committed)
        self.rollback_cycles_total += penalty

    # -- results ---------------------------------------------------------------
    #: legacy `extra` keys, derived from the named telemetry counters
    LEGACY_EXTRA = {
        "fingerprints_compared": "reunion.fingerprint.compared",
        "mismatches": "reunion.fingerprint.mismatches",
        "aliased_corruptions": "reunion.fingerprint.aliased",
        "rollbacks": "reunion.rollback.count",
        "rollback_cycles": "reunion.rollback.cycles",
        "csb_full_stalls": "reunion.csb.full_stalls",
        "serializing_drains": "reunion.serializing.drain_stalls",
        "incoherence_events": "reunion.incoherence.events",
        "incoherence_syncs": "reunion.incoherence.syncs",
        "incoherence_cycles": "reunion.incoherence.cycles",
    }

    def scheme_metrics(self) -> Dict[str, float]:
        return {
            "reunion.fingerprint.compared": float(
                self.check.fingerprints_compared),
            "reunion.fingerprint.mismatches": float(self.check.mismatches),
            "reunion.fingerprint.aliased": float(
                self.check.aliased_corruptions),
            "reunion.rollback.count": float(self.rollbacks),
            "reunion.rollback.cycles": float(self.rollback_cycles_total),
            "reunion.rollback.reentries": float(self.rollback_reentries),
            "reunion.rollback.aborts": float(self.rollback_aborts),
            "reunion.due.count": float(self.due_count),
            "reunion.csb.pushes": float(self.csbs[0].pushes),
            "reunion.csb.full_stalls": float(
                sum(c.full_stalls for c in self.csbs)),
            "reunion.csb.max_occupancy": float(
                max(c.max_occupancy for c in self.csbs)),
            "reunion.serializing.drain_stalls": float(
                self.pipelines[0].stats.dispatch_stall_gate),
            "reunion.store_queue.pushes": float(self.store_queue.pushes),
            "reunion.store_queue.full_stalls": float(
                self.store_queue.full_stalls),
            "reunion.incoherence.events": float(self.incoherence_events),
            "reunion.incoherence.syncs": float(self.incoherence_syncs),
            "reunion.incoherence.cycles": float(self.incoherence_cycles),
        }

    def result(self):
        res = super().result()
        res.fault_events = list(self.fault_events)
        return res
