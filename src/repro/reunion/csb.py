"""CHECK-stage buffer (CSB).

Sec IV-3: completed instructions and their output data wait here, after
the Memory stage, until their fingerprint is verified. Entries are 66 bits
with one write and three read ports — the cell is 1.3x a register-file
cell, which is where the hardware cost model gets its CSB area. The paper
derives 17 entries for FI=10 with the minimum 6-cycle comparison latency
("since at any point in time, two fingerprints exist"), which
:func:`csb_entries_for` generalises.

Admission is *in program order* (the CHECK stage sits at the in-order tail
of the pipeline); a full CSB holds the next instruction in the execute
stage, which is how Reunion's back-pressure reaches the ROB.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

#: CSB entry width in bits (instruction tag + output data), from Sec IV-3.
ENTRY_BITS = 66


def csb_entries_for(fingerprint_interval: int, comparison_latency: int) -> int:
    """Paper's CSB sizing rule.

    One full interval must fit, plus the instructions that complete while
    the previous fingerprint is in flight (bounded by the comparison
    latency), plus the in-comparison slot. FI=10, latency=6 -> 17, matching
    Sec IV-3.
    """
    if fingerprint_interval <= 0:
        raise ValueError("fingerprint interval must be positive")
    if comparison_latency < 0:
        raise ValueError("comparison latency cannot be negative")
    return fingerprint_interval + comparison_latency + 1


@dataclass(frozen=True, slots=True)
class CSBEntry:
    seq: int
    group: int


class CheckStageBuffer:
    """Bounded in-order buffer of completed-unverified instructions."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("CSB needs at least one entry")
        self.capacity = capacity
        self._fifo: Deque[CSBEntry] = deque()
        self.pushes = 0
        self.full_stalls = 0
        #: high-water mark (checks the paper's csb_entries_for sizing)
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def full(self) -> bool:
        return len(self._fifo) >= self.capacity

    @property
    def size_bits(self) -> int:
        return self.capacity * ENTRY_BITS

    def push(self, seq: int, group: int) -> None:
        if self.full:
            raise RuntimeError("push into full CSB")
        if self._fifo and seq <= self._fifo[-1].seq:
            raise ValueError("CSB admission must be in program order")
        self._fifo.append(CSBEntry(seq, group))
        self.pushes += 1
        if len(self._fifo) > self.max_occupancy:
            self.max_occupancy = len(self._fifo)

    def head(self) -> Optional[CSBEntry]:
        return self._fifo[0] if self._fifo else None

    def pop(self) -> CSBEntry:
        return self._fifo.popleft()

    def clear(self) -> None:
        self._fifo.clear()
