"""Reunion (Smolens et al., MICRO 2006) — the paper's comparison baseline.

Loosely-coupled redundant core pairs that compare 16-bit CRC
*fingerprints* of the in-order retirement stream every FI (fingerprint
interval) instructions. Completed-but-unverified instructions wait in the
CHECK-stage buffer (CSB) and keep their ROB entries; serializing
instructions (traps, barriers, non-idempotent atomics) force the pipeline
to drain and verify before later work may dispatch; a fingerprint mismatch
rolls both cores back to the last verified boundary.

Public API:

* :class:`~repro.reunion.system.ReunionSystem` — run a workload under Reunion.
* :class:`~repro.reunion.fingerprint.FingerprintGenerator` / CRC-16 helpers.
* :class:`~repro.reunion.csb.CheckStageBuffer`.
* :class:`~repro.reunion.check_stage.CheckStage` — interval/verification
  bookkeeping shared by the pair.
"""

from repro.reunion.fingerprint import (
    crc16, crc16_update, FingerprintGenerator, CRC16_POLY,
)
from repro.reunion.csb import CheckStageBuffer, csb_entries_for
from repro.reunion.check_stage import CheckStage, GroupMap, ReunionParams
from repro.reunion.system import ReunionSystem

__all__ = [
    "crc16", "crc16_update", "FingerprintGenerator", "CRC16_POLY",
    "CheckStageBuffer", "csb_entries_for",
    "CheckStage", "GroupMap", "ReunionParams",
    "ReunionSystem",
]
