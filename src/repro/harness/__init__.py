"""Experiment harness: one entry point per paper table/figure.

:mod:`repro.harness.runner` runs (scheme, workload) combinations with
caching of baseline runs; :mod:`repro.harness.experiments` packages the
exact sweeps behind each artifact (Table II/III, Figures 4-6, the Sec VI-C
SER analysis, the Sec VI-D ROEC accounting); :mod:`repro.harness.report`
prints them in the paper's shape so a bench run is directly comparable to
the published rows.
"""

from repro.harness.runner import run_scheme, compare_schemes, SchemeComparison
from repro.harness.experiments import (
    fig4_serializing, fig5_fi_latency, fig6_cb_size,
    ser_sweep, break_even_analysis, roec_coverage,
    Fig4Row, Fig5Point, Fig6Point, SERPoint, ROECRow,
)
from repro.harness.report import format_table, print_table

__all__ = [
    "run_scheme", "compare_schemes", "SchemeComparison",
    "fig4_serializing", "fig5_fi_latency", "fig6_cb_size",
    "ser_sweep", "break_even_analysis", "roec_coverage",
    "Fig4Row", "Fig5Point", "Fig6Point", "SERPoint", "ROECRow",
    "format_table", "print_table",
]
