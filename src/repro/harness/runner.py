"""Scheme runners with baseline caching.

Every figure normalises against the unprotected baseline, so baseline
runs are cached per (benchmark, config) — a Figure 5 sweep re-uses one
baseline run across its whole grid.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass
from typing import Dict, Optional, Tuple

from repro.core.config import SystemConfig
from repro.isa.program import Program
from repro.redundancy.stats import RunResult
from repro.reunion.check_stage import ReunionParams
from repro.schemes import get as get_scheme
from repro.unsync.system import UnSyncConfig

_baseline_cache: Dict[Tuple, RunResult] = {}

#: generous global budget; kernels are ~6k instructions
MAX_CYCLES = 4_000_000


def run_scheme(scheme: str, program: Program,
               config: Optional[SystemConfig] = None,
               reunion_params: Optional[ReunionParams] = None,
               unsync_config: Optional[UnSyncConfig] = None,
               max_cycles: Optional[int] = None,
               **kwargs) -> RunResult:
    """Run one scheme on one program.

    ``scheme`` is any :func:`repro.schemes.available` name (an unknown
    one raises :class:`~repro.schemes.UnknownSchemeError`, a
    ``ValueError``). Extra kwargs are forwarded to the system constructor
    (injector, detectors, csb_entries, ...); ``reunion_params`` /
    ``unsync_config`` are kept as explicit legacy spellings of the
    respective schemes' ``params`` / ``unsync`` kwargs. ``max_cycles``
    tightens the cycle-budget watchdog (the campaign trial runner uses it
    to classify wedged simulations as ``HANG`` instead of waiting out the
    generous default).
    """
    budget = max_cycles if max_cycles is not None else MAX_CYCLES
    if scheme == "unsync" and unsync_config is not None:
        kwargs.setdefault("unsync", unsync_config)
    if scheme == "reunion" and reunion_params is not None:
        kwargs.setdefault("params", reunion_params)
    system = get_scheme(scheme).build_system(program, config=config, **kwargs)
    return system.run(budget)


def _config_key(config: Optional[SystemConfig]) -> Tuple:
    """Value-based cache key for a configuration.

    Keying on ``id(config)`` is unsound: once a config is garbage
    collected its id can be reissued to a *different* config, which would
    then silently hit the stale baseline. ``astuple`` flattens the frozen
    dataclass (recursively, nested cache/TLB configs included) into a
    hashable tuple of field values.
    """
    return astuple(config) if config is not None else ()


def baseline_run(program: Program,
                 config: Optional[SystemConfig] = None) -> RunResult:
    """Cached unprotected-baseline run of ``program``."""
    key = (program.name, _config_key(config))
    if key not in _baseline_cache:
        _baseline_cache[key] = run_scheme("baseline", program, config=config)
    return _baseline_cache[key]


@dataclass
class SchemeComparison:
    """Baseline/Reunion/UnSync on the same workload."""

    name: str
    baseline: RunResult
    reunion: RunResult
    unsync: RunResult

    @property
    def reunion_overhead(self) -> float:
        return self.reunion.overhead_vs(self.baseline)

    @property
    def unsync_overhead(self) -> float:
        return self.unsync.overhead_vs(self.baseline)

    @property
    def unsync_speedup_over_reunion(self) -> float:
        """The paper's headline metric ('up to 20% improved performance')."""
        return self.reunion.cycles / self.unsync.cycles - 1.0


def compare_schemes(program: Program,
                    config: Optional[SystemConfig] = None,
                    reunion_params: Optional[ReunionParams] = None,
                    unsync_config: Optional[UnSyncConfig] = None) -> SchemeComparison:
    """All three schemes on one workload."""
    return SchemeComparison(
        name=program.name,
        baseline=baseline_run(program, config),
        reunion=run_scheme("reunion", program, config=config,
                           reunion_params=reunion_params),
        unsync=run_scheme("unsync", program, config=config,
                          unsync_config=unsync_config),
    )
