"""One function per paper artifact.

Each function returns plain dataclass rows so that benchmarks, tests and
examples can all consume the same sweeps; :mod:`repro.harness.report`
turns them into paper-shaped tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.detection import Detector
from repro.faults.injector import (
    BlockInventory, REUNION_DETECTORS, UNSYNC_DETECTORS,
)
from repro.faults.ser import BREAK_EVEN_SER, break_even_ser
from repro.harness.runner import baseline_run, compare_schemes, run_scheme
from repro.reunion.check_stage import ReunionParams
from repro.unsync.comm_buffer import ENTRY_BYTES
from repro.unsync.system import UnSyncConfig
from repro.workloads.suites import benchmark_names, load_benchmark

#: benchmarks the Figure 4/5 discussion highlights
FIG4_DEFAULT = ("bzip2", "ammp", "galgel", "gzip", "parser", "vpr",
                "qsort", "sha", "dijkstra", "susan")
FIG5_DEFAULT = ("ammp", "galgel", "gzip", "sha")
FIG6_DEFAULT = ("bzip2", "gzip", "susan", "qsort")


# ---------------------------------------------------------------------------
# Figure 4 — serializing-instruction overhead
# ---------------------------------------------------------------------------
@dataclass
class Fig4Row:
    benchmark: str
    serializing_pct: float
    reunion_overhead: float
    unsync_overhead: float


def fig4_serializing(benchmarks: Sequence[str] = FIG4_DEFAULT,
                     fingerprint_interval: int = 10) -> List[Fig4Row]:
    """Reunion vs UnSync overhead per benchmark at FI=10 (Figure 4)."""
    rows = []
    params = ReunionParams(fingerprint_interval=fingerprint_interval)
    for name in benchmarks:
        program = load_benchmark(name)
        cmp = compare_schemes(program, reunion_params=params)
        ser = (cmp.baseline.core_stats[0].serializing_committed
               / max(1, cmp.baseline.instructions))
        rows.append(Fig4Row(
            benchmark=name,
            serializing_pct=ser,
            reunion_overhead=cmp.reunion_overhead,
            unsync_overhead=cmp.unsync_overhead,
        ))
    return rows


# ---------------------------------------------------------------------------
# Figure 5 — Reunion vs fingerprint interval / comparison latency
# ---------------------------------------------------------------------------
@dataclass
class Fig5Point:
    benchmark: str
    fingerprint_interval: int
    comparison_latency: int
    performance_decrease: float     # 1 - cycles_base/cycles_reunion
    rob_mean_occupancy: float


#: the paper's sweep: it "starts at FI of 1 and latency of 10, then
#: continuously increases them" — a diagonal grid.
FIG5_GRID = ((1, 10), (10, 10), (20, 20), (30, 40), (50, 60))


def fig5_fi_latency(benchmarks: Sequence[str] = FIG5_DEFAULT,
                    grid: Sequence[Tuple[int, int]] = FIG5_GRID) -> List[Fig5Point]:
    """Reunion performance across (FI, latency) pairs (Figure 5)."""
    points = []
    for name in benchmarks:
        program = load_benchmark(name)
        base = baseline_run(program)
        for fi, lat in grid:
            params = ReunionParams(fingerprint_interval=fi,
                                   comparison_latency=lat)
            from repro.reunion.system import ReunionSystem
            system = ReunionSystem(program, params=params)
            res = system.run()
            points.append(Fig5Point(
                benchmark=name,
                fingerprint_interval=fi,
                comparison_latency=lat,
                performance_decrease=1.0 - base.cycles / res.cycles,
                rob_mean_occupancy=system.pipelines[0].rob.mean_occupancy(),
            ))
    return points


# ---------------------------------------------------------------------------
# Figure 6 — UnSync vs Communication Buffer size
# ---------------------------------------------------------------------------
@dataclass
class Fig6Point:
    benchmark: str
    cb_kb: float
    cb_entries: int
    ipc_normalized: float           # UnSync IPC / baseline IPC
    cb_full_stalls: int


#: Figure 6's x-axis (KB per CB)
FIG6_SIZES_KB = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0)


def fig6_cb_size(benchmarks: Sequence[str] = FIG6_DEFAULT,
                 sizes_kb: Sequence[float] = FIG6_SIZES_KB) -> List[Fig6Point]:
    """UnSync performance across CB sizes (Figure 6)."""
    points = []
    for name in benchmarks:
        program = load_benchmark(name)
        base = baseline_run(program)
        for kb in sizes_kb:
            entries = max(1, int(kb * 1024 // ENTRY_BYTES))
            cfg = UnSyncConfig(cb_entries=entries)
            res = run_scheme("unsync", program, unsync_config=cfg)
            points.append(Fig6Point(
                benchmark=name,
                cb_kb=kb,
                cb_entries=entries,
                ipc_normalized=base.cycles / res.cycles,
                cb_full_stalls=int(res.extra["cb_full_stalls"]),
            ))
    return points


# ---------------------------------------------------------------------------
# Sec VI-C — IPC across SER rates + break-even
# ---------------------------------------------------------------------------
@dataclass
class SERPoint:
    ser_per_instruction: float
    unsync_ipc: float
    reunion_ipc: float


def ser_sweep(benchmark: str = "gzip",
              rates: Sequence[float] = (1e-7, 1e-9, 1e-12, 1e-17),
              seed: int = 7) -> List[SERPoint]:
    """IPC of both schemes across per-instruction SER (Sec VI-C).

    At every realistic rate the expected strike count over a kernel-sized
    run is ~0, so the IPCs are flat — which is the paper's point.
    """
    from repro.faults.injector import FaultInjector
    program = load_benchmark(benchmark)
    points = []
    for rate in rates:
        # convert per-instruction to per-cycle via the baseline IPC
        base = baseline_run(program)
        per_cycle = rate * base.ipc
        uns = run_scheme("unsync", program,
                         injector=FaultInjector(per_cycle, seed=seed))
        reu = run_scheme("reunion", program,
                         injector=FaultInjector(per_cycle, seed=seed))
        points.append(SERPoint(rate, uns.ipc, reu.ipc))
    return points


@dataclass
class BreakEven:
    measured_advantage_cycles_per_instruction: float
    recovery_penalty_cycles_copy: float
    recovery_penalty_cycles_invalidate: float
    break_even_ser_copy: float
    break_even_ser_invalidate: float
    paper_break_even: float = BREAK_EVEN_SER


def break_even_analysis(benchmark: str = "bzip2") -> BreakEven:
    """The hypothetical break-even SER of Sec VI-C.

    UnSync's error-free advantage over Reunion (cycles/instruction) is
    measured; its extra recovery penalty per error comes from the
    recovery cost model, under both L1-restore modes (Sec III-A's bulk
    copy, and the invalidate-only variant the write-through L1 permits —
    the paper's 1.29e-3 figure is only reachable with the cheap one).
    The break-even SER is where expected recovery cost eats the
    advantage.
    """
    program = load_benchmark(benchmark)
    cmp = compare_schemes(program)
    adv_cycles = (cmp.reunion.cycles - cmp.unsync.cycles) / cmp.baseline.instructions
    adv_cycles = max(0.0, adv_cycles)
    from repro.unsync.recovery import RecoveryCostModel
    reunion_rollback = ReunionParams().rollback_penalty
    penalties = {}
    for mode in ("copy", "invalidate"):
        plan = RecoveryCostModel(l1_restore=mode).plan(
            stall_cycles=5, l1_resident_lines=256, cb_entries=10)
        penalties[mode] = max(1.0, plan.total_cycles - reunion_rollback)
    return BreakEven(
        measured_advantage_cycles_per_instruction=adv_cycles,
        recovery_penalty_cycles_copy=penalties["copy"],
        recovery_penalty_cycles_invalidate=penalties["invalidate"],
        break_even_ser_copy=break_even_ser(max(1e-12, adv_cycles),
                                           penalties["copy"]),
        break_even_ser_invalidate=break_even_ser(max(1e-12, adv_cycles),
                                                 penalties["invalidate"]),
    )


# ---------------------------------------------------------------------------
# Sec VI-D — region of error coverage
# ---------------------------------------------------------------------------
@dataclass
class ROECRow:
    architecture: str
    accounting: str                 # "scheme" or "system"
    covered_bits: int
    total_bits: int

    @property
    def coverage(self) -> float:
        return self.covered_bits / self.total_bits


def roec_coverage(inventory: Optional[BlockInventory] = None) -> List[ROECRow]:
    """Region-of-error-coverage accounting (Sec VI-D), both ways.

    * ``scheme`` accounting follows the paper's convention: only what the
      redundancy scheme *itself* covers counts — "the L1 cache in the
      Reunion architecture is assumed to have ECC protection and
      therefore not included in the ROEC". Reunion's scheme-ROEC is the
      pre-commit pipeline; UnSync's is every sequential block + the L1.
    * ``system`` accounting adds delegated protection (Reunion's SECDED
      L1), answering "what fraction of sequential bits is protected by
      anything at all".
    """
    inv = inventory or BlockInventory()
    rows = []
    # scheme accounting
    unsync_bits = sum(b.bits for b in inv
                      if UNSYNC_DETECTORS.get(b.name) is not None
                      and UNSYNC_DETECTORS[b.name].check(1).detected)
    reunion_scheme_bits = sum(b.bits for b in inv if b.pre_commit)
    rows.append(ROECRow("unsync", "scheme", unsync_bits, inv.total_bits))
    rows.append(ROECRow("reunion", "scheme", reunion_scheme_bits,
                        inv.total_bits))
    # system accounting (detectors + fingerprint + delegated ECC)
    for arch, detectors, fp in (("unsync", UNSYNC_DETECTORS, False),
                                ("reunion", REUNION_DETECTORS, True)):
        frac = inv.coverage(detectors, fingerprint_pre_commit=fp)
        rows.append(ROECRow(architecture=arch, accounting="system",
                            covered_bits=round(frac * inv.total_bits),
                            total_bits=inv.total_bits))
    return rows
