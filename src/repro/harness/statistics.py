"""Statistical helpers for the Monte-Carlo experiments.

The hazard model, ROEC sampling and CRC-aliasing measurements all
estimate probabilities by sampling; results should carry intervals, not
bare point estimates. Wilson intervals for proportions (well-behaved at
the small counts our rare-event estimates produce) and normal-theory
intervals for means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class Interval:
    """A point estimate with a confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float = 0.95

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> Interval:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("need at least one trial")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    z = float(_scipy_stats.norm.ppf(0.5 + confidence / 2))
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials))
    low = max(0.0, centre - margin)
    high = min(1.0, centre + margin)
    # snap the degenerate edges exactly (floating-point residue would
    # otherwise leave low=1e-18 at 0 successes, or high<p at all-successes)
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    low = min(low, p)
    high = max(high, p)
    return Interval(estimate=p, low=low, high=high, confidence=confidence)


def mean_interval(samples: Sequence[float],
                  confidence: float = 0.95) -> Interval:
    """t-based confidence interval for a mean."""
    n = len(samples)
    if n < 2:
        raise ValueError("need at least two samples")
    mean = sum(samples) / n
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    se = math.sqrt(var / n)
    t = float(_scipy_stats.t.ppf(0.5 + confidence / 2, df=n - 1))
    return Interval(estimate=mean, low=mean - t * se, high=mean + t * se,
                    confidence=confidence)


def required_trials(p: float, relative_precision: float = 0.1,
                    confidence: float = 0.95) -> int:
    """Trials needed to estimate a proportion ``p`` to the given relative
    precision — the planning tool for rare-event Monte Carlo (e.g. CRC
    aliasing at 2^-16 needs ~25M trials for 10%)."""
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    if relative_precision <= 0:
        raise ValueError("precision must be positive")
    z = float(_scipy_stats.norm.ppf(0.5 + confidence / 2))
    return math.ceil(z * z * (1 - p) / (p * relative_precision ** 2))
