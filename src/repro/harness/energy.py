"""Runtime energy estimation: hwcost power x simulated time.

The paper reports *power* (Table II) and *performance* (Figs 4-6)
separately; a system designer ultimately pays for their product. This
module closes the loop: take a simulation's cycle count, the scheme's
synthesized per-core power, and produce energy and energy-delay-product
figures per workload.

Model: the synthesis corner is 300 MHz (Sec V), so one simulated cycle is
1/300 MHz of wall time; each live core burns its Table II total power for
the run's duration, plus the event-based extras that scale with activity
rather than time (CB/CSB traffic, fingerprint transfers, recoveries).
Event energies are derived from the component library's per-access
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hwcost.components import cb_array, crc_generator
from repro.hwcost.synthesis import synthesize
from repro.hwcost.tech import TECH_65NM, TechNode
from repro.redundancy.stats import RunResult

#: cores a scheme keeps busy per protected thread (MEEK's in-order
#: checker is a fraction of a core — see CHECKER_CORE_FRACTION — so its
#: effective core count is below 2)
CORES_PER_SCHEME = {"baseline": 1, "unsync": 2, "reunion": 2,
                    "checkpoint": 2, "tmr": 3, "reptfd": 2,
                    "meek": 1.3}

#: which synthesized column prices a scheme's core (RepTFD and MEEK run
#: plain MIPS cores — their detection silicon is queues and comparators,
#: charged as event energy)
_COSTING_SCHEME = {"baseline": "mips", "unsync": "unsync",
                   "reunion": "reunion", "checkpoint": "mips",
                   "tmr": "mips", "reptfd": "mips", "meek": "mips"}


@dataclass
class EnergyReport:
    """Energy accounting for one run."""

    scheme: str
    workload: str
    cycles: int
    time_s: float
    #: time-proportional core + L1 energy
    core_energy_j: float
    #: activity-proportional extras (CB/CSB traffic, fingerprints, ...)
    event_energy_j: float
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def total_energy_j(self) -> float:
        return self.core_energy_j + self.event_energy_j

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s) — the efficiency figure of merit."""
        return self.total_energy_j * self.time_s

    def energy_per_instruction_nj(self, instructions: int) -> float:
        if instructions <= 0:
            raise ValueError("need a positive instruction count")
        return self.total_energy_j / instructions * 1e9


def _event_energy(result: RunResult, tech: TechNode) -> Dict[str, float]:
    """Per-event extras by scheme, from the component library."""
    cycle_s = 1.0 / tech.frequency_hz
    out: Dict[str, float] = {}
    extra = result.extra
    if result.scheme == "unsync":
        cb = cb_array(10)
        per_access = cb.power_w * cycle_s  # one access ~ one cycle of CB power
        out["cb_traffic"] = per_access * (extra.get("cb_pushes", 0)
                                          + extra.get("cb_drains", 0))
        # recovery: the pair burns its normal power while frozen — the
        # *extra* energy is the copy traffic, charged like CB accesses
        out["recovery_copies"] = per_access * extra.get("recovery_cycles", 0)
    elif result.scheme == "reunion":
        crc = crc_generator(tech)
        per_fp = crc.power_w * cycle_s * 2  # generate on both cores
        out["fingerprints"] = per_fp * extra.get("fingerprints_compared", 0)
    elif result.scheme == "checkpoint":
        # checkpoint bytes move through the memory system
        bytes_captured = extra.get("checkpoint_bytes", 0)
        out["checkpoint_traffic"] = bytes_captured * 10e-12  # ~10 pJ/byte
    elif result.scheme == "reptfd":
        from repro.hwcost.redundancy_cost import REPLAY_ENTRY_BITS
        queue = cb_array(96, entry_bits=REPLAY_ENTRY_BITS)
        per_access = queue.power_w * cycle_s
        # every compared record was pushed once and popped once
        out["replay_queue"] = per_access * 2 * extra.get("replay_compares", 0)
        out["rollback_refill"] = per_access * extra.get("rollback_cycles", 0)
    elif result.scheme == "meek":
        from repro.hwcost.redundancy_cost import CHECK_ENTRY_BITS
        queue = cb_array(64, entry_bits=CHECK_ENTRY_BITS)
        per_access = queue.power_w * cycle_s
        out["check_queue"] = per_access * 2 * extra.get("checks", 0)
    return out


def energy_estimate(result: RunResult,
                    tech: TechNode = TECH_65NM) -> EnergyReport:
    """Estimate the energy of one finished run."""
    scheme = result.scheme
    if scheme not in CORES_PER_SCHEME:
        raise ValueError(f"unknown scheme {scheme!r}")
    costs = synthesize(_COSTING_SCHEME[scheme], tech)
    n_cores = CORES_PER_SCHEME[scheme]
    time_s = result.cycles / tech.frequency_hz
    core_energy = costs.total_power_w * n_cores * time_s
    events = _event_energy(result, tech)
    return EnergyReport(
        scheme=scheme,
        workload=result.name,
        cycles=result.cycles,
        time_s=time_s,
        core_energy_j=core_energy,
        event_energy_j=sum(events.values()),
        breakdown={"cores": core_energy, **events},
    )


def compare_energy(results: Dict[str, RunResult],
                   tech: TechNode = TECH_65NM) -> Dict[str, EnergyReport]:
    """Energy reports for a dict of scheme -> result (same workload)."""
    return {scheme: energy_estimate(res, tech)
            for scheme, res in results.items()}
