"""One-factor-at-a-time sensitivity analysis over machine parameters.

A design study built on the reproduction: vary one structural parameter
(ROB entries, bus width, L1 size, EIH latency, ...) while holding the
Table I baseline fixed, and report how each scheme's performance moves.
This is the tool that would have produced "Figure 7" had the paper had
one — and it is how DESIGN.md's modelling choices were checked for
robustness.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import CoreConfig, SystemConfig
from repro.isa.program import Program
from repro.mem.cache import CacheConfig


@dataclass
class SensitivityPoint:
    """One (parameter value, scheme) measurement."""

    parameter: str
    value: object
    scheme: str
    cycles: int
    ipc: float


#: parameter name -> function(SystemConfig, value) -> SystemConfig
KNOBS: Dict[str, Callable[[SystemConfig, object], SystemConfig]] = {
    "rob_entries": lambda cfg, v: dataclasses.replace(
        cfg, core=cfg.core.scaled(rob_entries=int(v))),
    "iq_entries": lambda cfg, v: dataclasses.replace(
        cfg, core=cfg.core.scaled(iq_entries=int(v))),
    "lsq_entries": lambda cfg, v: dataclasses.replace(
        cfg, core=cfg.core.scaled(lsq_entries=int(v))),
    "issue_width": lambda cfg, v: dataclasses.replace(
        cfg, core=cfg.core.scaled(issue_width=int(v),
                                  fetch_width=int(v),
                                  dispatch_width=int(v),
                                  commit_width=int(v))),
    "bus_width_bytes": lambda cfg, v: dataclasses.replace(
        cfg, bus_width_bytes=int(v)),
    "l1_size_kb": lambda cfg, v: dataclasses.replace(
        cfg,
        icache=dataclasses.replace(cfg.icache, size_bytes=int(v) * 1024),
        dcache=dataclasses.replace(cfg.dcache, size_bytes=int(v) * 1024)),
    "l2_latency": lambda cfg, v: dataclasses.replace(
        cfg, l2=dataclasses.replace(cfg.l2, hit_latency=int(v))),
    "dram_latency": lambda cfg, v: dataclasses.replace(
        cfg, dram_latency=int(v)),
}


def sweep(program: Program,
          parameter: str,
          values: Sequence[object],
          schemes: Sequence[str] = ("baseline", "unsync", "reunion"),
          base_config: Optional[SystemConfig] = None) -> List[SensitivityPoint]:
    """Run every (value, scheme) combination.

    Returns points in (value-major, scheme-minor) order.
    """
    from repro.harness.runner import run_scheme
    if parameter not in KNOBS:
        raise ValueError(f"unknown parameter {parameter!r}; "
                         f"knobs: {', '.join(sorted(KNOBS))}")
    knob = KNOBS[parameter]
    base = base_config or SystemConfig.table1()
    points = []
    for value in values:
        cfg = knob(base, value)
        for scheme in schemes:
            res = run_scheme(scheme, program, config=cfg)
            points.append(SensitivityPoint(
                parameter=parameter, value=value, scheme=scheme,
                cycles=res.cycles, ipc=res.ipc))
    return points


def elasticity(points: List[SensitivityPoint], scheme: str) -> float:
    """Relative cycle change per relative parameter change between the
    sweep's endpoints — a single sensitivity number per scheme.

    0 means the scheme does not care about this parameter; negative
    means more of it helps.
    """
    mine = [p for p in points if p.scheme == scheme]
    if len(mine) < 2:
        raise ValueError("need at least two points for an elasticity")
    first, last = mine[0], mine[-1]
    dv = (float(last.value) - float(first.value)) / float(first.value)
    dc = (last.cycles - first.cycles) / first.cycles
    if dv == 0:
        raise ValueError("parameter endpoints are equal")
    return dc / dv
