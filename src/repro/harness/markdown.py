"""Markdown rendering of experiment results.

``measured_report()`` regenerates a paper-vs-measured document from live
runs — the executable counterpart of EXPERIMENTS.md. Sections are
individually requestable so quick runs stay quick.
"""

from __future__ import annotations

import statistics
from typing import Iterable, List, Optional, Sequence


def md_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """GitHub-flavoured markdown table."""
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    sep = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(str(c) for c in row) + " |" for row in rows]
    return "\n".join([head, sep] + body)


def _pct(x: float) -> str:
    return f"{100 * x:+.1f}%"


def section_table2() -> str:
    from repro.hwcost.synthesis import table2
    report = table2()
    rows = [[k] + v for k, v in report.rows().items()]
    return ("## Table II — hardware overheads\n\n"
            + md_table(["parameter", "Basic MIPS", "Reunion", "UnSync"],
                       rows))


def section_table3() -> str:
    from repro.hwcost.die import table3
    rows = []
    for proj in table3():
        p = proj.processor
        rows.append([p.name, p.n_cores,
                     f"{proj.reunion_die_mm2:.2f}",
                     f"{proj.unsync_die_mm2:.2f}",
                     f"{proj.difference_mm2:.2f}"])
    return ("## Table III — projected die sizes\n\n"
            + md_table(["processor", "cores", "Reunion die (mm²)",
                        "UnSync die (mm²)", "difference"], rows))


def section_fig4(benchmarks: Optional[Sequence[str]] = None) -> str:
    from repro.harness.experiments import FIG4_DEFAULT, fig4_serializing
    rows = fig4_serializing(benchmarks=benchmarks or FIG4_DEFAULT)
    body = md_table(
        ["benchmark", "serializing %", "Reunion overhead",
         "UnSync overhead"],
        [(r.benchmark, f"{100 * r.serializing_pct:.2f}",
          _pct(r.reunion_overhead), _pct(r.unsync_overhead))
         for r in rows])
    avg_r = statistics.mean(r.reunion_overhead for r in rows)
    avg_u = statistics.mean(r.unsync_overhead for r in rows)
    return (f"## Figure 4 — serializing-instruction overhead\n\n{body}\n\n"
            f"Average: Reunion {_pct(avg_r)}, UnSync {_pct(avg_u)} "
            f"(paper: ~+8%, ~+2%).")


def section_roec() -> str:
    from repro.harness.experiments import roec_coverage
    rows = roec_coverage()
    return ("## Sec VI-D — region of error coverage\n\n"
            + md_table(["architecture", "accounting", "coverage"],
                       [(r.architecture, r.accounting,
                         f"{100 * r.coverage:.1f}%") for r in rows]))


SECTIONS = {
    "table2": section_table2,
    "table3": section_table3,
    "fig4": section_fig4,
    "roec": section_roec,
}


def measured_report(sections: Optional[Sequence[str]] = None) -> str:
    """Assemble the measured-results markdown document."""
    chosen = list(sections) if sections else list(SECTIONS)
    unknown = [s for s in chosen if s not in SECTIONS]
    if unknown:
        raise ValueError(f"unknown section(s): {', '.join(unknown)} "
                         f"(known: {', '.join(SECTIONS)})")
    parts = ["# Measured results (regenerated)\n",
             "Produced by `python -m repro report`; compare against "
             "EXPERIMENTS.md.\n"]
    for name in chosen:
        parts.append(SECTIONS[name]())
        parts.append("")
    return "\n".join(parts)
