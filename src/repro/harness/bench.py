"""Simulator-throughput benchmark harness (``repro bench``).

The paper's evaluation is thousands of seeded injection runs, so the
figure-of-merit for the *reproduction* itself is simulator throughput:
how many simulated instructions and cycles per wall-clock second each
layer of the stack sustains. This module runs a fixed set of seeded
scenarios — the golden interpreter, the out-of-order baseline core, the
UnSync and Reunion pairs, and a serial campaign smoke — and writes the
measurements to ``BENCH_pipeline.json`` at the repo root so the perf
trajectory accumulates across PRs.

Every scenario is deterministic (fixed workloads, fixed seeds); only the
wall-clock varies. Regression checking therefore supports two modes:

* **relative** (default): each scenario's throughput is normalised by
  the golden-interpreter throughput measured *in the same run*, which
  cancels machine speed and makes the check meaningful on CI runners of
  unknown horsepower;
* **absolute**: raw instr/sec comparison, for before/after runs on the
  same machine (the numbers quoted in EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

#: schema version of BENCH_pipeline.json
SCHEMA = 1

#: scenario used as the machine-speed yardstick in relative checks
REFERENCE_SCENARIO = "golden"


class BenchBaselineError(ValueError):
    """The baseline report cannot support the requested regression check
    (missing file content, wrong shape, or disjoint scenario sets). The
    message is actionable — the CLI prints it without a traceback."""


@dataclass(frozen=True)
class BenchResult:
    """One scenario's measurement (best of ``repeats`` runs)."""

    scenario: str
    instructions: int
    cycles: int
    seconds: float
    repeats: int
    #: wall time of every repeat, in round order. Repeats are interleaved
    #: round-robin across scenarios, so round i of two scenarios ran
    #: adjacently — per-round ratios cancel machine-load drift.
    round_seconds: Tuple[float, ...] = ()

    @property
    def instr_per_sec(self) -> float:
        return self.instructions / self.seconds if self.seconds else 0.0

    @property
    def cycles_per_sec(self) -> float:
        return self.cycles / self.seconds if self.seconds else 0.0

    def to_record(self) -> Dict:
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "seconds": round(self.seconds, 6),
            "repeats": self.repeats,
            "round_seconds": [round(s, 6) for s in self.round_seconds],
            "instr_per_sec": round(self.instr_per_sec, 1),
            "cycles_per_sec": round(self.cycles_per_sec, 1),
        }


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------
def _sc_golden(quick: bool) -> Callable[[], Tuple[int, int]]:
    from repro.isa import golden
    from repro.workloads import load_workload
    program = load_workload("fibonacci" if quick else "bzip2")
    # the interpreter finishes bzip2 in ~10 ms — too short to time
    # against OS jitter, and golden is the regression check's yardstick.
    # Loop it so the timed region is comparable to the pair scenarios.
    reps = 1 if quick else 8

    def run() -> Tuple[int, int]:
        total = 0
        for _ in range(reps):
            res = golden.run(program, max_instructions=2_000_000)
            total += res.instructions
        return total, 0
    return run


def _sc_baseline(quick: bool) -> Callable[[], Tuple[int, int]]:
    from repro.core import Core
    from repro.workloads import load_workload
    program = load_workload("fibonacci" if quick else "bzip2")

    def run() -> Tuple[int, int]:
        res = Core(program).run(max_cycles=4_000_000)
        return res.instructions, res.cycles
    return run


def _sc_pair(scheme: str, quick: bool) -> Callable[[], Tuple[int, int]]:
    from repro.harness.runner import run_scheme
    from repro.workloads import load_workload
    program = load_workload("fibonacci" if quick else "bzip2")

    def run() -> Tuple[int, int]:
        res = run_scheme(scheme, program)
        # a pair steps two pipelines per wall-clock cycle; count both so
        # cycles/sec reflects simulated core-cycles of work
        return res.instructions, 2 * res.cycles
    return run


def _sc_telemetry(quick: bool) -> Callable[[], Tuple[int, int]]:
    """The unsync-pair scenario with full telemetry *enabled* — its gap
    to `unsync-pair` is the telemetry-on overhead, and `unsync-pair`
    against the committed baseline is the telemetry-off gate."""
    from repro.harness.runner import run_scheme
    from repro.telemetry import Telemetry
    from repro.workloads import load_workload
    program = load_workload("fibonacci" if quick else "bzip2")

    def run() -> Tuple[int, int]:
        res = run_scheme("unsync", program, telemetry=Telemetry())
        return res.instructions, 2 * res.cycles
    return run


def _sc_campaign(quick: bool) -> Callable[[], Tuple[int, int]]:
    from repro.campaign.spec import TrialSpec
    from repro.campaign.trial import run_trial
    trials = 3 if quick else 8

    def run() -> Tuple[int, int]:
        instructions = cycles = 0
        for seed in range(trials):
            spec = TrialSpec(scheme="unsync", workload="fibonacci",
                             ser=0.005, seed=seed)
            res = run_trial(spec)
            instructions += res.instructions
            cycles += 2 * res.cycles
        return instructions, cycles
    return run


def _sc_campaign_differential(quick: bool) -> Callable[[], Tuple[int, int]]:
    """Differential-replay trial throughput on a late-injection grid.

    Paper-scale SERs put the first strike past the kernel's fault-free
    completion for most seeds, so differential mode serves the cached
    prefix verdict instead of re-simulating — the gap between this
    scenario and ``campaign-smoke`` (scaled by the trial counts and
    strike profiles) is the differential-replay win the EXPERIMENTS
    table quotes. The prefix cache is warmed in the factory, outside the
    timed region, mirroring the other scenarios' workload assembly.
    """
    from repro.campaign.snapshot import CACHE, run_trial_differential
    from repro.campaign.spec import TrialSpec
    trials = 6 if quick else 24

    def spec_for(seed: int) -> TrialSpec:
        return TrialSpec(scheme="unsync", workload="fibonacci",
                         ser=1e-6, seed=seed)

    CACHE.clear()
    run_trial_differential(spec_for(0))  # build the prefix ring once

    def run() -> Tuple[int, int]:
        instructions = cycles = 0
        for seed in range(trials):
            res = run_trial_differential(spec_for(seed))
            instructions += res.instructions
            cycles += 2 * res.cycles
        return instructions, cycles
    return run


#: name -> factory(quick) -> zero-arg runner returning (instructions, cycles)
SCENARIOS: Dict[str, Callable[[bool], Callable[[], Tuple[int, int]]]] = {
    "golden": _sc_golden,
    "baseline-core": _sc_baseline,
    "unsync-pair": lambda quick: _sc_pair("unsync", quick),
    "reunion-pair": lambda quick: _sc_pair("reunion", quick),
    "telemetry-pair": _sc_telemetry,
    "campaign-smoke": _sc_campaign,
    "campaign-differential": _sc_campaign_differential,
}


def run_bench(scenarios: Optional[List[str]] = None,
              quick: bool = False,
              repeat: Optional[int] = None) -> List[BenchResult]:
    """Run the selected scenarios; best-of-``repeat`` wall time each.

    Workload assembly happens inside the factory, *before* the timed
    region, so the numbers measure simulation throughput only. Repeats
    are *interleaved* round-robin across scenarios (not run
    back-to-back), so slow machine-load drift hits every scenario
    equally and the golden-relative regression index stays stable on
    busy runners.
    """
    names = list(scenarios) if scenarios else list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenario(s) {', '.join(unknown)} "
                         f"(known: {', '.join(SCENARIOS)})")
    repeats = repeat if repeat is not None else (1 if quick else 3)
    runners = {name: SCENARIOS[name](quick) for name in names}
    best: Dict[str, Tuple[float, int, int]] = {}
    rounds: Dict[str, List[float]] = {name: [] for name in names}
    for _ in range(repeats):
        for name in names:
            t0 = time.perf_counter()
            instructions, cycles = runners[name]()
            dt = time.perf_counter() - t0
            rounds[name].append(dt)
            if name not in best or dt < best[name][0]:
                best[name] = (dt, instructions, cycles)
    return [BenchResult(scenario=name, instructions=best[name][1],
                        cycles=best[name][2], seconds=best[name][0],
                        repeats=repeats,
                        round_seconds=tuple(rounds[name]))
            for name in names]


# ---------------------------------------------------------------------------
# report I/O
# ---------------------------------------------------------------------------
def to_report(results: List[BenchResult], quick: bool) -> Dict:
    return {
        "schema": SCHEMA,
        "quick": quick,
        "scenarios": {r.scenario: r.to_record() for r in results},
    }


def write_report(results: List[BenchResult], path: str,
                 quick: bool = False) -> Dict:
    report = to_report(results, quick)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def load_report(path: str) -> Dict:
    with open(path) as fh:
        try:
            report = json.load(fh)
        except json.JSONDecodeError as exc:
            raise BenchBaselineError(
                f"{path}: not valid JSON ({exc}); regenerate it with "
                f"`python -m repro bench --out {path}`")
    if not isinstance(report, dict) or "scenarios" not in report:
        raise BenchBaselineError(
            f"{path}: not a bench report (no 'scenarios' key); regenerate "
            f"it with `python -m repro bench --out {path}`")
    return report


# ---------------------------------------------------------------------------
# regression checking
# ---------------------------------------------------------------------------
def _relative_index(scenarios: Dict[str, Dict]) -> Dict[str, float]:
    """Throughput of each scenario as a multiple of the golden
    interpreter's in the same report (machine-speed independent).

    When both sides carry per-round timings (interleaved repeats), the
    index is the *median of per-round ratios*: round *i* of a scenario
    and of golden ran back-to-back, so their ratio cancels machine-load
    drift that a best-of/best-of quotient would inherit. Reports from
    before round timing existed fall back to the aggregate quotient.
    """
    ref = scenarios.get(REFERENCE_SCENARIO, {})
    if not ref.get("instr_per_sec"):
        raise BenchBaselineError(
            f"reference scenario {REFERENCE_SCENARIO!r} missing from report; "
            f"cannot run a relative regression check (include it in "
            f"--scenarios, or pass --absolute)")
    ref_rounds = ref.get("round_seconds") or []
    out: Dict[str, float] = {}
    for name, rec in scenarios.items():
        if name == REFERENCE_SCENARIO:
            continue
        rounds = rec.get("round_seconds") or []
        if ref_rounds and len(rounds) == len(ref_rounds):
            ratios = [(rec["instructions"] / ts) / (ref["instructions"] / tg)
                      for ts, tg in zip(rounds, ref_rounds)
                      if ts > 0 and tg > 0]
            if ratios:
                out[name] = statistics.median(ratios)
                continue
        out[name] = rec["instr_per_sec"] / ref["instr_per_sec"]
    return out


def check_regression(current: Dict, baseline: Dict,
                     max_regression: float = 0.25,
                     absolute: bool = False) -> List[str]:
    """Compare a fresh report against a committed baseline.

    Returns a list of human-readable failures (empty = pass). Scenarios
    present in only one report are skipped — the committed baseline may
    trail a newly added scenario by one PR — but *zero* overlap raises
    :class:`BenchBaselineError`: a check that compares nothing would
    otherwise report success.
    """
    failures: List[str] = []
    cur, base = current["scenarios"], baseline["scenarios"]
    if absolute:
        cur_m = {n: r["instr_per_sec"] for n, r in cur.items()}
        base_m = {n: r["instr_per_sec"] for n, r in base.items()}
        unit = "instr/sec"
    else:
        cur_m, base_m = _relative_index(cur), _relative_index(base)
        unit = "x golden throughput"
    if not set(cur_m) & set(base_m):
        raise BenchBaselineError(
            f"baseline has no scenarios comparable with this run "
            f"(baseline: {sorted(base_m)}; run: {sorted(cur_m)}; the "
            f"{REFERENCE_SCENARIO!r} reference is excluded in relative "
            f"mode); regenerate the baseline with "
            f"`python -m repro bench --out BENCH_pipeline.json`")
    for name in sorted(set(cur_m) & set(base_m)):
        was, now = base_m[name], cur_m[name]
        if was <= 0:
            continue
        drop = 1.0 - now / was
        if drop > max_regression:
            failures.append(
                f"{name}: {now:.3g} {unit} vs baseline {was:.3g} "
                f"({100 * drop:.1f}% regression > "
                f"{100 * max_regression:.0f}% allowed)")
    return failures
