"""Fixed-width table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render a fixed-width ASCII table (benchmark output format)."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence],
                title: str = "") -> None:
    print(format_table(headers, rows, title))


def pct(x: float) -> str:
    """Format a ratio as a signed percentage."""
    return f"{100 * x:+.1f}%"
