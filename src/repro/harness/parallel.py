"""Parallel sweep execution.

The figure sweeps are embarrassingly parallel — every (scheme, workload,
parameters) cell is an independent deterministic simulation. This module
fans a job grid across a process pool, the standard scientific-Python
recipe for CPU-bound sweeps (each worker re-imports the library; jobs
are described by picklable specs, results come back as plain dicts).

    from repro.harness.parallel import JobSpec, run_grid

    jobs = [JobSpec(scheme=s, benchmark=b)
            for s in ("baseline", "unsync", "reunion")
            for b in ("bzip2", "gzip", "sha")]
    results = run_grid(jobs, workers=4)

Determinism is preserved: a grid run and a serial run produce identical
numbers (tests pin this).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class JobSpec:
    """One simulation cell. Must stay picklable (strings and numbers)."""

    scheme: str
    benchmark: str
    #: Reunion knobs (ignored by other schemes)
    fingerprint_interval: Optional[int] = None
    comparison_latency: Optional[int] = None
    #: UnSync knob
    cb_entries: Optional[int] = None

    def key(self) -> Tuple:
        return (self.scheme, self.benchmark, self.fingerprint_interval,
                self.comparison_latency, self.cb_entries)


@dataclass
class JobResult:
    """Flattened result of one cell (picklable)."""

    spec: JobSpec
    cycles: int
    instructions: int
    ipc: float
    extra: Dict[str, float] = field(default_factory=dict)


class GridJobError(RuntimeError):
    """A grid cell failed its initial run *and* its retry.

    Carries the failing :class:`JobSpec` (``.spec``) so callers can tell
    which cell of a large sweep died instead of losing the whole grid to
    an anonymous traceback.
    """

    def __init__(self, spec: JobSpec, cause: BaseException) -> None:
        super().__init__(f"grid job {spec} failed twice: {cause!r}")
        self.spec = spec
        self.cause = cause


def _run_one(spec: JobSpec) -> JobResult:
    """Worker entry point (top-level so it pickles)."""
    from repro.harness.runner import run_scheme
    from repro.reunion.check_stage import ReunionParams
    from repro.unsync.system import UnSyncConfig
    from repro.workloads import load_benchmark

    program = load_benchmark(spec.benchmark)
    kwargs = {}
    if spec.scheme == "reunion" and (spec.fingerprint_interval
                                     or spec.comparison_latency):
        kwargs["reunion_params"] = ReunionParams(
            fingerprint_interval=spec.fingerprint_interval or 10,
            comparison_latency=spec.comparison_latency or 6)
    if spec.scheme == "unsync" and spec.cb_entries:
        kwargs["unsync_config"] = UnSyncConfig(cb_entries=spec.cb_entries)
    res = run_scheme(spec.scheme, program, **kwargs)
    return JobResult(spec=spec, cycles=res.cycles,
                     instructions=res.instructions, ipc=res.ipc,
                     extra=dict(res.extra))


def _retry_one(job: JobSpec, first_error: BaseException) -> JobResult:
    """One in-process retry before giving up on a cell."""
    try:
        return _run_one(job)
    except Exception as exc:
        raise GridJobError(job, exc) from first_error


def run_grid(jobs: List[JobSpec],
             workers: Optional[int] = None) -> List[JobResult]:
    """Run all jobs; order of results matches the order of jobs.

    ``workers=0`` or ``1`` runs serially in-process (useful under
    debuggers and on single-CPU boxes); otherwise a process pool of
    ``workers`` (default: CPU count, capped by the job count).

    Jobs are submitted individually — one crashing worker no longer
    aborts the whole grid as ``pool.map`` would. A failed job is retried
    once in-process; if it fails again, :class:`GridJobError` surfaces
    with the offending spec attached.
    """
    if not jobs:
        return []
    if workers is None:
        workers = min(len(jobs), os.cpu_count() or 1)
    if workers <= 1:
        results = []
        for job in jobs:
            try:
                results.append(_run_one(job))
            except Exception as exc:
                results.append(_retry_one(job, exc))
        return results
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_run_one, job) for job in jobs]
        results = []
        for job, future in zip(jobs, futures):
            try:
                results.append(future.result())
            except Exception as exc:
                results.append(_retry_one(job, exc))
        return results
