"""ASCII charts for experiment output.

The CLI and benches print the paper's figures as tables; these helpers
add quick visual shapes — horizontal bar charts for Figure 4-style
per-benchmark comparisons and multi-series line charts for Figure 5/6
sweeps — with no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def bar_chart(labels: Sequence[str], values: Sequence[float],
              title: str = "", width: int = 50,
              fmt: str = "{:+.1%}") -> str:
    """Horizontal bar chart; handles mixed-sign values."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(no data)"
    label_w = max(len(l) for l in labels)
    biggest = max(abs(v) for v in values) or 1.0
    lines = [title] if title else []
    for label, value in zip(labels, values):
        n = round(abs(value) / biggest * width)
        bar = "#" * n
        lines.append(f"{label:>{label_w}} | {bar:<{width}} {fmt.format(value)}")
    return "\n".join(lines)


def line_chart(series: Dict[str, List[Tuple[float, float]]],
               title: str = "", width: int = 60, height: int = 16,
               x_label: str = "", y_label: str = "") -> str:
    """Multi-series scatter/line chart on a character grid.

    ``series``: name -> [(x, y)] — each series gets its own marker.
    """
    markers = "*o+x@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, ch: str) -> None:
        col = round((x - x0) / (x1 - x0) * (width - 1))
        row = height - 1 - round((y - y0) / (y1 - y0) * (height - 1))
        grid[row][col] = ch

    legend = []
    for (name, pts), marker in zip(series.items(), markers):
        legend.append(f"{marker} {name}")
        for x, y in pts:
            place(x, y, marker)

    lines = [title] if title else []
    lines.append(f"{y1:>10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y0:>10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(f"{'':12}{x0:<10.3g}{x_label:^{max(0, width - 20)}}"
                 f"{x1:>10.3g}")
    lines.append("  legend: " + "   ".join(legend))
    return "\n".join(lines)
