"""Soft-error substrate: SER math, strike injection, and detection models.

The paper's threat model is single-event upsets in *sequential* elements
(Sec III-B-1, citing AVF work: storage cells are the dominant vulnerability).
This package provides:

* :mod:`repro.faults.ser` — FIT-rate arithmetic, technology-node scaling,
  and conversion to per-instruction / per-cycle strike probabilities
  (the Sec VI-C sweep runs on these).
* :mod:`repro.faults.injector` — Poisson-process strike scheduling over a
  weighted inventory of microarchitectural blocks.
* :mod:`repro.faults.detection` — behaviourally-accurate models of 1-bit
  parity, DMR, and SECDED: what each catches, what it misses, and what it
  costs in latency.
* :mod:`repro.faults.events` — fault-event records and outcome taxonomy
  (masked / detected / silent data corruption).
"""

from repro.faults.ser import (
    SERModel, fit_to_per_cycle, fit_to_per_instruction, scale_fit,
    PAPER_SER_90NM_PER_INSTRUCTION, BREAK_EVEN_SER,
)
from repro.faults.injector import FaultInjector, Strike, BlockInventory, BLOCKS
from repro.faults.detection import (
    Detector, ParityDetector, DMRDetector, SECDEDDetector, NoDetector,
)
from repro.faults.events import FaultEvent, Outcome, TRIAL_OUTCOMES
from repro.faults.adversarial import (
    ADVERSARIAL_MODEL, AdversarialConfig, AdversarialInjector,
    FAULT_MODELS, STANDARD_MODEL, adversarial_injector,
)

__all__ = [
    "SERModel", "fit_to_per_cycle", "fit_to_per_instruction", "scale_fit",
    "PAPER_SER_90NM_PER_INSTRUCTION", "BREAK_EVEN_SER",
    "FaultInjector", "Strike", "BlockInventory", "BLOCKS",
    "Detector", "ParityDetector", "DMRDetector", "SECDEDDetector",
    "NoDetector",
    "FaultEvent", "Outcome", "TRIAL_OUTCOMES",
    "ADVERSARIAL_MODEL", "AdversarialConfig", "AdversarialInjector",
    "FAULT_MODELS", "STANDARD_MODEL", "adversarial_injector",
]
