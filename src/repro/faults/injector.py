"""Strike injection: where and when particles hit.

The injector does two jobs:

* **When** — strikes arrive as a Poisson process with a per-cycle (or
  per-instruction) rate from :mod:`repro.faults.ser`.
* **Where** — a strike lands in one sequential block with probability
  proportional to that block's bit count ("the probability of an energy
  particle strike is uniform throughout the processor core", Sec III-B-1),
  then in a uniformly random bit of the block.

The block inventory is also the substrate of the Sec VI-D ROEC analysis:
each block is annotated with which detector protects it under each
architecture, so coverage is a weighted sum over the same inventory that
drives injection.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.detection import (
    Detector, DMRDetector, NoDetector, ParityDetector, SECDEDDetector,
)


@dataclass(frozen=True)
class Block:
    """One sequential element of the core, sized in storage bits."""

    name: str
    bits: int
    #: True for pipeline-resident state that only exists pre-commit
    #: (covered by Reunion's fingerprint); False for architectural /
    #: long-lived storage.
    pre_commit: bool


#: Sequential-state inventory of one Table I core. Bit counts follow the
#: structure sizes of Table I and CoreConfig defaults. The L1 caches
#: dominate, which is exactly why including the L1 in the region of error
#: coverage (UnSync does, Reunion delegates it to ECC) matters.
BLOCKS: Tuple[Block, ...] = (
    Block("regfile", 32 * 32, pre_commit=False),
    Block("pc", 32, pre_commit=True),
    Block("pipeline_regs", 4 * 4 * 128, pre_commit=True),   # 4 stages x 4-wide
    Block("rob", 80 * 72, pre_commit=True),
    Block("iq", 64 * 40, pre_commit=True),
    Block("lsq", 32 * 72, pre_commit=True),
    Block("itlb", 48 * 52, pre_commit=False),
    Block("dtlb", 64 * 52, pre_commit=False),
    Block("l1i_data", 32 * 1024 * 8, pre_commit=False),
    Block("l1d_data", 32 * 1024 * 8, pre_commit=False),
)

#: Detector assignment per architecture (Sec III-B-1 for UnSync; Sec IV /
#: VI-D for Reunion). ``fingerprint`` marks Reunion's comparison-based
#: coverage, which is not a :class:`Detector` (it is an end-to-end output
#: check) — the ROEC analysis treats it as covering pre-commit blocks only.
UNSYNC_DETECTORS: Dict[str, Detector] = {
    "regfile": ParityDetector(),
    "pc": DMRDetector(),
    "pipeline_regs": DMRDetector(),
    "rob": ParityDetector(),
    "iq": ParityDetector(),
    "lsq": ParityDetector(),
    "itlb": ParityDetector(),
    "dtlb": ParityDetector(),
    "l1i_data": ParityDetector(),
    "l1d_data": ParityDetector(),
    # uncore structures, reachable only under the adversarial inventory
    # (repro.faults.adversarial): CB entries carry parity like the other
    # FIFOs; the EIH pending queue and the in-flight recovery copy are
    # handled specially by UnSyncSystem (a lost interrupt cannot be
    # "detected" by the thing that lost it).
    "cb": ParityDetector(),
}

REUNION_DETECTORS: Dict[str, Detector] = {
    # fingerprint comparison covers the pre-commit pipeline; architectural
    # storage inside the core is unprotected, the L1 gets SECDED.
    "regfile": NoDetector(),
    "pc": NoDetector(),
    "pipeline_regs": NoDetector(),   # covered by fingerprint, see pre_commit
    "rob": NoDetector(),
    "iq": NoDetector(),
    "lsq": NoDetector(),
    "itlb": NoDetector(),
    "dtlb": NoDetector(),
    "l1i_data": SECDEDDetector(),
    "l1d_data": SECDEDDetector(),
}


@dataclass(frozen=True)
class Strike:
    """One scheduled particle strike.

    ``flipped_bits`` is the upset cluster size within one protected word
    (1 for the classic single-event upset; even values defeat 1-bit
    parity). ``core`` pins the struck core explicitly; ``None`` keeps the
    legacy derivation (``bit % 2``) so existing stores stay reproducible.
    """

    cycle: int
    block: str
    bit: int
    flipped_bits: int = 1
    core: Optional[int] = None

    def core_id(self) -> int:
        return self.core if self.core is not None else self.bit % 2


class BlockInventory:
    """A weighted set of blocks with coverage queries."""

    def __init__(self, blocks: Sequence[Block] = BLOCKS) -> None:
        if not blocks:
            raise ValueError("empty inventory")
        self.blocks = tuple(blocks)
        self.total_bits = sum(b.bits for b in self.blocks)
        self._by_name = {b.name: b for b in self.blocks}

    def __iter__(self):
        return iter(self.blocks)

    def get(self, name: str) -> Block:
        return self._by_name[name]

    def weights(self) -> List[float]:
        return [b.bits / self.total_bits for b in self.blocks]

    def coverage(self, detectors: Dict[str, Detector],
                 fingerprint_pre_commit: bool = False,
                 flipped_bits: int = 1) -> float:
        """Fraction of sequential-state bits on which a ``flipped_bits``-bit
        upset is detected.

        ``fingerprint_pre_commit=True`` additionally counts every
        ``pre_commit`` block as covered (Reunion's output comparison).
        """
        covered = 0
        for b in self.blocks:
            det = detectors.get(b.name, NoDetector())
            hit = det.check(flipped_bits).detected or det.check(flipped_bits).corrected
            if hit or (fingerprint_pre_commit and b.pre_commit):
                covered += b.bits
        return covered / self.total_bits


class FaultInjector:
    """Poisson strike scheduler over a :class:`BlockInventory`."""

    def __init__(self, per_cycle_rate: float,
                 inventory: Optional[BlockInventory] = None,
                 seed: int = 0) -> None:
        if per_cycle_rate < 0:
            raise ValueError("rate must be non-negative")
        self.rate = per_cycle_rate
        self.inventory = inventory or BlockInventory()
        self._rng = random.Random(seed)
        self._names = [b.name for b in self.inventory]
        self._weights = [b.bits for b in self.inventory]

    def next_interval(self) -> float:
        """Cycles until the next strike (exponential; inf at rate 0)."""
        if self.rate == 0:
            return math.inf
        return self._rng.expovariate(self.rate)

    def schedule(self, horizon_cycles: int) -> List[Strike]:
        """All strikes strictly before ``horizon_cycles``.

        A zero rate (or empty horizon) yields an empty schedule without
        touching the RNG or doing float-infinity arithmetic, and no
        returned strike ever lands at or beyond the horizon.
        """
        strikes: List[Strike] = []
        if self.rate == 0 or horizon_cycles <= 0:
            return strikes
        t = 0.0
        while True:
            t += self.next_interval()
            cycle = int(t)
            if cycle >= horizon_cycles:
                break
            strikes.append(self.strike_at(cycle))
        return strikes

    def strike_at(self, cycle: int) -> Strike:
        """A strike at ``cycle`` in a bit chosen by area weighting."""
        name = self._rng.choices(self._names, weights=self._weights, k=1)[0]
        bit = self._rng.randrange(self.inventory.get(name).bits)
        return Strike(cycle=cycle, block=name, bit=bit)

    # -- simulator-facing scheduling ----------------------------------------
    def next_strike(self, now: int) -> Optional[Strike]:
        """The next strike after cycle ``now`` (``None`` at rate 0).

        This is the hook the pair simulators arm strikes through; the
        base implementation reproduces the historical draw sequence
        (interval, block, bit) exactly, so standard campaign stores stay
        byte-identical. Subclasses may return queued correlated strikes.
        """
        interval = self.next_interval()
        if interval == math.inf:
            return None
        return self.strike_at(now + max(1, int(interval)))

    def on_recovery(self, now: int, duration_cycles: int) -> None:
        """Notification that a recovery/rollback episode began at ``now``
        and is budgeted ``duration_cycles``. The base injector ignores it;
        the adversarial injector uses it to chase recoveries with strikes
        inside the vulnerability window."""

    def preempt(self, armed: Optional[Strike]) -> Optional[Strike]:
        """Re-arm after :meth:`on_recovery` may have queued new strikes.

        The simulators cache one pre-drawn strike; a correlated strike
        queued *after* that draw (a recovery chaser) must preempt it or
        it would be delivered late, outside the window it was aimed at.
        The base injector never queues, so the armed strike stands.
        """
        return armed
