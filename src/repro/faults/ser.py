"""Soft-error-rate arithmetic.

The paper (Sec VI-C) derives its operating point like this: take the
published SERs at 180 nm (1,000 FIT) and 130 nm (100,000 FIT), extrapolate
the exponential ratio one more node to 90 nm, observe (from iRoc data) that
SER saturates at 65 nm and beyond, and convert to a *per-instruction*
upset probability of ``2.89e-17`` at 90 nm. It then sweeps the
per-instruction SER from 1e-7 down to 1e-17 and reports that neither
architecture's IPC moves, and computes a hypothetical *break-even* SER of
``1.29e-3`` at which UnSync's recovery cost would eat its error-free
advantage over Reunion.

This module reproduces that arithmetic as first-class functions so the
sweep in ``benchmarks/test_ser_sweep.py`` is driven by the same numbers.

FIT = failures per 10^9 device-hours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Published anchor points used by the paper.
FIT_180NM = 1_000.0
FIT_130NM = 100_000.0

#: Paper's adopted per-instruction SER at the 90 nm node (Sec VI-C, [41]).
PAPER_SER_90NM_PER_INSTRUCTION = 2.89e-17

#: Paper's hypothetical break-even SER (per instruction) at which Reunion
#: and UnSync deliver equal performance.
BREAK_EVEN_SER = 1.29e-3

HOURS_TO_SECONDS = 3600.0
FIT_HOURS = 1e9


def scale_fit(fit_at_prev: float, ratio: float = FIT_130NM / FIT_180NM) -> float:
    """One technology-node step of the exponential SER trend.

    ``ratio`` defaults to the 180->130 nm jump (x100) that the paper
    extrapolates from; the saturation at <=65 nm is a *caller* decision
    (see :class:`SERModel`).
    """
    return fit_at_prev * ratio


def fit_to_per_cycle(fit: float, frequency_hz: float) -> float:
    """Convert a FIT rate into a per-clock-cycle upset probability."""
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    upsets_per_second = fit / (FIT_HOURS * HOURS_TO_SECONDS)
    return upsets_per_second / frequency_hz


def fit_to_per_instruction(fit: float, frequency_hz: float, ipc: float) -> float:
    """Convert a FIT rate into a per-retired-instruction upset probability."""
    if ipc <= 0:
        raise ValueError("ipc must be positive")
    return fit_to_per_cycle(fit, frequency_hz) / ipc


@dataclass(frozen=True)
class SERModel:
    """Per-instruction strike probability with the paper's node trend.

    >>> m = SERModel.at_node(90)
    >>> 0 < m.per_instruction < 1
    True
    """

    per_instruction: float

    #: nodes at which the exponential trend applies; below, SER saturates.
    _TREND_NODES = (180, 130, 90)

    @classmethod
    def at_node(cls, node_nm: int, frequency_hz: float = 2e9,
                ipc: float = 1.0) -> "SERModel":
        """Model for a technology node following the paper's extrapolation.

        180 nm and 130 nm use the published FITs; 90 nm extrapolates the
        exponential ratio; 65 nm and below saturate at the 90 nm value
        (the iRoc observation the paper cites).
        """
        if node_nm >= 180:
            fit = FIT_180NM
        elif node_nm >= 130:
            fit = FIT_130NM
        else:
            fit = scale_fit(FIT_130NM)  # 90 nm extrapolation
        per_ins = fit_to_per_instruction(fit, frequency_hz, ipc)
        if node_nm <= 65:
            # saturation: clamp to the 90 nm value
            per_ins = min(per_ins, fit_to_per_instruction(
                scale_fit(FIT_130NM), frequency_hz, ipc))
        return cls(per_instruction=per_ins)

    def per_cycle(self, ipc: float = 1.0) -> float:
        """Per-clock-cycle strike probability at a given IPC.

        :class:`repro.faults.injector.FaultInjector` takes its rate per
        cycle, so this is the bridge from the paper's per-instruction
        operating points to the injector (and the campaign engine's
        ``--node`` option).
        """
        if ipc <= 0:
            raise ValueError("ipc must be positive")
        return self.per_instruction * ipc

    def errors_expected(self, instructions: int) -> float:
        """Expected strike count over ``instructions`` retirements."""
        return self.per_instruction * instructions

    def probability_of_at_least_one(self, instructions: int) -> float:
        """P[>=1 strike] over a run, via the Poisson approximation."""
        lam = self.errors_expected(instructions)
        return 1.0 - math.exp(-lam)

    def mean_instructions_between_errors(self) -> float:
        if self.per_instruction <= 0:
            return math.inf
        return 1.0 / self.per_instruction


def break_even_ser(error_free_advantage_cycles: float,
                   recovery_penalty_cycles: float) -> float:
    """Per-instruction SER at which a recovery-heavy scheme's advantage
    vanishes.

    UnSync wins ``error_free_advantage_cycles`` per instruction during
    error-free execution but pays ``recovery_penalty_cycles`` per error
    beyond what Reunion pays. The break-even SER is where the expected
    per-instruction recovery cost equals the advantage::

        SER * recovery_penalty = advantage
    """
    if recovery_penalty_cycles <= 0:
        raise ValueError("recovery penalty must be positive")
    if error_free_advantage_cycles <= 0:
        return 0.0
    return error_free_advantage_cycles / recovery_penalty_cycles
