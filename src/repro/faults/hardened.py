"""Future-work detector variants (paper Sec VIII).

"Since our architecture framework is independent of the underlying
architecture within the core, more efficient hardware detection
techniques (multi-bit correction for cache blocks, hardened pipeline
registers, efficient register file protection, etc.) can be implemented.
Our architecture and its working are unaffected by such modifications."

This module implements the three named upgrades as drop-in
:class:`~repro.faults.detection.Detector` replacements, plus the builder
that swaps them into UnSync's detector map. The hwcost model prices them
(see ``repro.hwcost.components``), and the ablation bench plots the
coverage-vs-area trade-off they buy.
"""

from __future__ import annotations

from typing import Dict

from repro.faults.detection import (
    DetectionResult, Detector, DMRDetector, ParityDetector,
)
from repro.faults.injector import UNSYNC_DETECTORS


class DECTEDDetector(Detector):
    """Double-error-correct / triple-error-detect ECC for cache blocks.

    The "multi-bit correction for cache blocks" upgrade: corrects up to 2
    flipped bits in place, detects 3; 4+ may alias (modelled as
    undetected, conservatively). Costs roughly double the SECDED codec.
    """

    name = "dected"
    detection_latency = 3          # wider codec, deeper XOR tree
    area_overhead = 0.45           # ~2x SECDED's 22%
    power_overhead = 0.20

    def check(self, flipped_bits: int) -> DetectionResult:
        if flipped_bits <= 0:
            return DetectionResult(False, False, 0)
        if flipped_bits <= 2:
            return DetectionResult(detected=True, corrected=True,
                                   latency_cycles=self.detection_latency)
        if flipped_bits == 3:
            return DetectionResult(detected=True, corrected=False,
                                   latency_cycles=self.detection_latency)
        return DetectionResult(False, False, 0)


class TMRLatchDetector(Detector):
    """Hardened (triplicated, majority-voted) pipeline latch.

    Detects *and corrects* any single-copy upset in the same cycle — a
    recovery-free alternative to DMR on the per-cycle elements, at the
    classic ~200% power cost of TMR (paper Sec III-B-1 cites it).
    """

    name = "tmr-latch"
    detection_latency = 0
    area_overhead = 2.0            # two extra copies + voter
    power_overhead = 2.0           # the paper's "200% in power" figure

    def check(self, flipped_bits: int) -> DetectionResult:
        detected = flipped_bits > 0
        # a single-event upset corrupts one copy; the voter masks it
        return DetectionResult(detected=detected, corrected=detected,
                               latency_cycles=0)


class ECCRegfileDetector(Detector):
    """SECDED on register-file words ("efficient register file
    protection"): corrects 1-bit upsets without any pair recovery, at a
    latency the RF read path must absorb."""

    name = "ecc-regfile"
    detection_latency = 1
    area_overhead = 0.22
    power_overhead = 0.12

    def check(self, flipped_bits: int) -> DetectionResult:
        if flipped_bits <= 0:
            return DetectionResult(False, False, 0)
        if flipped_bits == 1:
            return DetectionResult(detected=True, corrected=True,
                                   latency_cycles=self.detection_latency)
        if flipped_bits == 2:
            return DetectionResult(detected=True, corrected=False,
                                   latency_cycles=self.detection_latency)
        return DetectionResult(False, False, 0)


def hardened_unsync_detectors() -> Dict[str, Detector]:
    """UnSync's detector map with all three Sec VIII upgrades applied.

    Corrections happen in place, so strikes on upgraded blocks no longer
    trigger pair recovery at all — the EIH only hears about what parity/
    DMR still guards.
    """
    detectors = dict(UNSYNC_DETECTORS)
    detectors["l1i_data"] = DECTEDDetector()
    detectors["l1d_data"] = DECTEDDetector()
    detectors["pipeline_regs"] = TMRLatchDetector()
    detectors["pc"] = TMRLatchDetector()
    detectors["regfile"] = ECCRegfileDetector()
    return detectors


def multi_bit_coverage(detectors: Dict[str, Detector],
                       flipped_bits: int) -> Dict[str, bool]:
    """Which blocks survive a ``flipped_bits``-bit upset (detected or
    corrected), per block name — the comparison table the Sec VIII
    discussion implies."""
    out = {}
    for name, det in detectors.items():
        r = det.check(flipped_bits)
        out[name] = r.detected or r.corrected
    return out
