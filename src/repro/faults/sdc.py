"""Silent-data-corruption experiments: what *actually* happens when a bit
flips and nobody catches it.

The detector models answer "would this upset be detected"; this module
answers the complementary question by *really corrupting* architectural
state and diffing final outcomes against the golden run:

* a flipped bit may be **masked** — overwritten before use, or in a dead
  value — and the program output is unchanged;
* or it becomes **SDC** — the output differs;
* or the program **crashes/diverges** (wild branch, runaway loop) —
  detectable by timeout, which real systems catch with watchdogs.

The masking rates measured here are the dynamic ground truth that the
static AVF estimates (:mod:`repro.faults.avf`) approximate — the tests
cross-check the two, which is how AVF methodology is validated in the
literature the paper cites.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.golden import ArchState, ExecutionLimitExceeded, run
from repro.isa.instructions import REG_COUNT
from repro.isa.program import Program


class SDCOutcome(enum.Enum):
    MASKED = "masked"
    SDC = "sdc"
    CRASH = "crash"      # timeout / runaway (watchdog-detectable)


@dataclass(frozen=True)
class SDCResult:
    """One corruption trial."""

    target: str          # "reg" or "mem"
    index: int           # register number or byte address
    bit: int
    at_instruction: int
    outcome: SDCOutcome


def _output_signature(state: ArchState) -> Tuple:
    """The program's *output*: its final memory image.

    Deliberately excludes the register file — a corrupted bit that is
    still sitting in a dead register at HALT never influenced anything
    the program produced, and counting it as SDC would inflate the rate
    to ~1 (every strike trivially changes raw register state).
    """
    return tuple(sorted(state.mem.items()))


def _final_signature(program: Program,
                     max_instructions: int) -> Tuple:
    res = run(program, max_instructions=max_instructions)
    return _output_signature(res.state)


def run_with_corruption(program: Program,
                        at_instruction: int,
                        target: str,
                        index: int,
                        bit: int,
                        max_instructions: int = 300_000) -> SDCOutcome:
    """Execute ``program``, flipping one bit mid-run, and classify.

    ``target``: ``"reg"`` flips bit ``bit`` of register ``index``;
    ``"mem"`` flips bit ``bit`` of the word at byte address ``index``.
    """
    golden_sig = _final_signature(program, max_instructions)

    from repro.isa.golden import step_state
    from repro.isa.instructions import Opcode
    state = ArchState()
    state.load_data(program)
    state.pc = program.entry_pc
    executed = 0
    corrupted = False
    try:
        while True:
            if executed == at_instruction and not corrupted:
                corrupted = True
                if target == "reg":
                    if index != 0:
                        state.regs[index] ^= (1 << bit)
                elif target == "mem":
                    word = state.read_mem(index, 4)
                    state.write_mem(index, word ^ (1 << bit), 4)
                else:
                    raise ValueError(f"unknown target {target!r}")
            ins = program.fetch(state.pc)
            if ins is None or ins.op is Opcode.HALT:
                break
            if executed >= max_instructions:
                raise ExecutionLimitExceeded("corrupted run ran away")
            step_state(state, ins)
            executed += 1
    except ExecutionLimitExceeded:
        return SDCOutcome.CRASH

    if _output_signature(state) == golden_sig:
        return SDCOutcome.MASKED
    return SDCOutcome.SDC


@dataclass
class SDCCampaign:
    """Monte-Carlo corruption campaign over one program."""

    program: Program
    trials: int = 200
    seed: int = 0
    max_instructions: int = 300_000
    results: List[SDCResult] = field(default_factory=list)

    def run_campaign(self, target: str = "reg") -> "SDCCampaign":
        rng = random.Random(self.seed)
        gold = run(self.program, max_instructions=self.max_instructions)
        n_dynamic = gold.instructions
        mem_addrs = sorted(gold.state.mem) or [self.program.data_base]
        for _ in range(self.trials):
            at = rng.randrange(max(1, n_dynamic))
            if target == "reg":
                index = rng.randrange(1, REG_COUNT)
                bit = rng.randrange(32)
            else:
                index = rng.choice(mem_addrs)
                bit = rng.randrange(32)
            outcome = run_with_corruption(
                self.program, at, target, index, bit,
                max_instructions=self.max_instructions)
            self.results.append(SDCResult(target, index, bit, at, outcome))
        return self

    def rates(self) -> Dict[str, float]:
        if not self.results:
            return {}
        n = len(self.results)
        return {o.value: sum(1 for r in self.results if r.outcome is o) / n
                for o in SDCOutcome}

    @property
    def sdc_rate(self) -> float:
        return self.rates().get("sdc", 0.0)

    @property
    def masking_rate(self) -> float:
        return self.rates().get("masked", 0.0)
