"""Adversarial fault model: the strikes the paper's recovery story fears.

The standard injector (:class:`repro.faults.injector.FaultInjector`)
exercises only the benign case — isolated single-bit upsets landing in
steady-state execution, where detection always succeeds and recovery
always completes. This module generates the strikes that actually stress
an always-forward recovery scheme:

* **multi-bit clusters** — an upset flipping several bits of one
  protected word. Even-weight clusters defeat 1-bit parity outright
  (true SDC); 2-bit clusters saturate SECDED into detect-only (a DUE on
  any structure without a second clean copy). Cho et al. ("Understanding
  Soft Errors in Uncore Components") motivate the rates.
* **spatially correlated pair strikes** — both cores of a redundant pair
  struck within one detection-latency window. This is the paper's
  unrecoverable case: when the EIH stalls the pair there is no clean
  core left to copy from.
* **recovery chasing** — a strike scheduled *inside* an ongoing
  recovery/rollback episode (Zeng et al. show the recovery window is
  where lightweight resilience schemes actually break). The simulators
  notify the injector via :meth:`AdversarialInjector.on_recovery`.
* **uncore targets** — structures the standard inventory never models:
  CB entries, the EIH pending-interrupt queue, the in-flight recovery
  copy (UnSync) and the CSB fingerprint store (Reunion).

Everything is driven by one seeded RNG, so an adversarial trial remains
a pure function of its :class:`~repro.campaign.spec.TrialSpec` — the
campaign's resume and serial-vs-parallel determinism guarantees hold
unchanged.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.faults.injector import (
    BLOCKS, Block, BlockInventory, FaultInjector, Strike,
)

#: fault-model names accepted by campaign specs and the CLI
STANDARD_MODEL = "standard"
ADVERSARIAL_MODEL = "adversarial"
FAULT_MODELS: Tuple[str, ...] = (STANDARD_MODEL, ADVERSARIAL_MODEL)

#: UnSync uncore structures (sizes follow UnSyncConfig defaults: a
#: 170-entry x 12-byte CB, a handful of 64-bit pending-interrupt
#: records, one cache line of copy data in flight during recovery).
UNSYNC_UNCORE_BLOCKS: Tuple[Block, ...] = (
    Block("cb", 170 * 12 * 8, pre_commit=False),
    Block("eih_pending", 4 * 64, pre_commit=False),
    Block("recovery_copy", 64 * 8, pre_commit=False),
)

#: Reunion's exposed uncore structure: the CSB holds pre-commit
#: fingerprint state, so a corrupted entry surfaces as a mismatch (or an
#: aliased escape) through the existing adjudication path.
REUNION_UNCORE_BLOCKS: Tuple[Block, ...] = (
    Block("csb", 64 * 66, pre_commit=True),
)


@dataclass(frozen=True)
class AdversarialConfig:
    """Mixture knobs of the adversarial strike generator."""

    #: fraction of strikes that flip a multi-bit cluster (vs a single bit)
    multi_bit_fraction: float = 0.35
    #: cluster sizes drawn for a multi-bit strike, even-biased so that
    #: parity-defeating upsets dominate (2, 2, 3, 4 -> half the clusters
    #: are 2-bit)
    cluster_sizes: Tuple[int, ...] = (2, 2, 3, 4)
    #: fraction of strikes that are mirrored onto the *other* core within
    #: ``pair_window_cycles`` — the paper's unrecoverable paired case
    paired_fraction: float = 0.2
    #: companion strikes land within this many cycles of the primary
    pair_window_cycles: int = 4
    #: probability that an ongoing recovery/rollback episode attracts a
    #: chase strike inside its window
    recovery_chase_fraction: float = 0.5
    #: fraction of strikes redirected at the scheme's uncore blocks
    uncore_fraction: float = 0.25

    def __post_init__(self) -> None:
        for name in ("multi_bit_fraction", "paired_fraction",
                     "recovery_chase_fraction", "uncore_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.pair_window_cycles <= 0:
            raise ValueError("pair_window_cycles must be positive")
        if not self.cluster_sizes or min(self.cluster_sizes) < 2:
            raise ValueError("cluster_sizes must all be >= 2 bits")


class AdversarialInjector(FaultInjector):
    """Seeded generator of correlated, multi-bit, recovery-chasing strikes.

    Drop-in replacement for :class:`FaultInjector`: the simulators pull
    strikes through :meth:`next_strike` and report recovery episodes
    through :meth:`on_recovery`; correlated companions are queued and
    returned before the next Poisson draw.
    """

    def __init__(self, per_cycle_rate: float,
                 inventory: Optional[BlockInventory] = None,
                 seed: int = 0,
                 config: Optional[AdversarialConfig] = None,
                 uncore_blocks: Sequence[Block] = ()) -> None:
        uncore = tuple(uncore_blocks)
        if inventory is None:
            inventory = BlockInventory(tuple(BLOCKS) + uncore)
        super().__init__(per_cycle_rate, inventory=inventory, seed=seed)
        self.config = config or AdversarialConfig()
        self._uncore_names = [b.name for b in uncore]
        self._uncore_weights = [b.bits for b in uncore]
        self._base_names = [b.name for b in self.inventory
                            if b.name not in set(self._uncore_names)]
        self._base_weights = [self.inventory.get(n).bits
                              for n in self._base_names]
        #: queued correlated strikes, kept sorted by cycle
        self._queue: List[Strike] = []
        self._queue_cycles: List[int] = []
        # generation counters (telemetry-adjacent, handy in tests)
        self.multi_bit_strikes = 0
        self.paired_strikes = 0
        self.chase_strikes = 0
        self.uncore_strikes = 0

    # -- queue ---------------------------------------------------------------
    def _enqueue(self, strike: Strike) -> None:
        at = bisect.bisect_right(self._queue_cycles, strike.cycle)
        self._queue_cycles.insert(at, strike.cycle)
        self._queue.insert(at, strike)

    # -- sampling ------------------------------------------------------------
    def _sample_strike(self, cycle: int, core: int,
                       allow_uncore: bool = True) -> Strike:
        cfg = self.config
        if (allow_uncore and self._uncore_names
                and self._rng.random() < cfg.uncore_fraction):
            names, weights = self._uncore_names, self._uncore_weights
            self.uncore_strikes += 1
        else:
            names, weights = self._base_names, self._base_weights
        name = self._rng.choices(names, weights=weights, k=1)[0]
        bit = self._rng.randrange(self.inventory.get(name).bits)
        flipped = 1
        if self._rng.random() < cfg.multi_bit_fraction:
            flipped = self._rng.choice(cfg.cluster_sizes)
            self.multi_bit_strikes += 1
        return Strike(cycle=cycle, block=name, bit=bit,
                      flipped_bits=flipped, core=core)

    def next_strike(self, now: int) -> Optional[Strike]:
        if self._queue:
            self._queue_cycles.pop(0)
            return self._queue.pop(0)
        interval = self.next_interval()
        if interval == math.inf:
            return None
        cycle = now + max(1, int(interval))
        core = self._rng.randrange(2)
        strike = self._sample_strike(cycle, core)
        if self._rng.random() < self.config.paired_fraction:
            # mirror onto the other core inside the detection window: the
            # EIH will find no clean core to copy from
            delta = self._rng.randrange(self.config.pair_window_cycles)
            self._enqueue(self._sample_strike(cycle + delta, 1 - core,
                                              allow_uncore=False))
            self.paired_strikes += 1
        return strike

    def preempt(self, armed: Optional[Strike]) -> Optional[Strike]:
        if self._queue and (armed is None
                            or self._queue_cycles[0] <= armed.cycle):
            self._queue_cycles.pop(0)
            strike = self._queue.pop(0)
            if armed is not None:
                self._enqueue(armed)
            return strike
        return armed

    def on_recovery(self, now: int, duration_cycles: int) -> None:
        if self._rng.random() >= self.config.recovery_chase_fraction:
            return
        # land inside the recovery window (capped so short rollbacks and
        # long L1 copies are both chaseable)
        span = max(1, min(duration_cycles, 64))
        delta = 1 + self._rng.randrange(span)
        core = self._rng.randrange(2)
        self._enqueue(self._sample_strike(now + delta, core))
        self.chase_strikes += 1


def adversarial_injector(scheme: str, per_cycle_rate: float, seed: int = 0,
                         config: Optional[AdversarialConfig] = None
                         ) -> AdversarialInjector:
    """The adversarial injector for one scheme's structure inventory.

    The scheme registry declares each scheme's uncore strike targets
    (UnSync's checkpoint buffers, Reunion's fingerprint path, RepTFD's
    replay queue, MEEK's check queue); a scheme outside the registry
    simply exposes no uncore surface.
    """
    from repro.schemes import UnknownSchemeError, get
    try:
        uncore: Sequence[Block] = get(scheme).uncore_blocks()
    except UnknownSchemeError:
        uncore = ()
    return AdversarialInjector(per_cycle_rate, seed=seed, config=config,
                               uncore_blocks=uncore)
