"""Fault-event records and outcome taxonomy."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Outcome(enum.Enum):
    """What ultimately became of a strike."""

    #: bit flipped in dead state; program output unaffected, nothing fired
    MASKED = "masked"
    #: a detector fired and the system recovered
    DETECTED_RECOVERED = "detected-recovered"
    #: a detector fired but recovery was impossible (e.g. dirty write-back
    #: line scenario of Figure 2)
    DETECTED_UNRECOVERABLE = "detected-unrecoverable"
    #: no detector fired and the architectural output changed
    SDC = "silent-data-corruption"
    #: trial-level: the simulator wedged past its cycle watchdog budget
    HANG = "hang"
    #: trial-level: the simulator (or its worker process) died
    CRASH = "crash"


#: canonical per-trial outcome labels, worst first. Every campaign trial
#: is classified into exactly one of these (see
#: :func:`repro.campaign.trial.classify_trial`).
TRIAL_OUTCOMES = ("crash", "hang", "sdc", "due", "recovered")


@dataclass
class FaultEvent:
    """One injected strike and its adjudicated outcome."""

    cycle: int
    core_id: int
    block: str
    bit: int
    outcome: Optional[Outcome] = None
    #: cycles from strike to detection (when detected)
    detection_latency: int = 0
    #: cycles of recovery penalty charged (when recovered)
    recovery_cycles: int = 0

    @property
    def detected(self) -> bool:
        return self.outcome in (Outcome.DETECTED_RECOVERED,
                                Outcome.DETECTED_UNRECOVERABLE)
