"""Behavioural models of the paper's hardware error detectors.

UnSync's block-by-block choice (Sec III-B-1):

* **1-bit parity** on storage with >=1 cycle between write and read
  (L1 data, register file, LSQ, TLB, queues). Detects any odd number of
  flipped bits per protected word; misses even-weight multi-bit upsets.
  Costs <1% area/power; verification fits in the existing access cycle.
* **DMR** (dual-mode redundancy, detection only) on per-cycle elements
  (PC, pipeline registers) where parity's generate/verify latency is
  unacceptable. Detects any single-copy corruption; ~6% power.
* **SECDED** ECC on the shared L2 (both architectures) and on Reunion's
  L1: corrects 1-bit, detects 2-bit errors; ~22% cache-area overhead and
  multi-cycle codec latency.

These models answer one question for the simulators — *given k bits
flipped in a protected word, does the detector fire / correct?* — plus the
detection latency to charge. Real bit-level codecs are unnecessary: the
injector controls k exactly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DetectionResult:
    detected: bool
    corrected: bool
    latency_cycles: int


class Detector:
    """Interface: adjudicate a k-bit upset in one protected word."""

    name = "detector"
    #: cycles from corrupted read to the error interrupt
    detection_latency = 1

    def check(self, flipped_bits: int) -> DetectionResult:
        raise NotImplementedError

    #: fraction of the block's area added by the detector (for hwcost)
    area_overhead = 0.0
    #: fraction of per-access energy added
    power_overhead = 0.0


class NoDetector(Detector):
    """Unprotected block: every upset sails through."""

    name = "none"
    detection_latency = 0

    def check(self, flipped_bits: int) -> DetectionResult:
        return DetectionResult(detected=False, corrected=False,
                               latency_cycles=0)


class ParityDetector(Detector):
    """1-bit parity per protected word.

    The parity bit is generated at write and verified at read, so the
    detection fires on the first *read* of the corrupted word — the
    simulators charge `detection_latency` from that read.
    """

    name = "parity"
    detection_latency = 1
    area_overhead = 0.002   # <1% (paper cites ARM app note [24])
    power_overhead = 0.002

    def check(self, flipped_bits: int) -> DetectionResult:
        if flipped_bits <= 0:
            return DetectionResult(False, False, 0)
        detected = flipped_bits % 2 == 1
        return DetectionResult(detected=detected, corrected=False,
                               latency_cycles=self.detection_latency)


class DMRDetector(Detector):
    """Duplicated sequential element with a comparator.

    Fires on any mismatch between the two copies — i.e. on every upset
    that flips at least one bit of one copy (the chance of the *same*
    multi-bit pattern striking both copies in one event is negligible and
    modelled as zero). Detection is same-cycle.
    """

    name = "dmr"
    detection_latency = 0
    area_overhead = 1.0     # full duplication of the element
    power_overhead = 0.06   # ~6% at the core level (paper cites [26], [27])

    def check(self, flipped_bits: int) -> DetectionResult:
        detected = flipped_bits > 0
        return DetectionResult(detected=detected, corrected=False,
                               latency_cycles=self.detection_latency)


class SECDEDDetector(Detector):
    """Single-error-correct / double-error-detect ECC.

    Corrects 1 flipped bit transparently; detects (without correcting) 2;
    3+ flips of one word may alias — modelled as undetected, the
    conservative choice for coverage accounting.
    """

    name = "secded"
    detection_latency = 2   # codec needs more than one cycle (Sec III-B-1)
    area_overhead = 0.22    # ~22% cache area (paper, citing [24])
    power_overhead = 0.10   # ~10% cache power (Sec VI-A-1)

    def check(self, flipped_bits: int) -> DetectionResult:
        if flipped_bits <= 0:
            return DetectionResult(False, False, 0)
        if flipped_bits == 1:
            return DetectionResult(detected=True, corrected=True,
                                   latency_cycles=self.detection_latency)
        if flipped_bits == 2:
            return DetectionResult(detected=True, corrected=False,
                                   latency_cycles=self.detection_latency)
        return DetectionResult(detected=False, corrected=False,
                               latency_cycles=0)
