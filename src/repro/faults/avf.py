"""Architectural Vulnerability Factor (AVF) analysis.

The paper justifies detector placement with AVF-style reasoning
("sequential elements which store data ... are the most vulnerable
architectural blocks", Sec III-B-1, citing the AVF Stressmark work [25]).
This module quantifies that: the AVF of a structure is the fraction of
its bit-cycles holding ACE (architecturally-correct-execution) state — an
upset in non-ACE state is masked for free.

Two estimators:

* **occupancy AVF** for queueing structures (ROB/IQ/LSQ/CB): mean
  occupancy over capacity — an entry in flight is ACE, an empty slot is
  not;
* **liveness AVF** for the register file: exact def-use interval analysis
  over the golden trace — a register is ACE from a write until its last
  read before the next write (or not at all if never read).

``effective_fit`` derates a raw FIT rate by the bit-weighted AVF, which
is the standard way raw circuit SER becomes an architectural failure
rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.isa.golden import ArchState, step_state
from repro.isa.instructions import Opcode, REG_COUNT
from repro.isa.program import Program

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import Pipeline
    from repro.mem.hierarchy import MemPort


@dataclass(frozen=True)
class StructureAVF:
    """One structure's vulnerability estimate."""

    name: str
    bits: int
    avf: float

    @property
    def ace_bits(self) -> float:
        return self.bits * self.avf


def regfile_liveness_avf(program: Program,
                         max_instructions: int = 200_000) -> float:
    """Exact register-file AVF by def-use interval analysis.

    Replays the program functionally, recording for every architectural
    write the instruction index, and closing the interval at the last
    read before the next write. AVF = live register-instructions /
    (REG_COUNT x instructions). r0 is hardwired and never ACE.
    """
    state = ArchState()
    state.load_data(program)
    state.pc = program.entry_pc

    last_write: Dict[int, int] = {}     # reg -> index of defining write
    last_read: Dict[int, int] = {}      # reg -> index of last read since
    live_instructions = 0
    index = 0

    def close_interval(reg: int) -> int:
        """Live span of the current def of ``reg`` (0 if never read)."""
        if reg not in last_write:
            return 0
        if reg not in last_read or last_read[reg] < last_write[reg]:
            return 0
        return last_read[reg] - last_write[reg]

    while index < max_instructions:
        ins = program.fetch(state.pc)
        if ins is None or ins.op is Opcode.HALT:
            break
        for reg in ins.src_regs():
            if reg != 0:
                last_read[reg] = index
        if ins.writes_reg and ins.rd != 0:
            live_instructions += close_interval(ins.rd)
            last_write[ins.rd] = index
        step_state(state, ins)
        index += 1

    for reg in list(last_write):
        live_instructions += close_interval(reg)

    if index == 0:
        return 0.0
    return live_instructions / (REG_COUNT * index)


def occupancy_avf(mean_occupancy: float, capacity: int) -> float:
    """Queueing-structure AVF: occupied entries are ACE."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    return min(1.0, max(0.0, mean_occupancy / capacity))


def pipeline_avf_report(pipeline: "Pipeline", memport: "MemPort",
                        program: Optional[Program] = None,
                        cb_mean_occupancy: float = 0.0,
                        cb_capacity: int = 0) -> List[StructureAVF]:
    """Per-structure AVF from a finished run's statistics.

    Cache AVF uses end-of-run residency as the steady-state estimate
    (lines fill early and stay resident for kernel-scale runs).
    """
    cfg = pipeline.config
    rows = [
        StructureAVF("rob", cfg.rob_entries * 72,
                     occupancy_avf(pipeline.rob.mean_occupancy(),
                                   cfg.rob_entries)),
        StructureAVF("iq", cfg.iq_entries * 40,
                     occupancy_avf(pipeline.iq.mean_occupancy(),
                                   cfg.iq_entries)),
        StructureAVF("lsq", cfg.lsq_entries * 72,
                     occupancy_avf(pipeline.lsq.mean_occupancy(),
                                   cfg.lsq_entries)),
    ]
    if program is not None:
        rows.append(StructureAVF("regfile", REG_COUNT * 32,
                                 regfile_liveness_avf(program)))
    d = memport.dcache
    lines_total = d.config.size_bytes // d.config.line_bytes
    rows.append(StructureAVF(
        "l1d_data", d.config.size_bytes * 8,
        occupancy_avf(d.resident_count(), lines_total)))
    i = memport.icache
    lines_total = i.config.size_bytes // i.config.line_bytes
    rows.append(StructureAVF(
        "l1i_data", i.config.size_bytes * 8,
        occupancy_avf(i.resident_count(), lines_total)))
    if cb_capacity > 0:
        rows.append(StructureAVF("cb", cb_capacity * 66,
                                 occupancy_avf(cb_mean_occupancy,
                                               cb_capacity)))
    return rows


def effective_fit(raw_fit: float, report: List[StructureAVF]) -> float:
    """Derate a raw (circuit-level) FIT by the bit-weighted AVF."""
    if raw_fit < 0:
        raise ValueError("FIT must be non-negative")
    total_bits = sum(r.bits for r in report)
    if total_bits == 0:
        return 0.0
    weighted = sum(r.ace_bits for r in report) / total_bits
    return raw_fit * weighted
