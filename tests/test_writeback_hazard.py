"""Tests for the Figure 2 write-back hazard analysis."""

import pytest

from repro.faults.events import Outcome
from repro.mem.cache import WritePolicy
from repro.unsync.eih import EIHConfig
from repro.unsync.writeback_hazard import (
    DoubleStrikeScenario, HazardModel, simulate_double_strike,
)


def scenario(**kw):
    defaults = dict(first_strike_cycle=100, second_strike_cycle=102,
                    second_strike_on_dirty_line=True,
                    policy=WritePolicy.WRITE_BACK,
                    eih=EIHConfig(signal_latency=2, stall_latency=3))
    defaults.update(kw)
    return DoubleStrikeScenario(**defaults)


# ---------------------------------------------------------------------------
# the discrete Figure 2 re-enactment
# ---------------------------------------------------------------------------
def test_write_back_dirty_double_strike_is_unrecoverable():
    assert simulate_double_strike(scenario()) is Outcome.DETECTED_UNRECOVERABLE


def test_write_through_same_timeline_recovers():
    s = scenario(policy=WritePolicy.WRITE_THROUGH)
    assert simulate_double_strike(s) is Outcome.DETECTED_RECOVERED


def test_clean_line_strike_recovers_even_write_back():
    s = scenario(second_strike_on_dirty_line=False)
    assert simulate_double_strike(s) is Outcome.DETECTED_RECOVERED


def test_second_strike_after_window_recovers():
    # window = 2 + 3 = 5 cycles; strike at 106 is outside [100, 105]
    s = scenario(second_strike_cycle=106)
    assert simulate_double_strike(s) is Outcome.DETECTED_RECOVERED


def test_second_strike_at_window_edge_is_unrecoverable():
    s = scenario(second_strike_cycle=105)
    assert simulate_double_strike(s) is Outcome.DETECTED_UNRECOVERABLE


def test_no_second_strike_recovers():
    s = scenario(second_strike_cycle=None)
    assert simulate_double_strike(s) is Outcome.DETECTED_RECOVERED


def test_exposure_window_is_eih_latency_sum():
    s = scenario(eih=EIHConfig(signal_latency=7, stall_latency=4))
    assert s.exposure_window == 11


# ---------------------------------------------------------------------------
# the closed-form hazard model
# ---------------------------------------------------------------------------
def test_write_through_hazard_is_zero():
    m = HazardModel(strike_rate_per_cycle=1e-3)
    assert m.p_unrecoverable_given_detection(WritePolicy.WRITE_THROUGH) == 0.0


def test_write_back_hazard_positive():
    m = HazardModel(strike_rate_per_cycle=1e-3, dirty_fraction_of_bits=0.5)
    p = m.p_unrecoverable_given_detection(WritePolicy.WRITE_BACK)
    assert 0 < p < 1


def test_hazard_grows_with_window():
    short = HazardModel(strike_rate_per_cycle=1e-3,
                        eih=EIHConfig(signal_latency=1, stall_latency=1))
    long = HazardModel(strike_rate_per_cycle=1e-3,
                       eih=EIHConfig(signal_latency=20, stall_latency=20))
    assert (long.p_unrecoverable_given_detection(WritePolicy.WRITE_BACK)
            > short.p_unrecoverable_given_detection(WritePolicy.WRITE_BACK))


def test_hazard_grows_with_dirty_fraction():
    lo = HazardModel(strike_rate_per_cycle=1e-3, dirty_fraction_of_bits=0.1)
    hi = HazardModel(strike_rate_per_cycle=1e-3, dirty_fraction_of_bits=0.9)
    assert (hi.p_unrecoverable_given_detection(WritePolicy.WRITE_BACK)
            > lo.p_unrecoverable_given_detection(WritePolicy.WRITE_BACK))


def test_hazard_linear_in_rate_at_small_rates():
    a = HazardModel(strike_rate_per_cycle=1e-9)
    b = HazardModel(strike_rate_per_cycle=2e-9)
    pa = a.p_unrecoverable_given_detection(WritePolicy.WRITE_BACK)
    pb = b.p_unrecoverable_given_detection(WritePolicy.WRITE_BACK)
    assert pb == pytest.approx(2 * pa, rel=1e-3)


def test_monte_carlo_matches_closed_form():
    m = HazardModel(strike_rate_per_cycle=0.05, dirty_fraction_of_bits=0.4)
    analytic = m.p_unrecoverable_given_detection(WritePolicy.WRITE_BACK)
    empirical = m.monte_carlo(WritePolicy.WRITE_BACK, trials=40_000, seed=3)
    assert empirical == pytest.approx(analytic, rel=0.15)


def test_monte_carlo_write_through_is_zero():
    m = HazardModel(strike_rate_per_cycle=0.05)
    assert m.monte_carlo(WritePolicy.WRITE_THROUGH, trials=5_000) == 0.0


def test_monte_carlo_zero_rate():
    m = HazardModel(strike_rate_per_cycle=0.0)
    assert m.monte_carlo(WritePolicy.WRITE_BACK, trials=100) == 0.0


def test_validation():
    with pytest.raises(ValueError):
        HazardModel(dirty_fraction_of_bits=1.5)
    with pytest.raises(ValueError):
        HazardModel(strike_rate_per_cycle=-1)
