"""Tests for the statistics helpers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.statistics import (
    Interval, mean_interval, required_trials, wilson_interval,
)


def test_wilson_contains_truth_typically():
    """Coverage check: ~95% of intervals from p=0.3 samples contain 0.3."""
    rng = random.Random(7)
    p, n, covered, reps = 0.3, 200, 0, 200
    for _ in range(reps):
        successes = sum(rng.random() < p for _ in range(n))
        if p in wilson_interval(successes, n):
            covered += 1
    assert covered >= 0.88 * reps  # loose lower bound on 95% coverage


def test_wilson_zero_and_all():
    iv0 = wilson_interval(0, 100)
    assert iv0.low == 0.0 and iv0.high > 0
    iv1 = wilson_interval(100, 100)
    assert iv1.high == 1.0 and iv1.low < 1.0


def test_wilson_validation():
    with pytest.raises(ValueError):
        wilson_interval(1, 0)
    with pytest.raises(ValueError):
        wilson_interval(5, 3)


@given(st.integers(min_value=0, max_value=500),
       st.integers(min_value=1, max_value=500))
def test_wilson_bounds_property(successes, trials):
    if successes > trials:
        successes = trials
    iv = wilson_interval(successes, trials)
    assert 0.0 <= iv.low <= iv.estimate <= iv.high <= 1.0


def test_mean_interval_basic():
    iv = mean_interval([1.0, 2.0, 3.0, 4.0, 5.0])
    assert iv.estimate == pytest.approx(3.0)
    assert iv.low < 3.0 < iv.high


def test_mean_interval_narrows_with_samples():
    rng = random.Random(1)
    small = mean_interval([rng.gauss(0, 1) for _ in range(10)])
    big = mean_interval([rng.gauss(0, 1) for _ in range(1000)])
    assert big.width < small.width


def test_mean_interval_needs_two():
    with pytest.raises(ValueError):
        mean_interval([1.0])


def test_required_trials_rare_event():
    # CRC-16 aliasing at 2^-16: tens of millions of trials for 10% rel.
    n = required_trials(2 ** -16, relative_precision=0.10)
    assert 2e7 < n < 5e7


def test_required_trials_monotone():
    assert required_trials(0.5) < required_trials(0.01)
    assert required_trials(0.01, 0.5) < required_trials(0.01, 0.1)


def test_required_trials_validation():
    with pytest.raises(ValueError):
        required_trials(0.0)
    with pytest.raises(ValueError):
        required_trials(0.5, -1)
